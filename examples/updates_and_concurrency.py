#!/usr/bin/env python3
"""Cracked indexes under updates and concurrent clients.

Two extensions the paper's related work ([11], [7]) calls out, both
implemented in this library:

* trickle inserts/deletes staged in delta stores and ripple-merged
  into the cracker column only when a query touches their value range;
* piece-level latching for concurrent cracking selects, with a
  deterministic round-based scheduler.

Run:  python examples/updates_and_concurrency.py
"""

import numpy as np

from repro import Database, SimClock, scale_by_name
from repro.cracking import (
    ClientQuery,
    ConcurrentCrackScheduler,
    CrackerIndex,
)
from repro.storage import build_paper_table

SCALE = scale_by_name("small")


def updates_demo() -> None:
    print("=== updates: ripple-merging the delta store ===")
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=2, seed=3))
    session = db.session("adaptive")

    # Warm the cracker index.
    session.select("R", "A1", 40_000_000, 45_000_000)
    baseline = session.report.queries[-1].result_count

    # New log records arrive: staged, not merged.
    fresh = {"A1": [42_000_000] * 500, "A2": list(range(500))}
    db.table("R").insert_rows(fresh)
    pending = db.table("R").updates_for("A1")
    print(f"staged {pending.pending_insert_count} pending inserts")

    # The next query in that range sees them immediately.
    result = session.select("R", "A1", 40_000_000, 45_000_000)
    print(
        f"query result grew from {baseline} to {result.count} rows "
        "(+500 pending inserts, correct without a rebuild)"
    )

    # Queries elsewhere never pay for the pending entries.
    result = session.select("R", "A1", 90_000_000, 91_000_000)
    print(
        f"unrelated range still answers {result.count} rows; "
        f"{pending.pending_insert_count} inserts remain staged"
    )


def concurrency_demo() -> None:
    print("\n=== concurrency: piece latches, round-based schedule ===")
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=1, seed=3))
    index = CrackerIndex(db.column("R", "A1"), clock=db.clock)
    scheduler = ConcurrentCrackScheduler(index)

    rng = np.random.default_rng(0)
    clients = []
    for i in range(12):
        low = float(rng.uniform(1, 9e7))
        clients.append(ClientQuery(f"client-{i}", low, low + 1e6))
    report = scheduler.run(clients)
    print(
        f"executed {report.executed} concurrent selects in "
        f"{report.rounds} rounds with {report.deferrals} deferrals"
    )
    print(
        f"latch stats: {scheduler.latches.stats.grants} grants, "
        f"{scheduler.latches.stats.conflicts} conflicts"
    )
    waits = {
        c.client: c.rounds_waited for c in clients if c.rounds_waited
    }
    print(f"clients that had to wait at least one round: {waits}")
    index.check_invariants()
    print(f"index ended consistent with {index.piece_count} pieces")


if __name__ == "__main__":
    updates_demo()
    concurrency_demo()
