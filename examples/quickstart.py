#!/usr/bin/env python3
"""Quickstart: holistic indexing in five minutes.

Builds the paper's relation R at a reduced scale, opens sessions under
different indexing strategies, and shows the three behaviours the
paper unifies: instant adaptation (cracking), idle-time exploitation,
and continuous monitoring.  All times are virtual seconds projected to
the paper's 10^8-row testbed.

Run:  python examples/quickstart.py
"""

from repro import Database, SimClock, scale_by_name
from repro.storage import build_paper_table

SCALE = scale_by_name("small")  # 10^5 rows projected to 10^8


def fresh_database() -> Database:
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=3, seed=7))
    return db


def main() -> None:
    # --- 1. Without indexing every query pays a full scan. ----------
    db = fresh_database()
    scans = db.session("scan")
    for i in range(3):
        result = scans.select("R", "A1", 10_000_000 * i, 10_000_000 * i + 5_000_000)
        record = scans.report.queries[-1]
        print(
            f"scan     query {i + 1}: {result.count:6d} rows in "
            f"{record.response_s * 1e3:9.2f} ms"
        )

    # --- 2. Adaptive: every query makes the next one cheaper. -------
    db = fresh_database()
    adaptive = db.session("adaptive")
    for i in range(3):
        result = adaptive.select(
            "R", "A1", 10_000_000 * i, 10_000_000 * i + 5_000_000
        )
        record = adaptive.report.queries[-1]
        print(
            f"adaptive query {i + 1}: {result.count:6d} rows in "
            f"{record.response_s * 1e3:9.2f} ms"
        )

    # --- 3. Holistic: idle time becomes future performance. ---------
    db = fresh_database()
    holistic = db.session("holistic")
    # A couple of warm-up queries teach the monitor what is hot...
    holistic.select("R", "A1", 0, 1_000_000)
    # ...then half a (projected) second of idle time gets exploited.
    idle = holistic.idle(seconds=0.5)
    print(
        f"\nholistic idle window: {idle.actions_done} auxiliary "
        f"refinements in {idle.consumed_s:.3f} s ({idle.note})"
    )
    for i in range(3):
        result = holistic.select(
            "R", "A1", 10_000_000 * i, 10_000_000 * i + 5_000_000
        )
        record = holistic.report.queries[-1]
        print(
            f"holistic query {i + 1}: {result.count:6d} rows in "
            f"{record.response_s * 1e3:9.2f} ms"
        )

    # --- 4. Ask the planner what it would do. ------------------------
    print("\nEXPLAIN under each strategy:")
    for name in ("scan", "offline", "adaptive", "holistic"):
        session = fresh_database().session(name)
        plan = session.explain("R", "A2", 1_000_000, 2_000_000)
        print(f"  {name:9s} {plan.explain()}")

    total = holistic.report.total_response_s
    print(f"\nholistic cumulative response time: {total:.4f} s")
    print("(idle time is not response time -- that is the point)")


if __name__ == "__main__":
    main()
