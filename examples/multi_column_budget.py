#!/usr/bin/env python3
"""Exp2 as a story: spread a too-small budget over many indexes.

The paper's multi-column experiment (Section 4, Exp2): ten columns all
matter equally, but the a-priori idle window fits only two full sorts.
Offline indexing must gamble on two columns; holistic indexing spends
the same window as ~100 random cracks on *each* column, so every query
benefits.

This example reproduces the trade-off at a small scale and prints the
per-column state both kernels end up with -- the clearest picture of
"two perfect indexes vs ten good-enough ones".

Run:  python examples/multi_column_budget.py
"""

from repro import Database, SimClock, scale_by_name
from repro.bench.exp2 import run_exp2
from repro.storage import build_paper_table
from repro.workload.patterns import Exp2Pattern

SCALE = scale_by_name("small")


def main() -> None:
    result = run_exp2(SCALE, seed=42)
    offline = result.offline_report.cumulative_curve()
    holistic = result.holistic_report.cumulative_curve()

    print(
        f"a-priori idle budget: {result.idle_budget_s:.1f} s "
        f"(exactly {result.offline_indexed_columns} full sorts)"
    )
    print(
        f"holistic alternative: {result.holistic_cracks_per_column} "
        f"random cracks on each of 10 columns "
        f"({result.holistic_idle_used_s:.1f} s)\n"
    )

    checkpoints = [1, 2, 5, 10, 50, 100, len(offline)]
    print(f"{'query':>6} {'offline':>12} {'holistic':>12}")
    for rank in checkpoints:
        print(
            f"{rank:>6} {offline[rank - 1]:>12.4f} "
            f"{holistic[rank - 1]:>12.4f}"
        )
    print(
        f"\nfinal cumulative gap: {result.final_ratio:.0f}x in favour "
        "of holistic (paper: ~2 orders of magnitude at 10^4 queries)"
    )

    # Show the physical designs side by side.
    pattern = Exp2Pattern(query_count=10)
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=10, seed=42))
    session = db.session("holistic")
    session.hint_workload(pattern.statements())
    session.idle(actions=pattern.cracks_per_column * 10)
    kernel = session.strategy
    print("\nholistic physical design after the idle window:")
    for ref in pattern.refs():
        index = kernel.index_for(ref)
        print(
            f"  {ref}: {index.piece_count:4d} pieces, "
            f"avg {index.average_piece_size():9.0f} rows"
        )
    print(
        "\noffline physical design after the same window: "
        "A1 sorted, A2 sorted, A3..A10 untouched"
    )


if __name__ == "__main__":
    main()
