#!/usr/bin/env python3
"""The paper's web-log scenario: bursts of queries, stretches of idle.

"In modern applications such as social networks or web logs, we may
have bursts of queries followed by long stretches of idle time"
(Section 2).  Adaptive indexing alone leaves those stretches on the
table; holistic indexing turns them into refinement work.

This example replays a bursty day against *both* strategies on
identical data and prints the per-burst cost side by side, then shows
the "no idle time" path: hot-range boosting during a sustained burst.

Run:  python examples/weblog_bursts.py
"""

import numpy as np

from repro import Database, SimClock, scale_by_name
from repro.storage import build_paper_table
from repro.storage.catalog import ColumnRef
from repro.workload.generators import SkewedRangeGenerator

SCALE = scale_by_name("small")

#: A day of traffic: (burst size, idle seconds until the next burst).
DAY = [
    (40, 2.0),   # night crawlers, then quiet
    (80, 0.5),   # morning spike
    (120, 1.5),  # lunch-time browsing, long lull
    (160, 0.0),  # evening rush, no breathing room
]


def run_day(strategy_name: str, **options) -> list[float]:
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=2, seed=23))
    session = db.session(strategy_name, **options)
    generator = SkewedRangeGenerator(
        ColumnRef("R", "A1"),
        1,
        100_000_000,
        selectivity=0.01,
        regions=50,
        exponent=1.6,
        seed=5,
    )
    burst_costs = []
    for burst_size, idle_after in DAY:
        before = session.report.total_response_s
        for query in generator.queries(burst_size):
            session.run_query(query)
        burst_costs.append(session.report.total_response_s - before)
        if idle_after > 0:
            session.idle(seconds=idle_after)
    return burst_costs


def main() -> None:
    adaptive = run_day("adaptive")
    holistic = run_day("holistic")
    boosted = run_day(
        "holistic", hot_column_threshold=20, hot_boost_cracks=2
    )

    print("per-burst response time (projected seconds):")
    print(
        f"{'burst':>6} {'queries':>8} {'adaptive':>10} "
        f"{'holistic':>10} {'holistic+boost':>15}"
    )
    for i, (size, _idle) in enumerate(DAY):
        print(
            f"{i + 1:>6} {size:>8} {adaptive[i]:>10.3f} "
            f"{holistic[i]:>10.3f} {boosted[i]:>15.3f}"
        )
    print(
        f"{'total':>6} {sum(s for s, _ in DAY):>8} "
        f"{sum(adaptive):>10.3f} {sum(holistic):>10.3f} "
        f"{sum(boosted):>15.3f}"
    )
    saved = sum(adaptive) - sum(holistic)
    print(
        f"\nidle-time exploitation saved {saved:.3f} s of query "
        "response time over the day"
    )
    print(
        "the boosted kernel additionally cracks hot ranges during "
        "the evening rush, when no idle time exists at all -- the "
        "boost work is charged to query processing, so it trades a "
        "little response time now for refinement that idle time "
        "never got a chance to provide"
    )


if __name__ == "__main__":
    main()
