#!/usr/bin/env python3
"""The paper's astronomy scenario (Section 1): exploratory science.

"As new Terabytes of data arrive daily, there will be a standard set
of queries which the scientists always run [offline-like], ... as
queries arrive which are not covered by the existing indexes, the
system starts building partial indexes and incrementally refining them
[adaptive-like], ... at the same time it continuously monitors the
query patterns [online-like]."

This example drives one holistic session through exactly that mix:

1. a-priori knowledge about the standard survey columns + some idle
   time before the scientists arrive;
2. an exploratory burst on *unanticipated* columns (instant
   adaptation, no idle time needed);
3. a lunch break (idle) which the kernel spends refining whatever the
   morning's exploration revealed to be hot.

Run:  python examples/astronomy_exploration.py
"""

import numpy as np

from repro import Database, SimClock, scale_by_name
from repro.offline.whatif import WorkloadStatement
from repro.storage import build_paper_table
from repro.storage.catalog import ColumnRef
from repro.workload.generators import UniformRangeGenerator

SCALE = scale_by_name("small")
DOMAIN = (1, 100_000_000)

#: The telescope catalog: sky coordinates, magnitudes, redshift, ...
COLUMNS = {
    "A1": "right_ascension",
    "A2": "declination",
    "A3": "magnitude",
    "A4": "redshift",
    "A5": "parallax",
}


def main() -> None:
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(
        build_paper_table(rows=SCALE.rows, columns=len(COLUMNS), seed=11)
    )
    session = db.session("holistic", policy="ranked")

    # -- 1. The standard survey: known a priori. ----------------------
    standard = [
        WorkloadStatement(ColumnRef("R", "A1"), 0, 1, weight=40),
        WorkloadStatement(ColumnRef("R", "A2"), 0, 1, weight=40),
    ]
    session.hint_workload(standard)
    overnight = session.idle(seconds=2.0)
    print(
        f"overnight tuning: {overnight.actions_done} refinements on "
        f"the survey columns ({overnight.note})"
    )

    rng = np.random.default_rng(3)

    def burst(column: str, n: int, label: str) -> float:
        generator = UniformRangeGenerator(
            ColumnRef("R", column), *DOMAIN, 0.01, seed=int(rng.integers(1e6))
        )
        before = session.report.total_response_s
        for query in generator.queries(n):
            session.run_query(query)
        spent = session.report.total_response_s - before
        print(f"{label:<38s} {n:4d} queries in {spent:8.3f} s")
        return spent

    # -- 2. Morning: the standard survey runs fast. --------------------
    burst("A1", 30, "survey scan (right_ascension, tuned)")
    burst("A2", 30, "survey scan (declination, tuned)")

    # -- 3. A scientist goes exploring: nobody indexed redshift. -------
    cold = burst("A4", 30, "exploration (redshift, cold)")

    # -- 4. Lunch break: the kernel notices redshift got hot. ----------
    lunch = session.idle(seconds=1.0)
    print(
        f"lunch-break tuning: {lunch.actions_done} refinements "
        f"({lunch.note})"
    )

    warm = burst("A4", 30, "exploration (redshift, after lunch)")
    print(
        f"\nlunch break made redshift queries "
        f"{cold / max(warm, 1e-12):.1f}x faster -- no DBA involved"
    )

    kernel = session.strategy
    print("\nfinal physical design (pieces per cracked column):")
    for ref, index in sorted(
        kernel.indexes.items(), key=lambda kv: str(kv[0])
    ):
        name = COLUMNS.get(ref.column, ref.column)
        print(
            f"  {ref!s:6s} ({name:16s}) pieces={index.piece_count:5d} "
            f"avg_piece={index.average_piece_size():10.0f} rows"
        )


if __name__ == "__main__":
    main()
