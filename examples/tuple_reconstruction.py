#!/usr/bin/env python3
"""Sideways cracking: multi-attribute queries without positional joins.

Cracking physically reorders a column, so ``SELECT price WHERE
timestamp BETWEEN ...`` cannot simply look up prices by position
afterwards.  Sideways cracking ([13], implemented in
``repro.cracking.sideways``) maintains *cracker maps* -- aligned
(head, tail) array pairs that crack together -- so the projection
comes out as a contiguous view.

The demo compares three ways to answer select-project queries:

1. full scan with positional access (always correct, always slow);
2. a plain cracker index with row-id tracking (cracker map lookups
   materialize the projection through scattered reads);
3. sideways cracker maps (projection is a contiguous view).

Run:  python examples/tuple_reconstruction.py
"""

import numpy as np

from repro import Database, SimClock, scale_by_name
from repro.cracking import CrackerIndex, SidewaysCrackerIndex
from repro.simtime.charge import CostCharge
from repro.storage import build_paper_table

SCALE = scale_by_name("small")
QUERIES = 40


def main() -> None:
    db = Database(clock=SimClock(SCALE.cost_model()))
    db.add_table(build_paper_table(rows=SCALE.rows, columns=2, seed=13))
    table = db.table("R")
    head, tail = table.column("A1"), table.column("A2")
    rng = np.random.default_rng(4)
    ranges = [
        (low, low + 1e6)
        for low in rng.uniform(1, 9.9e7, size=QUERIES)
    ]

    # -- 1. scan + positional projection ------------------------------
    clock = SimClock(SCALE.cost_model())
    checksum_scan = 0
    for low, high in ranges:
        mask = (head.values >= low) & (head.values < high)
        projected = tail.values[mask]
        clock.charge(
            CostCharge(
                elements_scanned=head.row_count,
                elements_materialized=len(projected),
            )
        )
        checksum_scan += int(projected.sum())
    scan_s = clock.now()

    # -- 2. cracker index + row-id reconstruction ---------------------
    clock = SimClock(SCALE.cost_model())
    index = CrackerIndex(head, clock=clock, track_rowids=True)

    def rowid_batch() -> int:
        checksum = 0
        for low, high in ranges:
            view = index.select_range(low, high)
            positions = view.positions()
            projected = tail.values[positions]  # scattered reads
            clock.charge(
                CostCharge(
                    seeks=len(projected),
                    elements_materialized=len(projected),
                )
            )
            checksum += int(projected.sum())
        return checksum

    checksum_rowids = rowid_batch()
    rowid_cold_s = clock.now()
    rowid_batch()  # the index is refined now: probes + scattered reads
    rowid_warm_s = clock.now() - rowid_cold_s

    # -- 3. sideways cracker maps --------------------------------------
    clock = SimClock(SCALE.cost_model())
    sideways = SidewaysCrackerIndex(table, "A1", clock=clock)

    def sideways_batch() -> int:
        return sum(
            int(sideways.select_project(low, high, "A2").values().sum())
            for low, high in ranges
        )

    checksum_sideways = sideways_batch()
    sideways_cold_s = clock.now()
    sideways_batch()  # pure contiguous views from here on
    sideways_warm_s = clock.now() - sideways_cold_s

    assert checksum_scan == checksum_rowids == checksum_sideways
    print(f"{QUERIES} select-project queries, identical results:\n")
    print(f"{'':32s}{'cold batch':>12s}{'warm batch':>12s}")
    print(f"  scan + positional projection {scan_s:>12.3f}{scan_s:>12.3f}")
    print(
        f"  cracking + row-id lookups    "
        f"{rowid_cold_s:>12.3f}{rowid_warm_s:>12.3f}"
    )
    print(
        f"  sideways cracker maps        "
        f"{sideways_cold_s:>12.3f}{sideways_warm_s:>12.3f}"
    )
    print(
        f"\ncold batches tie (cracking dominates); once refined, "
        f"sideways answers {rowid_warm_s / sideways_warm_s:.0f}x faster "
        "than row-id reconstruction: the projection never leaves its "
        "piece, so there are no scattered reads"
    )
    sideways.check_invariants()


if __name__ == "__main__":
    main()
