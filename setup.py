"""Packaging for the holistic-indexing reproduction.

All metadata lives here (instead of pyproject.toml) so that fully
offline environments keep an install path: `pip install -e .` works
wherever pip can provision its isolated build backend; without network
and without the `wheel` package, `python setup.py develop` installs
the same editable package through the legacy path.  Either way the
`repro` package imports without `PYTHONPATH=src`.
"""

from setuptools import find_packages, setup

setup(
    name="repro-holistic-indexing",
    version="1.0.0",
    description=(
        "Reproduction of 'Holistic Indexing: Offline, Online and "
        "Adaptive Indexing in the Same Kernel' (SIGMOD 2012): a "
        "column-store substrate, database cracking, offline/online "
        "tuning, the holistic kernel with parallel idle-time tuning "
        "workers, and a bench harness for the paper's experiments."
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    package_dir={"": "src"},
    packages=find_packages("src"),
    license="MIT",
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Database :: Database Engines/Servers",
    ],
)
