"""Bench: ExpP -- refinement convergence vs tuning worker count.

Sweeps the holistic kernel's ``num_workers`` knob over the same
multi-column refinement workload and checks the multi-core shape: the
virtual idle time to converge improves monotonically from 1 to 4
workers, because the parallel lanes overlap worker charges while the
piece latches keep the refinements conflict-free.
"""

import pytest

from repro.bench.exp_parallel import expp_text, run_parallel_sweep


@pytest.mark.benchmark(group="parallel")
def test_bench_parallel_convergence_vs_cores(benchmark):
    result = benchmark.pedantic(
        run_parallel_sweep,
        args=("tiny",),
        kwargs={
            "worker_counts": (0, 1, 2, 4),
            "columns": 3,
            "actions_per_window": 96,
            "seed": 42,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(expp_text(result))

    for workers in (0, 1, 2, 4):
        run = result.run_for(workers)
        assert run.converged
        assert run.actions_effective > 0

    # Convergence improves monotonically with cores (the paper's
    # idle-core claim; Alvarez et al.'s multi-core scaling shape).
    serial = result.run_for(1).idle_consumed_s
    two = result.run_for(2).idle_consumed_s
    four = result.run_for(4).idle_consumed_s
    assert serial > two > four

    # The serial scheduler and a single worker do the same aggregate
    # work -- one lane cannot overlap with anything.
    one = result.run_for(1)
    baseline = result.run_for(0)
    assert one.idle_consumed_s == pytest.approx(
        baseline.idle_consumed_s, rel=0.25
    )

    # Parallel lanes overlap for real: 4 workers at least ~1.5x.
    assert result.run_for(4).speedup_vs_serial_work > 1.5
