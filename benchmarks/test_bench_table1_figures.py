"""Bench: Table 1 (feature matrix), Figure 1 (timeline), Figure 2
(cracking walk-through).

These artefacts are cheap to regenerate; benchmarking them keeps one
harness (`pytest benchmarks/ --benchmark-only`) able to reproduce
every numbered artefact of the paper.
"""

import pytest

from repro.bench.cracking_demo import figure2_text
from repro.bench.features import PAPER_TABLE1, collect_features, table1_text
from repro.bench.timeline import figure1_text
from repro.config import TINY


@pytest.mark.benchmark(group="table1")
def test_bench_table1_feature_matrix(benchmark):
    rows = benchmark(collect_features)
    print()
    print(table1_text())
    for features in rows:
        expected = PAPER_TABLE1[features.name]
        assert (
            features.statistical_analysis,
            features.idle_a_priori,
            features.idle_during_workload,
            features.incremental_indexing,
            features.workload,
        ) == expected


@pytest.mark.benchmark(group="figure1")
def test_bench_figure1_timeline(benchmark):
    text = benchmark.pedantic(
        figure1_text, args=(TINY,), kwargs={"seed": 42},
        iterations=1, rounds=1,
    )
    print()
    print(text)
    for name in ("offline", "online", "adaptive", "holistic"):
        assert f"[{name}]" in text


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2_cracking_demo(benchmark):
    text = benchmark(figure2_text)
    print()
    print(text)
    assert "after Q2" in text
