"""Bench: Exp2 -- the paper's Figure 4 (multi-column budget)."""

import pytest

from repro.bench.exp2 import figure4_text, run_exp2
from repro.config import TINY


@pytest.mark.benchmark(group="exp2")
def test_bench_exp2_figure4(benchmark):
    result = benchmark.pedantic(
        run_exp2, args=(TINY,), kwargs={"seed": 42}, iterations=1, rounds=1
    )
    print()
    print(figure4_text(result))

    offline = result.offline_report.cumulative_curve()
    holistic = result.holistic_report.cumulative_curve()
    # Paper: offline wins exactly the first (indexed) queries...
    assert offline[0] < holistic[0]
    assert offline[1] < holistic[1]
    # ...then holistic takes over for good.
    assert holistic[-1] < offline[-1] / 10
    # The idle budget equals two full sorts by construction.
    two_sorts = 2 * result.scale.cost_model().sort_seconds(
        result.scale.rows
    )
    assert result.idle_budget_s == pytest.approx(two_sorts)
