"""Bench: the ablation studies A1-A3 (DESIGN.md §5)."""

import pytest

from repro.bench.ablations import (
    ablation_cache_target,
    ablation_policies,
    ablation_stochastic,
    ablation_text,
)
from repro.config import TINY


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_policies(benchmark):
    rows = benchmark.pedantic(
        ablation_policies,
        args=(TINY,),
        kwargs={"seed": 42, "idle_actions": 100},
        iterations=1,
        rounds=1,
    )
    print()
    print(ablation_text("A1: resource-spreading policies", rows))
    assert {r.label for r in rows} == {
        "round_robin",
        "ranked",
        "weighted_random",
    }
    assert all(r.total_response_s > 0 for r in rows)


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_stochastic(benchmark):
    rows = benchmark.pedantic(
        ablation_stochastic,
        args=(TINY,),
        kwargs={"seed": 42},
        iterations=1,
        rounds=1,
    )
    print()
    print(ablation_text("A2: stochastic vs plain cracking", rows))
    totals = {r.label: r.total_response_s for r in rows}
    # [10]: data-driven cracking is robust where plain cracking is not.
    assert totals["ddr"] < totals["standard"]
    assert totals["ddc"] < totals["standard"]


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_batch_tuning(benchmark):
    from repro.bench.ablations import ablation_batch_tuning

    rows = benchmark.pedantic(
        ablation_batch_tuning,
        args=(TINY,),
        kwargs={"seed": 42, "idle_actions": 300},
        iterations=1,
        rounds=1,
    )
    print()
    print(ablation_text("A4: sequential vs batched idle tuning", rows))
    by_label = {r.label: r for r in rows}
    # Batched refinement must spend less virtual idle time for the
    # same action budget (the "in one go" optimization).
    seq_idle = float(by_label["sequential"].detail.split()[3])
    batch_idle = float(by_label["batched"].detail.split()[3])
    assert batch_idle < seq_idle


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_cache_target(benchmark):
    rows = benchmark.pedantic(
        ablation_cache_target,
        args=(TINY,),
        kwargs={"seed": 42, "idle_actions": 500},
        iterations=1,
        rounds=1,
    )
    print()
    print(ablation_text("A3: cache-fit stopping criterion", rows))
    # Stopping refinement at very coarse pieces must hurt.
    assert rows[-1].total_response_s >= rows[0].total_response_s
