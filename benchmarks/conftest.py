"""Shared fixtures for the pytest-benchmark harness.

Two kinds of benchmarks live here:

* **artefact benches** (``test_bench_exp1/exp2/...``): run the paper's
  experiments end-to-end at tiny scale under ``benchmark`` and assert
  the paper's qualitative shape, printing the projected rows/series;
* **kernel microbenches** (``test_bench_kernels``): wall-clock numpy
  kernel measurements (crack, sort, scan, probe) -- the numbers that
  would calibrate the cost model on *this* machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.loader import generate_uniform_column


@pytest.fixture(scope="session")
def bench_column():
    """One million uniform ints for kernel microbenches."""
    return generate_uniform_column("A1", rows=1_000_000, seed=99)


@pytest.fixture()
def bench_values(bench_column) -> np.ndarray:
    """A fresh writable copy of the bench column's values."""
    return bench_column.copy_values()
