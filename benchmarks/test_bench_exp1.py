"""Bench: Exp1 -- the paper's Figure 3 and Table 2.

Regenerates the single-column experiment end-to-end (four strategies,
idle windows of X refinements) and prints the projected Table 2 rows.
The benchmark measures the harness wall time at tiny scale; the
asserted *shape* is the paper's.
"""

import pytest

from repro.bench.exp1 import run_exp1, table2_text
from repro.config import TINY


@pytest.mark.benchmark(group="exp1")
def test_bench_exp1_figure3_table2(benchmark):
    result = benchmark.pedantic(
        run_exp1,
        args=(TINY,),
        kwargs={"x_values": (10, 100), "seed": 42},
        iterations=1,
        rounds=1,
    )
    print()
    print(table2_text(result))

    # Paper shape: Scan > Offline > Adaptive > Holistic, all X.
    for x in result.x_values:
        scan = result.run_for("scan", x).total_s
        offline = result.run_for("offline", x).total_s
        adaptive = result.run_for("adaptive", x).total_s
        holistic = result.run_for("holistic", x).total_s
        assert scan > offline > adaptive > holistic
    # More idle -> better holistic (Table 2's monotone row).
    assert (
        result.run_for("holistic", 100).total_s
        < result.run_for("holistic", 10).total_s
    )
    # Scan dwarfs offline; the gap widens with query count (it is
    # ~240x at the paper's 10^4 queries, ~5x at tiny's 200).
    assert (
        result.run_for("scan", 10).total_s
        > 3 * result.run_for("offline", 10).total_s
    )
