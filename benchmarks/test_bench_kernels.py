"""Wall-clock microbenchmarks of the physical kernels.

These measure the numpy kernels on *this* machine -- the numbers a
re-calibration of the cost model would start from (DESIGN.md §3 holds
the paper-testbed equivalents).
"""

import numpy as np
import pytest

from repro.cracking.engine import crack_in_three, crack_in_two
from repro.cracking.index import CrackerIndex
from repro.offline.fullindex import FullIndex
from repro.simtime.clock import WallClock


@pytest.mark.benchmark(group="kernels")
def test_bench_crack_in_two(benchmark, bench_column):
    def action():
        values = bench_column.copy_values()
        return crack_in_two(values, 0, len(values), 50_000_000)

    split, charge = benchmark(action)
    assert 0 < split < bench_column.row_count
    assert charge.elements_cracked == bench_column.row_count


@pytest.mark.benchmark(group="kernels")
def test_bench_crack_in_three(benchmark, bench_column):
    def action():
        values = bench_column.copy_values()
        return crack_in_three(
            values, 0, len(values), 25_000_000, 75_000_000
        )

    lo, hi, _charge = benchmark(action)
    assert 0 < lo < hi < bench_column.row_count


@pytest.mark.benchmark(group="kernels")
def test_bench_full_scan_select(benchmark, bench_column):
    from repro.engine.operators import scan_select

    clock = WallClock()
    view = benchmark(
        scan_select, bench_column.values, 25_000_000, 26_000_000, clock
    )
    assert view.count > 0


@pytest.mark.benchmark(group="kernels")
def test_bench_full_sort_build(benchmark, bench_column):
    def action():
        index = FullIndex(bench_column, WallClock())
        index.build()
        return index

    index = benchmark(action)
    assert index.is_built


@pytest.mark.benchmark(group="kernels")
def test_bench_sorted_probe(benchmark, bench_column):
    index = FullIndex(bench_column, WallClock())
    index.build()
    view = benchmark(index.select_range, 25_000_000, 26_000_000)
    assert view.count > 0


@pytest.mark.benchmark(group="kernels")
def test_bench_cracking_query_sequence(benchmark, bench_column):
    """100 cracking selects: the adaptive-indexing hot path."""
    rng = np.random.default_rng(5)
    lows = rng.uniform(1, 9e7, size=100)

    def action():
        index = CrackerIndex(bench_column, clock=WallClock())
        total = 0
        for low in lows:
            total += index.select_range(low, low + 1e6).count
        return total

    total = benchmark.pedantic(action, iterations=1, rounds=3)
    assert total > 0


@pytest.mark.benchmark(group="kernels")
def test_bench_random_crack_action(benchmark, bench_column):
    """The holistic auxiliary action on a warmed index."""
    index = CrackerIndex(bench_column, clock=WallClock())
    rng = np.random.default_rng(7)
    for _ in range(64):
        index.random_crack(rng, min_piece_size=2)

    def action():
        return index.random_crack(rng, min_piece_size=2)

    benchmark(action)
    assert index.piece_count > 64
