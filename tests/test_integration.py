"""Cross-module integration tests.

Every strategy must produce identical answers on identical workloads
-- the physical design differs, the logical results may not.  Updates
staged through the table layer must be visible regardless of strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY
from repro.simtime.clock import SimClock
from repro.storage.database import Database
from repro.storage.loader import build_paper_table
from repro.workload.generators import UniformRangeGenerator
from repro.storage.catalog import ColumnRef

from tests.conftest import ground_truth_count

STRATEGIES = ("scan", "adaptive", "offline", "online", "holistic")


def _fresh_db() -> Database:
    db = Database(clock=SimClock(TINY.cost_model()))
    db.add_table(build_paper_table(rows=10_000, columns=2, seed=42))
    return db


def _workload(n: int) -> list:
    generator = UniformRangeGenerator(
        ColumnRef("R", "A1"), 1, 100_000_000, 0.02, seed=77
    )
    return list(generator.queries(n))


def test_all_strategies_agree_on_results():
    queries = _workload(60)
    counts_by_strategy: dict[str, list[int]] = {}
    for name in STRATEGIES:
        db = _fresh_db()
        session = db.session(name)
        counts = [session.run_query(q).count for q in queries]
        counts_by_strategy[name] = counts
    reference = counts_by_strategy["scan"]
    for name, counts in counts_by_strategy.items():
        assert counts == reference, f"{name} diverges from scan"


def test_all_strategies_agree_on_values():
    queries = _workload(20)
    value_sets: dict[str, list] = {}
    for name in STRATEGIES:
        db = _fresh_db()
        session = db.session(name)
        sets = [
            sorted(session.run_query(q).values().tolist())
            for q in queries
        ]
        value_sets[name] = sets
    reference = value_sets["scan"]
    for name, sets in value_sets.items():
        assert sets == reference, f"{name} returns different values"


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pending_inserts_visible_everywhere(strategy):
    db = _fresh_db()
    session = db.session(strategy)
    # Warm the strategy's index first.
    session.select("R", "A1", 40_000_000, 41_000_000)
    db.table("R").insert_rows(
        {"A1": [40_500_000, 40_500_001], "A2": [1, 2]}
    )
    base = ground_truth_count(
        db.column("R", "A1"), 40_000_000, 41_000_000
    )
    result = session.select("R", "A1", 40_000_000, 41_000_000)
    assert result.count == base + 2


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pending_deletes_subtracted_everywhere(strategy):
    db = _fresh_db()
    session = db.session(strategy)
    column = db.column("R", "A1")
    victim_pos = 123
    victim = int(column.values[victim_pos])
    session.select("R", "A1", victim, victim + 1)
    db.table("R").updates_for("A1").stage_deletes(
        [victim_pos], [victim]
    )
    base = ground_truth_count(column, victim, victim + 1)
    result = session.select("R", "A1", victim, victim + 1)
    assert result.count == base - 1


def test_strategies_disagree_on_time_not_results():
    """The whole point of the paper in one test: same answers, very
    different cumulative response times."""
    queries = _workload(100)
    totals = {}
    for name in ("scan", "adaptive", "holistic"):
        db = _fresh_db()
        session = db.session(name)
        if name == "holistic":
            session.idle(actions=200)
        for query in queries:
            session.run_query(query)
        totals[name] = session.report.total_response_s
    assert totals["holistic"] < totals["adaptive"] < totals["scan"]


def test_virtual_clock_is_deterministic():
    """Two identical runs give bit-identical virtual timings."""

    def run() -> list[float]:
        db = _fresh_db()
        session = db.session("holistic")
        session.idle(actions=50)
        for query in _workload(30):
            session.run_query(query)
        return session.report.cumulative_curve()

    assert run() == run()


def test_wall_clock_mode_works_end_to_end():
    """The same experiment code runs under real time measurement."""
    from repro.simtime.clock import WallClock

    db = Database(clock=WallClock())
    db.add_table(build_paper_table(rows=10_000, columns=1, seed=42))
    session = db.session("adaptive")
    for query in _workload(10):
        result = session.run_query(query)
        assert result.count >= 0
    assert session.report.total_response_s > 0
    curve = session.report.cumulative_curve()
    assert all(a <= b for a, b in zip(curve, curve[1:]))
