"""Known-bad: early return escapes without releasing the latch."""


def leaky_return(latch, pieces, key):
    stalled = latch.acquire_read()
    if key not in pieces:
        return None  # read latch leaks on this path
    result = pieces[key]
    latch.release_read()
    return result, stalled
