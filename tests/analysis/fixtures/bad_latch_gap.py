"""Known-bad: work between acquire and try leaks on a raise."""


def leaky_gap(latch, pieces):
    latch.acquire_write()
    pieces.refresh()  # raises -> the write latch is never released
    try:
        return pieces.scan()
    finally:
        latch.release_write()
