"""Known-bad: a waiver pragma without its mandatory reason."""

import time


def stamp():
    return time.time()  # repro: allow[determinism]
