"""Known-bad: float needle probed into a (possibly int64) haystack."""

import numpy as np


def locate(store, bound: float):
    return int(np.searchsorted(store, bound, side="left"))


def count_below(store, pivot):
    needle = float(pivot)
    return int(np.count_nonzero(np.less(store, needle)))
