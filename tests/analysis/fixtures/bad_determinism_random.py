"""Known-bad: process-global and unseeded RNG use."""

import random

import numpy as np


def pick_pivot(low, high):
    return random.uniform(low, high)


def make_generator():
    return np.random.default_rng()
