"""Known-bad: fault-plane sites the registry does not know about."""

from repro import faults


def perform(action):
    faults.trip("workers.prform")  # typo: never fires
    action()


def publish(blob):
    faults.tamper("persist.restore", blob)  # registered, but not a tamper point
    return blob
