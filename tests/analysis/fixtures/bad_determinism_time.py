"""Known-bad: ambient wall-clock read in reproducible code."""

import time


def stamp_crack(tape, pivot):
    tape.append((pivot, time.time()))
