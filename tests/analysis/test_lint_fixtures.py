"""The lint gate's own regression suite: known-bad fixtures must flag,
the real tree must be clean, and the CLI must gate on both."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(repro.__file__).resolve().parent

#: fixture file -> the rule it must trip (one entry per rule family).
EXPECTED = {
    "bad_latch_gap.py": "latch-discipline",
    "bad_latch_return.py": "latch-discipline",
    "bad_determinism_time.py": "determinism",
    "bad_determinism_random.py": "determinism",
    "bad_dtype_promotion.py": "dtype-promotion",
    "bad_fault_unregistered.py": "fault-coverage",
    "bad_waiver_reasonless.py": "waiver",
}


def test_every_fixture_has_an_expectation():
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    assert on_disk == set(EXPECTED)


@pytest.mark.parametrize("name,rule", sorted(EXPECTED.items()))
def test_fixture_is_flagged(name: str, rule: str):
    findings = run_lint([FIXTURES / name], root=SRC_ROOT)
    assert findings, f"{name} produced no findings at all"
    assert any(f.rule == rule for f in findings), (
        f"{name} expected a [{rule}] finding, got "
        f"{[f.format() for f in findings]}"
    )


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_cli_check_exits_nonzero_on_fixture(name: str):
    code = analysis_main(
        ["--check", "--no-mypy", str(FIXTURES / name)]
    )
    assert code == 1


def test_repo_lints_clean():
    """The real tree carries zero findings -- genuinely clean, not
    allowlisted clean (waivers all carry reasons or they'd flag)."""
    findings = run_lint(root=SRC_ROOT)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_check_exits_zero_on_repo():
    assert analysis_main(["--check", "--no-mypy"]) == 0


def test_findings_format_and_dict_roundtrip():
    findings = run_lint(
        [FIXTURES / "bad_determinism_time.py"], root=SRC_ROOT
    )
    finding = findings[0]
    assert str(finding.line) in finding.format()
    assert finding.as_dict()["rule"] == finding.rule
