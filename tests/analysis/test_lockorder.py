"""Tests for the static lock-order analyzer."""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent

import repro
from repro.analysis import lockorder

SRC_ROOT = Path(repro.__file__).resolve().parent


def _analyze_snippet(tmp_path: Path, code: str) -> dict:
    target = tmp_path / "snippet.py"
    target.write_text(dedent(code))
    return lockorder.analyze([target])


def test_repo_latch_graph_is_acyclic():
    report = lockorder.analyze()
    assert report["ok"], f"cycle: {report['cycle']}"
    assert report["cycle"] is None


def test_repo_graph_contains_the_documented_order():
    """The core of the deadlock argument: table latch before piece
    latches, latches before the index mutex."""
    report = lockorder.analyze()
    edges = {(e["from"], e["to"]) for e in report["edges"]}
    assert ("latch.table", "latch.piece") in edges
    assert ("latch.table", "CrackerIndex.lock") in edges
    assert ("latch.piece", "CrackerIndex.lock") in edges
    # and never the reverses
    assert ("latch.piece", "latch.table") not in edges
    assert ("CrackerIndex.lock", "latch.table") not in edges
    assert ("CrackerIndex.lock", "latch.piece") not in edges


def test_repo_reports_piece_latch_self_nesting_for_the_witness():
    report = lockorder.analyze()
    nested = {n["lock"] for n in report["same_class_nestings"]}
    assert "latch.piece" in nested


def test_unresolved_sites_are_counted_not_hidden():
    report = lockorder.analyze()
    assert isinstance(report["unresolved_sites"], int)
    assert report["unresolved_sites"] > 0  # ExitStack etc. are opaque


def test_synthetic_ab_ba_cycle_is_detected(tmp_path):
    report = _analyze_snippet(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def ab(self):
                with self.a:
                    with self.b:
                        pass

            def ba(self):
                with self.b:
                    with self.a:
                        pass
        """,
    )
    assert not report["ok"]
    assert report["cycle"] is not None
    assert set(report["cycle"]) >= {"Pair.a", "Pair.b"}


def test_consistent_order_is_clean(tmp_path):
    report = _analyze_snippet(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def one(self):
                with self.a:
                    with self.b:
                        pass

            def two(self):
                with self.a:
                    self.helper()

            def helper(self):
                with self.b:
                    pass
        """,
    )
    assert report["ok"]
    edges = {(e["from"], e["to"]) for e in report["edges"]}
    assert edges == {("Pair.a", "Pair.b")}


def test_cycle_through_a_call_is_detected(tmp_path):
    """Orders established in different functions still conflict."""
    report = _analyze_snippet(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def forward(self):
                with self.a:
                    self.take_b()

            def take_b(self):
                with self.b:
                    pass

            def backward(self):
                with self.b:
                    self.take_a()

            def take_a(self):
                with self.a:
                    pass
        """,
    )
    assert not report["ok"]


def test_contextmanager_held_at_yield_flows_to_callers(tmp_path):
    report = _analyze_snippet(
        tmp_path,
        """
        import threading
        from contextlib import contextmanager

        class Guard:
            def __init__(self):
                self.outer = threading.Lock()
                self.inner = threading.Lock()

            @contextmanager
            def scope(self):
                with self.outer:
                    yield

            def use(self):
                with self.scope():
                    with self.inner:
                        pass
        """,
    )
    assert report["ok"]
    edges = {(e["from"], e["to"]) for e in report["edges"]}
    assert ("Guard.outer", "Guard.inner") in edges


def test_bare_acquire_release_pairs_scope_correctly(tmp_path):
    """A latch released before the next acquisition must not create an
    order edge between the two."""
    report = _analyze_snippet(
        tmp_path,
        """
        import threading

        class ReadWriteLatch:
            def __init__(self, witness_group=None):
                self._cond = threading.Condition()

            def acquire_read(self):
                pass

            def release_read(self):
                pass

        class Seq:
            def __init__(self):
                self.first = ReadWriteLatch(witness_group="lock.first")
                self.second = ReadWriteLatch(witness_group="lock.second")

            def one_then_two(self):
                self.first.acquire_read()
                try:
                    pass
                finally:
                    self.first.release_read()
                self.second.acquire_read()
                try:
                    pass
                finally:
                    self.second.release_read()
        """,
    )
    edges = {(e["from"], e["to"]) for e in report["edges"]}
    assert ("lock.first", "lock.second") not in edges


def test_reentrant_rlock_is_not_a_same_class_nesting(tmp_path):
    report = _analyze_snippet(
        tmp_path,
        """
        import threading

        class Box:
            def __init__(self):
                self.lock = threading.RLock()

            def outer(self):
                with self.lock:
                    self.inner()

            def inner(self):
                with self.lock:
                    pass
        """,
    )
    assert report["ok"]
    assert report["same_class_nestings"] == []
    assert "Box.lock" in report["reentrant"]
