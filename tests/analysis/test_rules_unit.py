"""Unit tests for individual lint rules on handwritten snippets."""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent

import repro
from repro.analysis.lint import LintContext, run_lint
from repro.analysis.rules import determinism, dtype, faultpoints, latch
from repro.analysis.source import SourceFile

SRC_ROOT = Path(repro.__file__).resolve().parent


def _ctx(root: Path | None = None) -> LintContext:
    return LintContext.build(root if root is not None else SRC_ROOT)


def _src(code: str, path: str = "snippet.py") -> SourceFile:
    return SourceFile.parse(Path(path), text=dedent(code))


# -- latch-discipline ----------------------------------------------------


def test_latch_accepts_acquire_followed_by_try_finally():
    src = _src(
        """
        def ok(latch):
            stalled = latch.acquire_write()
            try:
                return stalled
            finally:
                latch.release_write()
        """
    )
    assert latch.check(src, _ctx()) == []


def test_latch_accepts_safe_statement_between_acquire_and_try():
    src = _src(
        """
        def ok(latch):
            stalled = latch.acquire_read()
            held = []
            try:
                return held
            finally:
                latch.release_read()
        """
    )
    assert latch.check(src, _ctx()) == []


def test_latch_accepts_acquire_inside_protected_try():
    # read_piece's shape: the inner acquire's own block is followed by
    # the inner try that releases it.
    src = _src(
        """
        def ok(table, key):
            stalled = table.outer.acquire_read()
            try:
                latch = table.latch(key)
                stalled = latch.acquire_read() or stalled
                try:
                    return stalled
                finally:
                    latch.release_read()
            finally:
                table.outer.release_read()
        """
    )
    assert latch.check(src, _ctx()) == []


def test_latch_rejects_mode_mismatch_in_finally():
    src = _src(
        """
        def bad(latch):
            latch.acquire_write()
            try:
                pass
            finally:
                latch.release_read()
        """
    )
    findings = latch.check(src, _ctx())
    assert [f.rule for f in findings] == ["latch-discipline"]


def test_latch_rejects_receiver_mismatch():
    src = _src(
        """
        def bad(a, b):
            a.acquire_write()
            try:
                pass
            finally:
                b.release_write()
        """
    )
    assert len(latch.check(src, _ctx())) == 1


def test_latch_accepts_try_acquire_with_bulk_release():
    src = _src(
        """
        def ok(latches, owner, pieces):
            granted = all(
                latches.try_acquire(owner, start, "x") for start in pieces
            )
            try:
                return granted
            finally:
                latches.release_all(owner)
        """
    )
    assert latch.check(src, _ctx()) == []


def test_latch_rejects_try_acquire_without_any_release():
    src = _src(
        """
        def bad(latches, owner):
            return latches.try_acquire(owner, 0, "x")
        """
    )
    assert len(latch.check(src, _ctx())) == 1


# -- determinism ---------------------------------------------------------


def test_determinism_resolves_import_aliases():
    src = _src(
        """
        from time import perf_counter as pc

        def f():
            return pc()
        """
    )
    assert len(determinism.check(src, _ctx())) == 1


def test_determinism_allows_seeded_generators():
    src = _src(
        """
        import numpy as np
        import random

        def f(seed):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed=seed)
            c = random.Random(seed)
            return a, b, c
        """
    )
    assert determinism.check(src, _ctx()) == []


def test_determinism_flags_legacy_numpy_global():
    src = _src(
        """
        import numpy as np

        def f():
            return np.random.rand(3)
        """
    )
    assert len(determinism.check(src, _ctx())) == 1


def test_determinism_exempts_bench_workload_faults(tmp_path):
    code = "import time\n\ndef f():\n    return time.time()\n"
    for exempt_dir in ("bench", "workload", "faults"):
        target = tmp_path / exempt_dir / "mod.py"
        target.parent.mkdir(exist_ok=True)
        target.write_text(code)
        src = SourceFile.parse(target)
        assert determinism.check(src, _ctx(tmp_path)) == []
    hot = tmp_path / "cracking" / "mod.py"
    hot.parent.mkdir()
    hot.write_text(code)
    assert len(determinism.check(SourceFile.parse(hot), _ctx(tmp_path))) == 1


def test_wall_helpers_carry_the_only_time_waivers():
    """The audited escape hatch exists, is waived with reasons, and the
    rest of the tree does not import ``time`` wall calls at all."""
    clock = SRC_ROOT / "simtime" / "clock.py"
    src = SourceFile.parse(clock)
    raw = determinism.check(src, _ctx())
    assert raw, "clock.py should have waived determinism sites"
    assert all(src.is_waived("determinism", f.line) for f in raw)
    assert not src.reasonless


# -- dtype-promotion -----------------------------------------------------


def test_dtype_ceil_reassignment_clears_the_float_mark():
    src = _src(
        """
        import math
        import numpy as np

        def f(view, pivot: float):
            if view.dtype.kind == "i":
                pivot = math.ceil(pivot)
            return np.searchsorted(view, pivot)
        """
    )
    assert dtype.check(src, _ctx()) == []


def test_dtype_flags_float_needle_without_conversion():
    src = _src(
        """
        import numpy as np

        def f(view, pivot: float):
            return np.searchsorted(view, pivot)
        """
    )
    assert len(dtype.check(src, _ctx())) == 1


def test_dtype_flags_method_form_searchsorted():
    src = _src(
        """
        def f(store, bound):
            needle = float(bound)
            return store.searchsorted(needle)
        """
    )
    assert len(dtype.check(src, _ctx())) == 1


def test_dtype_compare_requires_int_array_evidence():
    src = _src(
        """
        import numpy as np

        def flagged(keys, pivot: float):
            ints = keys.astype(np.int64)
            return ints < pivot

        def not_flagged(remaining: float):
            return remaining <= 0
        """
    )
    findings = dtype.check(src, _ctx())
    assert len(findings) == 1
    assert findings[0].line < 8  # the evidence-backed compare only


def test_dtype_exempts_the_sanctioned_helper():
    src = _src(
        """
        import numpy as np

        def exact_range_cuts(store, bounds):
            return np.searchsorted(store, np.asarray(bounds, dtype=np.float64))
        """
    )
    assert dtype.check(src, _ctx()) == []


# -- fault-coverage ------------------------------------------------------


def test_registry_parses_the_real_plan():
    ctx = _ctx()
    assert "workers.perform" in ctx.fault_points
    assert "latch.acquire" in ctx.fault_points
    assert ctx.tamper_points <= set(ctx.fault_points)
    assert len(ctx.tamper_points) >= 1


def test_unused_registered_point_is_reported(tmp_path):
    plan_dir = tmp_path / "faults"
    plan_dir.mkdir()
    (plan_dir / "plan.py").write_text(
        dedent(
            """
            FAULT_POINTS: dict[str, str] = {
                "used.point": "exercised",
                "dead.point": "never tripped",
            }
            TAMPER_POINTS = frozenset()
            """
        )
    )
    (tmp_path / "mod.py").write_text(
        dedent(
            """
            from repro import faults

            def f():
                faults.trip("used.point")
            """
        )
    )
    findings = run_lint(
        [plan_dir / "plan.py", tmp_path / "mod.py"], root=tmp_path
    )
    dead = [f for f in findings if "dead.point" in f.message]
    assert len(dead) == 1
    assert dead[0].rule == "fault-coverage"
    assert dead[0].path.endswith("plan.py")


def test_direction_two_skipped_when_plan_not_in_scope(tmp_path):
    """Linting one file must not report the rest of the tree's call
    sites as missing."""
    target = tmp_path / "mod.py"
    target.write_text("def f():\n    return 1\n")
    findings = run_lint([target], root=SRC_ROOT)
    assert findings == []


# -- waivers -------------------------------------------------------------


def test_reasoned_waiver_suppresses_the_finding():
    findings = run_lint_on_snippet(
        """
        import time

        def f():
            return time.time()  # repro: allow[determinism] -- test snippet
        """
    )
    assert findings == []


def test_waiver_for_the_wrong_rule_does_not_suppress():
    findings = run_lint_on_snippet(
        """
        import time

        def f():
            return time.time()  # repro: allow[dtype-promotion] -- wrong rule
        """
    )
    assert [f.rule for f in findings] == ["determinism"]


def run_lint_on_snippet(code: str):
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "snippet.py"
        target.write_text(dedent(code))
        return run_lint([target], root=SRC_ROOT)
