"""Property tests: the analyses never crash on arbitrary valid modules.

The rules and the lock-order analyzer walk whatever AST they are
given; a shape they did not anticipate must degrade to "no finding"
or an unresolved-site count, never an exception.  Modules are grown
from a grammar of statement fragments that deliberately mixes in the
constructs the analyses care about (acquires, withs, searchsorted,
time calls, decorators, yields) at every nesting depth.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis import lockorder
from repro.analysis.lint import run_lint
from repro.analysis.source import SourceFile

SRC_ROOT = Path(repro.__file__).resolve().parent

_SIMPLE = st.sampled_from(
    [
        "pass",
        "x = 1",
        "x = float(y)",
        "y = x",
        "del x",
        "x += 1",
        "x: float = 2.5",
        "latch.acquire_read()",
        "latch.acquire_write()",
        "latch.release_read()",
        "latch.release_write()",
        "ok = latches.try_acquire(owner, 0, mode)",
        "np.searchsorted(store, x)",
        "store.searchsorted(float(x))",
        "t = time.time()",
        "r = random.random()",
        "g = np.random.default_rng()",
        "faults.trip('workers.perform')",
        "faults.trip(name)",
        "obj.method(a, b=c)",
        "yield x",
        "return",
        "raise ValueError('boom')",
        "x = a if b else c",
        "x = [i for i in items]",
        "global x",
        "x = lambda: latch.acquire_read()",
        "import threading",
        "from contextlib import contextmanager",
    ]
)

_HEADERS = st.sampled_from(
    [
        "if cond:",
        "while cond:",
        "for i in items:",
        "with lock:",
        "with table.write_pieces(keys) as stalled:",
        "with a, b:",
        "try:",
        "def inner(p: float):",
        "async def ainner():",
        "class Inner:",
    ]
)


def _indent(lines: list[str], by: str = "    ") -> list[str]:
    return [by + line for line in lines]


@st.composite
def _block(draw, depth: int) -> list[str]:
    lines: list[str] = []
    for _ in range(draw(st.integers(1, 3))):
        if depth > 0 and draw(st.booleans()):
            header = draw(_HEADERS)
            body = _indent(draw(_block(depth - 1)))
            lines.append(header)
            lines.extend(body)
            if header == "try:":
                lines.append("finally:")
                lines.extend(_indent(draw(_block(depth - 1))))
        else:
            lines.append(draw(_SIMPLE))
    return lines


@st.composite
def _module(draw) -> str:
    preamble = [
        "import time",
        "import random",
        "import threading",
        "import numpy as np",
        "from contextlib import contextmanager",
        "from repro import faults",
    ]
    decorator = draw(
        st.sampled_from(["", "@contextmanager", "@_synchronized"])
    )
    body = _indent(draw(_block(2)))
    lines = preamble + ([decorator] if decorator else [])
    lines.append("def grown(latch, latches, table, store, x, y):")
    lines.extend(body)
    return "\n".join(lines) + "\n"


def _valid(code: str) -> bool:
    try:
        compile(code, "<grown>", "exec")
        return True
    except SyntaxError:
        return False


@settings(max_examples=80, deadline=None)
@given(_module())
def test_lint_never_crashes_on_grown_modules(tmp_path_factory, code):
    if not _valid(code):
        return  # e.g. 'yield' outside a function shape, 'return' at depth
    tmp = tmp_path_factory.mktemp("grown")
    target = tmp / "grown.py"
    target.write_text(code)
    findings = run_lint([target], root=SRC_ROOT)
    for finding in findings:
        assert finding.rule
        assert finding.line >= 0
        assert finding.format()


@settings(max_examples=80, deadline=None)
@given(_module())
def test_lockorder_never_crashes_on_grown_modules(tmp_path_factory, code):
    if not _valid(code):
        return
    tmp = tmp_path_factory.mktemp("grown")
    target = tmp / "grown.py"
    target.write_text(code)
    report = lockorder.analyze([target])
    assert isinstance(report["ok"], bool)
    assert report["unresolved_sites"] >= 0


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=400))
def test_sourcefile_parse_rejects_gracefully(tmp_path_factory, text):
    """Arbitrary text either parses or comes back as a parse finding --
    load_sources never raises."""
    from repro.analysis.source import load_sources

    tmp = tmp_path_factory.mktemp("junk")
    target = tmp / "junk.py"
    target.write_text(text, encoding="utf-8")
    sources, findings = load_sources([target])
    assert len(sources) + len(findings) >= 1


def test_sourcefile_waiver_parse_is_total():
    src = SourceFile.parse(
        Path("inline.py"),
        text=(
            "x = 1  # repro: allow[determinism] -- fine\n"
            "y = 2  # repro: allow[dtype-promotion]\n"
            "z = 3  # repro: allow[]\n"
        ),
    )
    assert src.is_waived("determinism", 1)
    assert src.reasonless == [(2, "dtype-promotion")]
