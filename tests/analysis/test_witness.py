"""Unit tests for the runtime latch witness."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import witness
from repro.cracking.concurrency import (
    LatchedCrackerAccess,
    PieceLatchTable,
    ReadWriteLatch,
)
from repro.cracking.index import CrackerIndex
from repro.errors import ConcurrencyError
from repro.simtime.clock import SimClock


@pytest.fixture(autouse=True)
def _no_leaked_witness():
    yield
    witness.disable()


def _latch(group: str, key: int | str | None = None) -> ReadWriteLatch:
    return ReadWriteLatch(witness_group=group, witness_key=key)


# -- lifecycle -----------------------------------------------------------


def test_enable_is_exclusive():
    with witness.enabled():
        with pytest.raises(ConcurrencyError):
            witness.enable()
    assert witness.active() is None


def test_hooks_are_free_when_disabled(small_column):
    # No witness: latch traffic and mutations must not record anything
    # or raise -- the production path.
    latch = _latch("latch.table")
    latch.acquire_write()
    latch.release_write()
    index = CrackerIndex(small_column, clock=SimClock())
    index.ensure_cut(5e7)
    assert witness.active() is None


# -- ordering ------------------------------------------------------------


def test_consistent_order_learns_edges_without_violations():
    table, piece = _latch("latch.table"), _latch("latch.piece", key=0)
    with witness.enabled() as w:
        table.acquire_read()
        piece.acquire_write()
        piece.release_write()
        table.release_read()
    assert w.violations == []
    assert ("latch.table", "latch.piece") in w.order_edges()
    assert w.acquires == 2 and w.releases == 2


def test_order_inversion_is_reported():
    table, piece = _latch("latch.table"), _latch("latch.piece", key=0)
    with witness.enabled() as w:
        table.acquire_read()
        piece.acquire_write()
        piece.release_write()
        table.release_read()
        # now the other way round: piece -> table inverts
        piece.acquire_write()
        table.acquire_read()
        table.release_read()
        piece.release_write()
    kinds = [v.kind for v in w.violations]
    assert kinds == ["order-inversion"]
    assert "latch.table" in w.violations[0].detail


def test_strict_mode_raises_at_the_violation_site():
    table, piece = _latch("latch.table"), _latch("latch.piece", key=0)
    with witness.enabled(strict=True):
        table.acquire_read()
        piece.acquire_write()
        piece.release_write()
        table.release_read()
        piece.acquire_write()
        with pytest.raises(witness.WitnessError):
            table.acquire_read()
        table.release_read()
        piece.release_write()


def test_ascending_piece_keys_are_legal_descending_are_not():
    low, high = _latch("latch.piece", key=1), _latch("latch.piece", key=2)
    with witness.enabled() as w:
        low.acquire_write()
        high.acquire_write()  # ascending: fine
        high.release_write()
        low.release_write()
        assert w.violations == []
        high.acquire_write()
        low.acquire_write()  # descending: the sorted-key protocol broke
        low.release_write()
        high.release_write()
    assert [v.kind for v in w.violations] == ["key-order"]


def test_table_latches_stack_in_sorted_name_order():
    """Distinct indexes' table latches may nest (the serving frontend's
    multi-column windows) but only in ascending key order."""
    a1 = _latch("latch.table", key="R.A1")
    a2 = _latch("latch.table", key="R.A2")
    with witness.enabled() as w:
        a1.acquire_write()
        a2.acquire_write()  # sorted column order: fine
        a2.release_write()
        a1.release_write()
        assert w.violations == []
        a2.acquire_write()
        a1.acquire_write()  # reversed: flagged
        a1.release_write()
        a2.release_write()
    assert [v.kind for v in w.violations] == ["key-order"]


def test_untagged_latches_group_together():
    a, b = ReadWriteLatch(), ReadWriteLatch()
    with witness.enabled() as w:
        a.acquire_read()
        b.acquire_read()
        b.release_read()
        a.release_read()
    assert [v.kind for v in w.violations] == ["order-inversion"]
    assert witness.UNTAGGED_GROUP in w.violations[0].detail


def test_violations_record_the_holding_thread():
    table, piece = _latch("latch.table"), _latch("latch.piece", key=0)
    with witness.enabled() as w:
        table.acquire_read()
        piece.acquire_write()
        piece.release_write()
        table.release_read()

        def invert():
            piece.acquire_write()
            table.acquire_read()
            table.release_read()
            piece.release_write()

        worker = threading.Thread(target=invert, name="inverter")
        worker.start()
        worker.join()
    assert [v.thread for v in w.violations] == ["inverter"]
    assert w.violations[0].held[0].group == "latch.piece"


# -- mutation coverage ---------------------------------------------------


def _armed_index(column) -> tuple[CrackerIndex, PieceLatchTable]:
    index = CrackerIndex(column, clock=SimClock())
    table = PieceLatchTable()
    witness.arm(index, table)
    return index, table


def test_unlatched_mutation_is_reported(small_column):
    with witness.enabled() as w:
        index, _ = _armed_index(small_column)
        index.ensure_cut(5e7)
    assert any(v.kind == "unlatched-mutation" for v in w.violations)
    assert w.mutation_checks > 0


def test_latched_access_passes_mutation_checks(small_column):
    with witness.enabled() as w:
        index, table = _armed_index(small_column)
        access = LatchedCrackerAccess(index, table)
        assert access.crack_value(5e7)
        result = access.select_range(2e7, 6e7)
        assert result.count > 0
    assert w.violations == []
    assert w.mutation_checks > 0


def test_table_exclusive_covers_whole_index_mutations(small_column):
    with witness.enabled() as w:
        index, table = _armed_index(small_column)
        index.ensure_cut(5e7)  # build something to rebuild
        w.violations.clear()
        with table.exclusive():
            index.rebuild()
    assert w.violations == []


def test_unarmed_indexes_are_not_checked(small_column):
    with witness.enabled() as w:
        index = CrackerIndex(small_column, clock=SimClock())
        index.ensure_cut(5e7)  # never armed: no violation
    assert w.violations == []
    assert w.mutation_checks == 0


def test_disarm_stops_enforcement(small_column):
    with witness.enabled() as w:
        index, _ = _armed_index(small_column)
        witness.disarm(index)
        index.ensure_cut(5e7)
    assert w.violations == []


def test_summary_is_json_ready(small_column):
    with witness.enabled() as w:
        index, table = _armed_index(small_column)
        access = LatchedCrackerAccess(index, table)
        access.crack_value(4e7)
    summary = w.summary()
    assert summary["violations"] == []
    assert summary["acquires"] == summary["releases"]
    assert any("latch" in edge for edge in summary["order_edges"])
