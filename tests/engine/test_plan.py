"""Unit tests for access-path planning and EXPLAIN."""

from repro.engine.plan import (
    AccessPath,
    PlannedQuery,
    estimate_path_cost,
)
from repro.engine.query import RangeQuery
from repro.simtime.model import CostModel
from repro.storage.catalog import ColumnRef


def test_path_cost_ordering():
    model = CostModel()
    n = 100_000_000
    scan = estimate_path_cost(AccessPath.SCAN, n, model)
    probe = estimate_path_cost(AccessPath.FULL_INDEX, n, model)
    crack = estimate_path_cost(AccessPath.CRACKER, n, model)
    wait = estimate_path_cost(AccessPath.WAIT_FOR_BUILD, n, model)
    assert probe < scan
    assert scan < wait  # waiting for a sort dwarfs one scan
    assert probe < crack  # cracking must move data


def test_cracker_cost_shrinks_with_piece_size():
    model = CostModel()
    n = 100_000_000
    big = estimate_path_cost(AccessPath.CRACKER, n, model, piece_size=n)
    small = estimate_path_cost(
        AccessPath.CRACKER, n, model, piece_size=1_000
    )
    assert small < big / 1_000


def test_explain_text_contains_the_query():
    query = RangeQuery(ColumnRef("R", "A1"), 5, 10)
    planned = PlannedQuery(query, AccessPath.SCAN, 0.5, reason="no index")
    text = planned.explain()
    assert "SCAN" in text
    assert "A1" in text
    assert "no index" in text
