"""Unit tests for the shared physical operators."""

import numpy as np
import pytest

from repro.engine.operators import (
    apply_pending,
    multiset_difference,
    project,
    scan_select,
)
from repro.simtime.clock import SimClock
from repro.storage.dtypes import INT64
from repro.storage.updates import PendingUpdates
from repro.storage.views import MaterializedResult

from tests.conftest import ground_truth_count


def test_scan_select_matches_ground_truth(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    assert view.count == ground_truth_count(small_column, 1e7, 3e7)
    assert clock.total_charge.elements_scanned == small_column.row_count


def test_scan_select_returns_positions(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    positions = view.positions()
    values = small_column.values[positions]
    assert np.all((values >= 1e7) & (values < 3e7))


def test_project_materializes_and_charges(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    before = clock.total_charge.elements_materialized
    values = project(view, clock)
    assert len(values) == view.count
    assert clock.total_charge.elements_materialized == before + view.count


def test_multiset_difference_removes_one_occurrence_each():
    values = np.array([5, 3, 5, 7, 5], dtype=np.int64)
    out = multiset_difference(values, np.array([5, 5], dtype=np.int64))
    assert out.tolist() == [3, 7, 5]


def test_multiset_difference_ignores_missing():
    values = np.array([1, 2], dtype=np.int64)
    out = multiset_difference(values, np.array([9], dtype=np.int64))
    assert out.tolist() == [1, 2]


def test_multiset_difference_empty_inputs():
    empty = np.array([], dtype=np.int64)
    some = np.array([1], dtype=np.int64)
    assert multiset_difference(empty, some).tolist() == []
    assert multiset_difference(some, empty).tolist() == [1]


@pytest.fixture
def pending() -> PendingUpdates:
    return PendingUpdates(INT64)


def test_apply_pending_without_deltas_is_identity(small_column, pending):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    assert apply_pending(view, pending, 1e7, 3e7, clock) is view


def test_apply_pending_adds_inserts_in_range(small_column, pending):
    clock = SimClock()
    pending.stage_inserts([15_000_000, 95_000_000])
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    corrected = apply_pending(view, pending, 1e7, 3e7, clock)
    assert isinstance(corrected, MaterializedResult)
    assert corrected.count == view.count + 1  # only the in-range insert


def test_apply_pending_subtracts_deletes(small_column, pending):
    clock = SimClock()
    victim = int(small_column.values[0])
    pending.stage_deletes([0], [victim])
    view = scan_select(small_column.values, victim, victim + 1, clock)
    corrected = apply_pending(
        view, pending, victim, victim + 1, clock
    )
    assert corrected.count == view.count - 1


def test_apply_pending_out_of_range_deltas_ignored(small_column, pending):
    clock = SimClock()
    pending.stage_inserts([99_999_999])
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    corrected = apply_pending(view, pending, 1e7, 3e7, clock)
    assert corrected is view


# -- vectorized multiset difference & pending windows (ISSUE 4) ----------


def _reference_multiset_difference(values, removals):
    """The original dict-loop semantics: remove one occurrence per
    removal entry, earliest occurrences first, order preserved."""
    import numpy as np

    remaining = {}
    for value in removals.tolist():
        remaining[value] = remaining.get(value, 0) + 1
    keep = np.ones(len(values), dtype=bool)
    for i, value in enumerate(values.tolist()):
        budget = remaining.get(value, 0)
        if budget > 0:
            keep[i] = False
            remaining[value] = budget - 1
    return values[keep]


def test_multiset_difference_matches_reference_semantics():
    import numpy as np

    rng = np.random.default_rng(17)
    for _ in range(60):
        values = rng.integers(0, 12, size=int(rng.integers(0, 60)))
        removals = rng.integers(0, 12, size=int(rng.integers(0, 30)))
        got = multiset_difference(values, removals)
        expected = _reference_multiset_difference(values, removals)
        assert got.tolist() == expected.tolist()


def test_pending_window_matches_sequential_apply_pending(tiny_db, a1):
    import numpy as np

    from repro.engine.operators import PendingWindow
    from repro.simtime.accounting import WindowAccountant
    from repro.simtime.clock import SimClock

    pending = tiny_db.table("R").updates_for("A1")
    rng = np.random.default_rng(23)
    pending.stage_inserts(rng.integers(0, 100_000_000, size=30))
    values = tiny_db.column("R", "A1").values
    positions = rng.integers(0, len(values), size=15)
    pending.stage_deletes(positions, values[positions])

    lows = rng.uniform(0, 9e7, size=12)
    highs = lows + rng.uniform(0, 2e7, size=12)
    window = PendingWindow(pending, lows, highs)
    assert window.active

    sequential_clock = SimClock()
    batch_clock = SimClock()
    accountant = WindowAccountant(batch_clock)
    overlaps = window.overlapping_slots()
    for slot, (low, high) in enumerate(zip(lows, highs)):
        base = scan_select(values, low, high, SimClock())
        expected = apply_pending(
            base, pending, low, high, sequential_clock
        )
        if overlaps[slot]:
            got = window.apply(slot, base, accountant)
        else:
            got = base
        assert sorted(got.values().tolist()) == sorted(
            expected.values().tolist()
        )
    accountant.finish()
    assert repr(batch_clock.now()) == repr(sequential_clock.now())
    assert batch_clock.total_charge == sequential_clock.total_charge
