"""Unit tests for the shared physical operators."""

import numpy as np
import pytest

from repro.engine.operators import (
    apply_pending,
    multiset_difference,
    project,
    scan_select,
)
from repro.simtime.clock import SimClock
from repro.storage.dtypes import INT64
from repro.storage.updates import PendingUpdates
from repro.storage.views import MaterializedResult

from tests.conftest import ground_truth_count


def test_scan_select_matches_ground_truth(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    assert view.count == ground_truth_count(small_column, 1e7, 3e7)
    assert clock.total_charge.elements_scanned == small_column.row_count


def test_scan_select_returns_positions(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    positions = view.positions()
    values = small_column.values[positions]
    assert np.all((values >= 1e7) & (values < 3e7))


def test_project_materializes_and_charges(small_column):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    before = clock.total_charge.elements_materialized
    values = project(view, clock)
    assert len(values) == view.count
    assert clock.total_charge.elements_materialized == before + view.count


def test_multiset_difference_removes_one_occurrence_each():
    values = np.array([5, 3, 5, 7, 5], dtype=np.int64)
    out = multiset_difference(values, np.array([5, 5], dtype=np.int64))
    assert out.tolist() == [3, 7, 5]


def test_multiset_difference_ignores_missing():
    values = np.array([1, 2], dtype=np.int64)
    out = multiset_difference(values, np.array([9], dtype=np.int64))
    assert out.tolist() == [1, 2]


def test_multiset_difference_empty_inputs():
    empty = np.array([], dtype=np.int64)
    some = np.array([1], dtype=np.int64)
    assert multiset_difference(empty, some).tolist() == []
    assert multiset_difference(some, empty).tolist() == [1]


@pytest.fixture
def pending() -> PendingUpdates:
    return PendingUpdates(INT64)


def test_apply_pending_without_deltas_is_identity(small_column, pending):
    clock = SimClock()
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    assert apply_pending(view, pending, 1e7, 3e7, clock) is view


def test_apply_pending_adds_inserts_in_range(small_column, pending):
    clock = SimClock()
    pending.stage_inserts([15_000_000, 95_000_000])
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    corrected = apply_pending(view, pending, 1e7, 3e7, clock)
    assert isinstance(corrected, MaterializedResult)
    assert corrected.count == view.count + 1  # only the in-range insert


def test_apply_pending_subtracts_deletes(small_column, pending):
    clock = SimClock()
    victim = int(small_column.values[0])
    pending.stage_deletes([0], [victim])
    view = scan_select(small_column.values, victim, victim + 1, clock)
    corrected = apply_pending(
        view, pending, victim, victim + 1, clock
    )
    assert corrected.count == view.count - 1


def test_apply_pending_out_of_range_deltas_ignored(small_column, pending):
    clock = SimClock()
    pending.stage_inserts([99_999_999])
    view = scan_select(small_column.values, 1e7, 3e7, clock)
    corrected = apply_pending(view, pending, 1e7, 3e7, clock)
    assert corrected is view
