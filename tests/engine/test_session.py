"""Unit tests for sessions: timing, idle accounting, waiting debt."""

import pytest

from repro.engine.session import Session, make_strategy
from repro.errors import ConfigError
from repro.workload.patterns import Exp1Pattern


def _session(tiny_db, strategy="scan", **options) -> Session:
    return tiny_db.session(strategy, **options)


def test_select_records_response(tiny_db):
    session = _session(tiny_db)
    session.select("R", "A1", 1e6, 2e6)
    assert session.report.query_count == 1
    record = session.report.queries[0]
    assert record.response_s > 0
    assert record.cumulative_response_s == pytest.approx(
        record.response_s
    )


def test_cumulative_curve_monotone(tiny_db):
    session = _session(tiny_db)
    for i in range(5):
        session.select("R", "A1", 1e6 * i, 1e6 * (i + 1))
    curve = session.report.cumulative_curve()
    assert all(a <= b for a, b in zip(curve, curve[1:]))
    assert session.report.total_response_s == pytest.approx(curve[-1])


def test_idle_without_budget_rejected(tiny_db):
    session = _session(tiny_db)
    with pytest.raises(ConfigError):
        session.idle()


def test_idle_seconds_advances_clock_not_responses(tiny_db):
    session = _session(tiny_db)
    t0 = tiny_db.clock.now()
    record = session.idle(seconds=3.0)
    assert tiny_db.clock.now() == pytest.approx(t0 + 3.0)
    assert record.nominal_s == 3.0
    assert record.debt_s == 0.0
    assert session.report.total_response_s == 0.0


def test_blocking_overrun_becomes_query_wait(tiny_db):
    """Offline builds past the window: the next query pays the wait."""
    session = _session(
        tiny_db, "offline", build_policy="always_build"
    )
    pattern = Exp1Pattern(query_count=10)
    session.hint_workload(pattern.statements())
    sort_s = tiny_db.cost_model.sort_seconds(
        tiny_db.column("R", "A1").row_count
    )
    window = sort_s / 10  # far too small for the sort
    record = session.idle(seconds=window)
    assert record.debt_s == pytest.approx(sort_s - window, rel=0.01)
    session.select("R", "A1", 1e6, 2e6)
    first = session.report.queries[0]
    assert first.wait_s == pytest.approx(record.debt_s)
    assert first.response_s >= first.wait_s
    # The debt is paid exactly once.
    session.select("R", "A1", 3e6, 4e6)
    assert session.report.queries[1].wait_s == 0.0


def test_nonblocking_idle_extends_nominal(tiny_db):
    """Holistic tuning may overshoot the window; no debt accrues."""
    session = _session(tiny_db, "holistic")
    record = session.idle(actions=5)
    assert record.debt_s == 0.0
    assert record.nominal_s == pytest.approx(record.consumed_s)
    session.select("R", "A1", 1e6, 2e6)
    assert session.report.queries[0].wait_s == 0.0


def test_unfilled_window_sleeps_remainder(tiny_db):
    """Scan cannot exploit idle time; the clock still moves."""
    session = _session(tiny_db, "scan")
    t0 = tiny_db.clock.now()
    record = session.idle(seconds=2.0)
    assert record.actions_done == 0
    assert tiny_db.clock.now() == pytest.approx(t0 + 2.0)


def test_explain_reports_access_path(tiny_db):
    from repro.engine.plan import AccessPath

    scan_session = _session(tiny_db, "scan")
    plan = scan_session.explain("R", "A1", 0, 10)
    assert plan.path is AccessPath.SCAN
    assert plan.estimated_s > 0
    assert "SCAN" in plan.explain()

    adaptive_session = _session(tiny_db, "adaptive")
    plan = adaptive_session.explain("R", "A1", 0, 10)
    assert plan.path is AccessPath.CRACKER


def test_make_strategy_rejects_unknown(tiny_db):
    with pytest.raises(ConfigError):
        make_strategy("nonsense", tiny_db)


def test_make_strategy_holistic_config_exclusive(tiny_db):
    from repro.holistic.kernel import HolisticConfig

    with pytest.raises(ConfigError, match="not both"):
        make_strategy(
            "holistic",
            tiny_db,
            config=HolisticConfig(),
            policy="ranked",
        )


def test_result_count_recorded(tiny_db):
    session = _session(tiny_db)
    result = session.select("R", "A1", 0, 5e7)
    assert session.report.queries[0].result_count == result.count
