"""Batched execution (ISSUE 4): ``run_batch`` == sequential ``run_query``.

The batched pipeline's contract is *bit-for-bit* accounting
equivalence: result multisets, per-query response times, cumulative
clock totals and tape contents must be exactly what one-at-a-time
execution produces, for every strategy, window size, and pending
update mix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.query import RangeQuery
from repro.simtime.clock import SimClock, WallClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

SPAN = 100_000_000


def _database(seed: int, rows: int = 3000, columns: int = 2) -> Database:
    db = Database(clock=SimClock())
    db.add_table(build_paper_table(rows=rows, columns=columns, seed=seed))
    return db


def _stage_pending(db: Database, seed: int) -> None:
    table = db.table("R")
    rng = np.random.default_rng(seed)
    for column in ("A1", "A2"):
        pending = table.updates_for(column)
        pending.stage_inserts(rng.integers(0, SPAN, size=40))
        values = db.column("R", column).values
        positions = rng.integers(0, len(values), size=25)
        pending.stage_deletes(positions, values[positions])


def _workload(seed: int, count: int, columns: int = 2) -> list[RangeQuery]:
    """Mixed repeated (grid) and fresh (uniform) predicates."""
    rng = np.random.default_rng(seed)
    grid = np.linspace(0, SPAN * 0.99, 24)
    queries = []
    for _ in range(count):
        ref = ColumnRef("R", f"A{int(rng.integers(1, columns + 1))}")
        if rng.random() < 0.5:
            low = float(grid[int(rng.integers(0, len(grid)))])
        else:
            low = float(rng.uniform(0, SPAN * 0.98))
        width = float(rng.uniform(0, SPAN * 0.02))
        queries.append(RangeQuery(ref, low, low + width))
    return queries


def _run(
    strategy: str,
    window: int,
    data_seed: int,
    pending: bool = False,
    count: int = 40,
    **options,
):
    db = _database(data_seed)
    if pending:
        _stage_pending(db, data_seed + 7)
    session = db.session(strategy, **options)
    queries = _workload(data_seed, count)
    results = []
    for start in range(0, len(queries), window):
        chunk = queries[start : start + window]
        if window == 1:
            results.append(session.run_query(chunk[0]))
        else:
            results.extend(session.run_batch(chunk))
    return session, results


def _fingerprint(session, results) -> tuple:
    report = session.report
    parts = [
        tuple(repr(r.response_s) for r in report.queries),
        tuple(repr(r.finished_at) for r in report.queries),
        tuple(r.result_count for r in report.queries),
        repr(float(session.clock.now())),
        repr(session.clock.total_charge),
        tuple(
            tuple(np.sort(result.values()).tolist()) for result in results
        ),
    ]
    strategy = session.strategy
    indexes = getattr(strategy, "indexes", None)
    if indexes:
        for ref in sorted(indexes, key=repr):
            index = indexes[ref]
            parts.append(tuple(index.piece_map.cuts()))
            parts.append(tuple(index.piece_map.pivots()))
            parts.append(tuple(index.piece_map.sorted_flags()))
            parts.append(
                tuple(repr(record) for record in index.tape.records())
            )
            index.check_invariants()
    return tuple(parts)


STRATEGIES = [
    ("scan", {}),
    ("adaptive", {}),
    ("adaptive", {"track_rowids": True}),
    ("holistic", {"seed": 5}),
]


@pytest.mark.parametrize("strategy,options", STRATEGIES)
@pytest.mark.parametrize("pending", [False, True])
@pytest.mark.parametrize("window", [2, 7, 40])
def test_run_batch_matches_sequential(strategy, options, pending, window):
    base_session, base_results = _run(strategy, 1, 31, pending, **options)
    batch_session, batch_results = _run(
        strategy, window, 31, pending, **options
    )
    assert _fingerprint(batch_session, batch_results) == _fingerprint(
        base_session, base_results
    )


@pytest.mark.parametrize(
    "strategy,options",
    [
        ("adaptive", {"variant": "mdd1r", "seed": 2}),
        ("adaptive", {"variant": "hybrid"}),
        ("online", {}),
        ("offline", {}),
    ],
)
def test_fallback_strategies_match_sequential(strategy, options):
    """Strategies without a batch plan fall back to the sequential
    loop and stay trivially identical."""
    base_session, base_results = _run(strategy, 1, 13, False, **options)
    batch_session, batch_results = _run(strategy, 16, 13, False, **options)
    assert [r.count for r in batch_results] == [
        r.count for r in base_results
    ]
    assert repr(batch_session.clock.now()) == repr(
        base_session.clock.now()
    )
    assert [repr(r.response_s) for r in batch_session.report.queries] == [
        repr(r.response_s) for r in base_session.report.queries
    ]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.integers(2, 33),
    strategy=st.sampled_from(["adaptive", "holistic", "scan"]),
    pending=st.booleans(),
)
def test_property_batch_equals_sequential(seed, window, strategy, pending):
    options = {"seed": 3} if strategy == "holistic" else {}
    base_session, base_results = _run(
        strategy, 1, seed, pending, count=30, **options
    )
    batch_session, batch_results = _run(
        strategy, window, seed, pending, count=30, **options
    )
    assert _fingerprint(batch_session, batch_results) == _fingerprint(
        base_session, base_results
    )


def test_holistic_monitor_and_ranking_state_match():
    base_session, _ = _run("holistic", 1, 77, count=50, seed=1)
    batch_session, _ = _run("holistic", 8, 77, count=50, seed=1)
    base = base_session.strategy
    batch = batch_session.strategy
    assert batch.monitor.total_queries == base.monitor.total_queries
    for ref in base.monitor._activity:
        a, b = base.monitor._activity[ref], batch.monitor._activity[ref]
        assert b.query_count == a.query_count
        assert list(b.recent) == list(a.recent)
        assert np.array_equal(b.histogram, a.histogram)
        assert b.coverage.intervals() == a.coverage.intervals()
    for state in base.ranking.states():
        other = batch.ranking.state(state.ref)
        assert other.queries_seen == state.queries_seen


def test_wait_debt_charged_to_first_window_query():
    """A blocking idle overrun becomes waiting time on the next query
    even when that query arrives inside a batch."""

    def run(window: int):
        db = _database(3)
        session = db.session("offline", build_policy="always_build")
        from repro.offline.whatif import WorkloadStatement

        session.hint_workload(
            [WorkloadStatement(ColumnRef("R", "A1"), 0.0, SPAN, 5.0)]
        )
        session.idle(seconds=1e-9)  # build overruns the tiny window
        queries = _workload(3, 6)
        if window == 1:
            for query in queries:
                session.run_query(query)
        else:
            session.run_batch(queries)
        return session.report

    base = run(1)
    batched = run(6)
    assert batched.queries[0].wait_s == base.queries[0].wait_s
    assert [repr(r.response_s) for r in batched.queries] == [
        repr(r.response_s) for r in base.queries
    ]

    # The batched fast path itself also absorbs pending wait debt on
    # the window's first query only.
    def run_adaptive(window: int):
        db = _database(3)
        session = db.session("adaptive")
        session._pending_wait_s = 0.25
        queries = _workload(3, 6)
        if window == 1:
            for query in queries:
                session.run_query(query)
        else:
            session.run_batch(queries)
        return session.report

    base = run_adaptive(1)
    batched = run_adaptive(6)
    assert batched.queries[0].wait_s == 0.25
    assert all(r.wait_s == 0.0 for r in batched.queries[1:])
    assert [repr(r.response_s) for r in batched.queries] == [
        repr(r.response_s) for r in base.queries
    ]


def test_empty_batch_is_a_noop():
    db = _database(1)
    session = db.session("adaptive")
    assert session.run_batch([]) == []
    assert session.report.query_count == 0
    assert session.clock.now() == 0.0


def test_run_batch_on_wall_clock_counts_charges():
    """The direct accountant path (no cost model) still tallies the
    same work counters as sequential execution."""
    queries = _workload(9, 12)

    def run(window: int):
        db = Database(clock=WallClock())
        db.add_table(build_paper_table(rows=2000, columns=2, seed=9))
        session = db.session("adaptive")
        if window == 1:
            for query in queries:
                session.run_query(query)
        else:
            session.run_batch(queries)
        return session

    base = run(1)
    batched = run(12)
    assert batched.clock.total_charge == base.clock.total_charge
    assert [r.result_count for r in batched.report.queries] == [
        r.result_count for r in base.report.queries
    ]


def test_interleaved_batches_and_sequential_queries():
    """Windows and single queries can alternate freely on one session."""
    db = _database(21)
    session = db.session("holistic", seed=2)
    queries = _workload(21, 30)
    session.run_batch(queries[:10])
    for query in queries[10:15]:
        session.run_query(query)
    session.idle(actions=5)
    session.run_batch(queries[15:])

    base_db = _database(21)
    base = base_db.session("holistic", seed=2)
    for query in queries[:15]:
        base.run_query(query)
    base.idle(actions=5)
    for query in queries[15:]:
        base.run_query(query)

    assert repr(session.clock.now()) == repr(base.clock.now())
    assert [repr(r.response_s) for r in session.report.queries] == [
        repr(r.response_s) for r in base.report.queries
    ]


def test_failed_batch_setup_leaves_no_silent_cracks():
    """An unknown column anywhere in the window must fail before any
    physical cracking, keeping earlier columns' indexes untouched."""
    from repro.errors import SchemaError

    db = _database(3)
    session = db.session("adaptive")
    good = RangeQuery(ColumnRef("R", "A1"), 1e6, 2e6)
    bad = RangeQuery(ColumnRef("R", "NOPE"), 1e6, 2e6)
    with pytest.raises(Exception):
        session.run_batch([good, bad])
    assert session.strategy.indexes == {}
    assert session.clock.now() == 0.0
    assert session.report.query_count == 0
    # The session stays fully usable and bit-identical afterwards.
    session.run_batch([good])
    reference = _database(3).session("adaptive")
    reference.run_query(good)
    assert repr(session.clock.now()) == repr(reference.clock.now())
