"""Unit tests for range queries."""

import pytest

from repro.engine.query import RangeQuery
from repro.errors import QueryError
from repro.storage.catalog import ColumnRef
from repro.storage.column import ColumnStats


def _query(low: float, high: float) -> RangeQuery:
    return RangeQuery(ColumnRef("R", "A1"), low, high)


def test_query_span():
    assert _query(10, 25).span == 15


def test_inverted_range_rejected():
    with pytest.raises(QueryError, match="inverted"):
        _query(10, 5)


def test_empty_range_allowed():
    assert _query(10, 10).span == 0


def test_selectivity_uniform_estimate():
    stats = ColumnStats(row_count=1_000, min_value=0, max_value=999)
    assert _query(0, 100).selectivity(stats) == pytest.approx(
        0.1, rel=0.05
    )


def test_selectivity_clamps_to_domain():
    stats = ColumnStats(row_count=1_000, min_value=0, max_value=999)
    assert _query(-1e9, 1e9).selectivity(stats) == 1.0
    assert _query(5_000, 6_000).selectivity(stats) == 0.0


def test_selectivity_of_empty_column():
    stats = ColumnStats(row_count=0, min_value=0, max_value=0)
    assert _query(0, 10).selectivity(stats) == 0.0


def test_sql_rendering():
    text = str(_query(5, 10))
    assert "SELECT A1 FROM R" in text
    assert "A1 >= 5" in text
    assert "A1 < 10" in text
