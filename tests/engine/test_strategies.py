"""Unit tests for the scan/adaptive/offline/online strategies."""

import pytest

from repro.engine.query import RangeQuery
from repro.engine.strategies import (
    AdaptiveStrategy,
    OfflineStrategy,
    OnlineStrategy,
    ScanStrategy,
)
from repro.errors import ConfigError
from repro.offline.whatif import WorkloadStatement
from repro.storage.catalog import ColumnRef

from tests.conftest import ground_truth_count


def _query(low: float, high: float, column: str = "A1") -> RangeQuery:
    return RangeQuery(ColumnRef("R", column), low, high)


def _truth(db, low, high, column="A1"):
    return ground_truth_count(db.column("R", column), low, high)


def test_scan_strategy_correct_and_flat(tiny_db):
    strategy = ScanStrategy(tiny_db)
    clock = tiny_db.clock
    costs = []
    for i in range(5):
        t0 = clock.now()
        result = strategy.select(_query(i * 1e6, (i + 1) * 1e6))
        costs.append(clock.now() - t0)
        assert result.count == _truth(tiny_db, i * 1e6, (i + 1) * 1e6)
    # No learning: every scan costs the same.
    assert max(costs) == pytest.approx(min(costs), rel=0.05)


@pytest.mark.parametrize(
    "variant", ["standard", "ddc", "ddr", "mdd1r", "hybrid"]
)
def test_adaptive_variants_correct(tiny_db, variant):
    strategy = AdaptiveStrategy(tiny_db, variant=variant, seed=3)
    for low, high in [(1e6, 2e7), (3e7, 4e7), (5e6, 1.5e7)]:
        result = strategy.select(_query(low, high))
        assert result.count == _truth(tiny_db, low, high)


def test_adaptive_unknown_variant_rejected(tiny_db):
    with pytest.raises(ConfigError):
        AdaptiveStrategy(tiny_db, variant="nope")


def test_adaptive_keeps_one_index_per_column(tiny_db):
    strategy = AdaptiveStrategy(tiny_db)
    strategy.select(_query(1e6, 2e6, "A1"))
    strategy.select(_query(1e6, 2e6, "A2"))
    strategy.select(_query(3e6, 4e6, "A1"))
    assert len(strategy.indexes) == 2


def test_offline_builds_on_first_idle_only(tiny_db):
    strategy = OfflineStrategy(tiny_db, build_policy="always_build")
    strategy.hint_workload(
        [WorkloadStatement(ColumnRef("R", "A1"), 0, 1, weight=100)]
    )
    outcome = strategy.exploit_idle(budget_s=0.001)
    assert outcome.blocking
    assert outcome.actions_done == 1
    # Second window: nothing left to do (Table 1: offline exploits
    # only a-priori idle time).
    second = strategy.exploit_idle(budget_s=100.0)
    assert second.actions_done == 0
    assert second.consumed_s == 0.0


def test_offline_fit_budget_skips_unaffordable(tiny_db):
    strategy = OfflineStrategy(tiny_db, build_policy="fit_budget")
    strategy.hint_workload(
        [WorkloadStatement(ColumnRef("R", "A1"), 0, 1, weight=100)]
    )
    outcome = strategy.exploit_idle(budget_s=1e-6)
    assert outcome.actions_done == 0
    result = strategy.select(_query(1e6, 2e6))
    assert result.count == _truth(tiny_db, 1e6, 2e6)  # via scan


def test_offline_probes_after_build(tiny_db):
    strategy = OfflineStrategy(tiny_db, build_policy="always_build")
    strategy.hint_workload(
        [WorkloadStatement(ColumnRef("R", "A1"), 0, 1, weight=100)]
    )
    strategy.exploit_idle(budget_s=100.0)
    clock = tiny_db.clock
    t0 = clock.now()
    result = strategy.select(_query(1e6, 2e6))
    assert result.count == _truth(tiny_db, 1e6, 2e6)
    assert clock.now() - t0 < 1e-3  # probe, not scan


def test_offline_invalid_policy_rejected(tiny_db):
    with pytest.raises(ConfigError):
        OfflineStrategy(tiny_db, build_policy="yolo")


def test_online_builds_index_for_hot_column(tiny_db):
    strategy = OnlineStrategy(tiny_db, epoch_queries=10)
    for i in range(25):
        low = (i % 5) * 1e6
        result = strategy.select(_query(low, low + 1e6))
        assert result.count == _truth(tiny_db, low, low + 1e6)
    assert strategy.colt.index_for(ColumnRef("R", "A1")) is not None


def test_online_epoch_build_delays_triggering_query(tiny_db):
    strategy = OnlineStrategy(tiny_db, epoch_queries=5)
    clock = tiny_db.clock
    costs = []
    for i in range(6):
        t0 = clock.now()
        strategy.select(_query(1e6, 2e6))
        costs.append(clock.now() - t0)
    # Query 5 triggered the epoch: it carries the inline build cost.
    assert costs[4] > 5 * max(costs[:4])


def test_online_soft_defers_build_to_scan(tiny_db):
    strategy = OnlineStrategy(tiny_db, epoch_queries=5, soft=True)
    for i in range(5):
        strategy.select(_query(1e6, 2e6))
    # Build deferred, not inline.
    assert strategy.colt.pending_builds
    # The next scan of the candidate column promotes it.
    strategy.select(_query(2e6, 3e6))
    assert strategy.soft_indexes.index_for(ColumnRef("R", "A1"))


def test_online_idle_drains_deferred_builds(tiny_db):
    strategy = OnlineStrategy(tiny_db, epoch_queries=5, soft=True)
    for i in range(5):
        strategy.select(_query(1e6, 2e6))
    outcome = strategy.exploit_idle(budget_s=100.0)
    assert outcome.actions_done == 1
    assert strategy.colt.index_for(ColumnRef("R", "A1")) is not None


def test_feature_rows_match_paper_table1(tiny_db):
    from repro.bench.features import PAPER_TABLE1

    for name, cls in (
        ("offline", OfflineStrategy),
        ("online", OnlineStrategy),
        ("adaptive", AdaptiveStrategy),
    ):
        features = cls(tiny_db).features()
        expected = PAPER_TABLE1[name]
        assert features.statistical_analysis == expected[0]
        assert features.idle_a_priori == expected[1]
        assert features.idle_during_workload == expected[2]
        assert features.incremental_indexing == expected[3]
        assert features.workload == expected[4]
