"""Unit tests for workload streams."""

import pytest

from repro.engine.query import RangeQuery
from repro.errors import WorkloadError
from repro.storage.catalog import ColumnRef
from repro.workload.stream import (
    IdleEvent,
    QueryEvent,
    interleave_idle,
    run_stream,
)


def _queries(n: int) -> list[RangeQuery]:
    return [
        RangeQuery(ColumnRef("R", "A1"), i * 1e5, (i + 1) * 1e5)
        for i in range(n)
    ]


def test_idle_event_validation():
    with pytest.raises(WorkloadError):
        IdleEvent()
    with pytest.raises(WorkloadError):
        IdleEvent(seconds=-1)
    with pytest.raises(WorkloadError):
        IdleEvent(actions=-1)
    assert IdleEvent(seconds=0.5).seconds == 0.5
    assert IdleEvent(actions=3).actions == 3


def test_interleave_idle_schedule():
    events = list(
        interleave_idle(_queries(5), idle_every=2, idle=IdleEvent(actions=1))
    )
    kinds = [
        "idle" if isinstance(e, IdleEvent) else "query" for e in events
    ]
    assert kinds == [
        "idle",
        "query",
        "query",
        "idle",
        "query",
        "query",
        "idle",
        "query",
    ]


def test_interleave_idle_without_leading_window():
    events = list(
        interleave_idle(
            _queries(2),
            idle_every=1,
            idle=IdleEvent(actions=1),
            idle_first=False,
        )
    )
    assert isinstance(events[0], QueryEvent)


def test_interleave_idle_validation():
    with pytest.raises(WorkloadError):
        list(
            interleave_idle(
                _queries(1), idle_every=0, idle=IdleEvent(actions=1)
            )
        )


def test_run_stream_executes_everything(tiny_db):
    session = tiny_db.session("holistic")
    events = list(
        interleave_idle(_queries(4), idle_every=2, idle=IdleEvent(actions=2))
    )
    report = run_stream(session, events)
    assert report.query_count == 4
    assert len(report.idles) == 3
    assert report is session.report


def test_run_stream_rejects_unknown_events(tiny_db):
    session = tiny_db.session("scan")
    with pytest.raises(WorkloadError, match="unknown workload event"):
        run_stream(session, ["not-an-event"])


# -- windowed (batched) streams (ISSUE 4) --------------------------------


def _grid_queries(count: int, seed: int = 5) -> list[RangeQuery]:
    import numpy as np

    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = float(rng.uniform(0, 9e7))
        queries.append(
            RangeQuery(ColumnRef("R", "A1"), low, low + 2e6)
        )
    return queries


def test_run_stream_batched_matches_run_stream():
    from repro.simtime.clock import SimClock
    from repro.storage.database import Database
    from repro.storage.loader import build_paper_table
    from repro.workload.stream import run_stream, run_stream_batched

    def fresh_session():
        db = Database(clock=SimClock())
        db.add_table(build_paper_table(rows=5000, columns=1, seed=4))
        return db.session("holistic", seed=2)

    queries = _grid_queries(20)
    events = list(
        interleave_idle(queries, idle_every=7, idle=IdleEvent(actions=3))
    )
    base = run_stream(fresh_session(), events)
    batched = run_stream_batched(fresh_session(), events, window=6)
    assert [repr(r.response_s) for r in batched.queries] == [
        repr(r.response_s) for r in base.queries
    ]
    assert [repr(r.nominal_s) for r in batched.idles] == [
        repr(r.nominal_s) for r in base.idles
    ]


def test_run_stream_batched_query_only_fast_path(tiny_db):
    from repro.workload.stream import run_stream_batched

    events = [QueryEvent(q) for q in _grid_queries(11)]
    report = run_stream_batched(
        tiny_db.session("adaptive"), events, window=4
    )
    assert report.query_count == 11


def test_run_stream_batched_rejects_bad_window(tiny_db):
    from repro.workload.stream import run_stream_batched

    with pytest.raises(WorkloadError):
        run_stream_batched(tiny_db.session("scan"), [], window=0)


def test_query_stream_runs_and_counts(tiny_db):
    from repro.workload.stream import QueryStream

    stream = QueryStream.of_queries(_grid_queries(9))
    assert stream.query_count == 9
    assert len(stream) == 9
    base = stream.run(tiny_db.session("adaptive"))
    windowed = stream.run_windowed(tiny_db.session("adaptive"), 4)
    assert [r.result_count for r in windowed.queries] == [
        r.result_count for r in base.queries
    ]
