"""Unit tests for workload streams."""

import pytest

from repro.engine.query import RangeQuery
from repro.errors import WorkloadError
from repro.storage.catalog import ColumnRef
from repro.workload.stream import (
    IdleEvent,
    QueryEvent,
    interleave_idle,
    run_stream,
)


def _queries(n: int) -> list[RangeQuery]:
    return [
        RangeQuery(ColumnRef("R", "A1"), i * 1e5, (i + 1) * 1e5)
        for i in range(n)
    ]


def test_idle_event_validation():
    with pytest.raises(WorkloadError):
        IdleEvent()
    with pytest.raises(WorkloadError):
        IdleEvent(seconds=-1)
    with pytest.raises(WorkloadError):
        IdleEvent(actions=-1)
    assert IdleEvent(seconds=0.5).seconds == 0.5
    assert IdleEvent(actions=3).actions == 3


def test_interleave_idle_schedule():
    events = list(
        interleave_idle(_queries(5), idle_every=2, idle=IdleEvent(actions=1))
    )
    kinds = [
        "idle" if isinstance(e, IdleEvent) else "query" for e in events
    ]
    assert kinds == [
        "idle",
        "query",
        "query",
        "idle",
        "query",
        "query",
        "idle",
        "query",
    ]


def test_interleave_idle_without_leading_window():
    events = list(
        interleave_idle(
            _queries(2),
            idle_every=1,
            idle=IdleEvent(actions=1),
            idle_first=False,
        )
    )
    assert isinstance(events[0], QueryEvent)


def test_interleave_idle_validation():
    with pytest.raises(WorkloadError):
        list(
            interleave_idle(
                _queries(1), idle_every=0, idle=IdleEvent(actions=1)
            )
        )


def test_run_stream_executes_everything(tiny_db):
    session = tiny_db.session("holistic")
    events = list(
        interleave_idle(_queries(4), idle_every=2, idle=IdleEvent(actions=2))
    )
    report = run_stream(session, events)
    assert report.query_count == 4
    assert len(report.idles) == 3
    assert report is session.report


def test_run_stream_rejects_unknown_events(tiny_db):
    session = tiny_db.session("scan")
    with pytest.raises(WorkloadError, match="unknown workload event"):
        run_stream(session, ["not-an-event"])
