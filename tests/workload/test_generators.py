"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.storage.catalog import ColumnRef
from repro.workload.generators import (
    MultiColumnGenerator,
    SequentialRangeGenerator,
    SkewedRangeGenerator,
    UniformRangeGenerator,
)

REF = ColumnRef("R", "A1")


def test_uniform_ranges_have_fixed_span():
    generator = UniformRangeGenerator(REF, 0, 1_000_000, 0.01, seed=1)
    for query in generator.queries(50):
        assert query.span == pytest.approx(10_000)
        assert query.low >= 0
        assert query.high <= 1_000_000


def test_uniform_positions_cover_domain():
    generator = UniformRangeGenerator(REF, 0, 1_000_000, 0.01, seed=2)
    lows = [q.low for q in generator.queries(500)]
    assert min(lows) < 100_000
    assert max(lows) > 800_000


def test_uniform_determinism():
    a = UniformRangeGenerator(REF, 0, 1e6, 0.01, seed=3)
    b = UniformRangeGenerator(REF, 0, 1e6, 0.01, seed=3)
    assert [q.low for q in a.queries(10)] == [
        q.low for q in b.queries(10)
    ]


def test_uniform_validation():
    with pytest.raises(WorkloadError):
        UniformRangeGenerator(REF, 0, 1e6, 0.0)
    with pytest.raises(WorkloadError):
        UniformRangeGenerator(REF, 0, 1e6, 1.5)
    with pytest.raises(WorkloadError):
        UniformRangeGenerator(REF, 10, 10, 0.01)


def test_skewed_concentrates_queries():
    generator = SkewedRangeGenerator(
        REF, 0, 1_000_000, 0.01, regions=10, exponent=2.0, seed=4
    )
    lows = np.array([q.low for q in generator.queries(500)])
    # Zipf region popularity: the first region gets the majority.
    first_region = np.count_nonzero(lows < 100_000)
    assert first_region > 250


def test_skewed_validation():
    with pytest.raises(WorkloadError):
        SkewedRangeGenerator(REF, 0, 1e6, regions=0)
    with pytest.raises(WorkloadError):
        SkewedRangeGenerator(REF, 0, 1e6, exponent=1.0)


def test_sequential_sweeps_left_to_right():
    generator = SequentialRangeGenerator(REF, 0, 1_000, 0.1)
    lows = [generator.next_query().low for _ in range(5)]
    assert lows == sorted(lows)
    assert lows[1] - lows[0] == pytest.approx(100)


def test_sequential_wraps_around():
    generator = SequentialRangeGenerator(REF, 0, 1_000, 0.5)
    queries = [generator.next_query() for _ in range(4)]
    assert queries[0].low == 0
    # After reaching the end the cursor resets.
    assert any(q.low == 0 for q in queries[1:])


def test_sequential_overlap():
    generator = SequentialRangeGenerator(REF, 0, 1_000, 0.1, overlap=0.5)
    a = generator.next_query()
    b = generator.next_query()
    assert b.low == pytest.approx(a.low + 50)
    with pytest.raises(WorkloadError):
        SequentialRangeGenerator(REF, 0, 1_000, 0.1, overlap=1.0)


def _per_column(columns: int) -> list[UniformRangeGenerator]:
    return [
        UniformRangeGenerator(
            ColumnRef("R", f"A{i}"), 0, 1e6, 0.01, seed=i
        )
        for i in range(1, columns + 1)
    ]


def test_round_robin_visits_in_order():
    multi = MultiColumnGenerator(_per_column(3))
    columns = [q.ref.column for q in multi.queries(6)]
    assert columns == ["A1", "A2", "A3", "A1", "A2", "A3"]


def test_weighted_mode_respects_weights():
    multi = MultiColumnGenerator(
        _per_column(2), mode="weighted", weights=[9.0, 1.0], seed=5
    )
    columns = [q.ref.column for q in multi.queries(500)]
    assert columns.count("A1") > 350


def test_multi_column_validation():
    with pytest.raises(WorkloadError):
        MultiColumnGenerator([])
    with pytest.raises(WorkloadError):
        MultiColumnGenerator(_per_column(2), mode="weighted")
    with pytest.raises(WorkloadError):
        MultiColumnGenerator(
            _per_column(2), mode="weighted", weights=[0.0, 0.0]
        )
    with pytest.raises(WorkloadError):
        MultiColumnGenerator(_per_column(2), mode="lottery")
