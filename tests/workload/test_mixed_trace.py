"""Tests for the seeded mixed read/write trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.storage.catalog import ColumnRef
from repro.storage.loader import (
    build_paper_table,
    generate_uniform_float_column,
)
from repro.workload.generators import MixedTraceGenerator, TraceOp
from repro.workload.patterns import MixedPattern

A1 = ColumnRef("R", "A1")
F1 = ColumnRef("R", "F1")


def _columns(rows: int = 500) -> dict[ColumnRef, np.ndarray]:
    rng = np.random.default_rng(5)
    return {
        A1: rng.integers(1, 1_000_000, size=rows, dtype=np.int64),
        F1: rng.uniform(1.0, 1_000_000.0, size=rows),
    }


def _make(**kwargs) -> MixedTraceGenerator:
    options = dict(
        domain_low=1.0,
        domain_high=1_000_000.0,
        write_ratio=0.3,
        batch_size=8,
        seed=17,
    )
    options.update(kwargs)
    return MixedTraceGenerator(_columns(), **options)


def test_same_seed_reproduces_the_trace() -> None:
    assert _make(seed=99).ops(200) == _make(seed=99).ops(200)


def test_different_seeds_differ() -> None:
    assert _make(seed=1).ops(200) != _make(seed=2).ops(200)


def test_zero_write_ratio_is_query_only() -> None:
    trace = _make(write_ratio=0.0).ops(150)
    assert len(trace) == 150
    assert all(op.is_query for op in trace)


def test_write_ratio_controls_update_share() -> None:
    trace = _make(write_ratio=0.4, seed=3).ops(2_000)
    updates = sum(not op.is_query for op in trace)
    assert 0.3 < updates / len(trace) < 0.5


def test_burst_clusters_updates() -> None:
    """With burst=5 the same update count arrives in far fewer (and
    longer) runs than the burst=1 trace."""

    def runs(trace: list[TraceOp]) -> list[int]:
        lengths, current = [], 0
        for op in trace:
            if op.is_query:
                if current:
                    lengths.append(current)
                current = 0
            else:
                current += 1
        if current:
            lengths.append(current)
        return lengths

    smooth = runs(_make(write_ratio=0.3, burst=1, seed=8).ops(2_000))
    bursty = runs(_make(write_ratio=0.3, burst=5, seed=8).ops(2_000))
    assert max(bursty) > max(smooth)
    assert sum(bursty) / len(bursty) > 2 * (sum(smooth) / len(smooth))


def test_drift_moves_the_hot_window() -> None:
    still = _make(drift=0.0, write_ratio=0.0, seed=6).ops(400)
    drifting = _make(drift=1.0, write_ratio=0.0, seed=6).ops(400)
    assert still != drifting
    lows = [op.low for op in drifting]
    assert all(1.0 <= low <= 1_000_000.0 for low in lows)
    # The hot window is narrower than the full domain and travels as
    # the trace progresses: by the second quarter it has moved a large
    # fraction of the domain away from where it started.  (First vs
    # last quarter would alias -- the window wraps modulo its travel.)
    first_quarter = np.mean(lows[:100])
    second_quarter = np.mean(lows[100:200])
    assert abs(second_quarter - first_quarter) > 0.1 * 1_000_000


def test_insert_values_follow_column_dtype() -> None:
    trace = _make(write_ratio=0.5, insert_fraction=1.0, seed=4).ops(300)
    for op in trace:
        if op.kind != "insert":
            continue
        if op.ref == A1:
            assert all(isinstance(v, int) for v in op.values)
        else:
            assert all(isinstance(v, float) for v in op.values)


def test_delete_positions_unique_per_column() -> None:
    trace = _make(
        write_ratio=0.5, insert_fraction=0.0, batch_size=4, seed=9
    ).ops(400)
    seen: dict[ColumnRef, set[int]] = {A1: set(), F1: set()}
    for op in trace:
        if op.kind != "delete":
            continue
        positions = set(op.positions)
        assert len(positions) == len(op.positions)
        assert not positions & seen[op.ref]
        seen[op.ref] |= positions


@pytest.mark.parametrize(
    "bad",
    [
        {"write_ratio": 1.0},
        {"write_ratio": -0.1},
        {"insert_fraction": 1.5},
        {"batch_size": 0},
        {"burst": 0},
        {"drift": -0.5},
        {"domain_high": 0.5},
    ],
)
def test_bad_knobs_rejected(bad) -> None:
    with pytest.raises(WorkloadError):
        _make(**bad)


def test_empty_column_set_rejected() -> None:
    with pytest.raises(WorkloadError, match="at least one column"):
        MixedTraceGenerator({}, 1.0, 100.0)


# -- MixedPattern ------------------------------------------------------


def _pattern_table(rows: int = 400):
    table = build_paper_table(rows=rows, columns=2, seed=11)
    table.add_column(
        generate_uniform_float_column("F1", rows=rows, seed=12)
    )
    return table


def test_pattern_is_deterministic_per_seed() -> None:
    pattern = MixedPattern(
        columns=["A1", "F1"], op_count=300, write_ratio=0.25, seed=21
    )
    table = _pattern_table()
    assert pattern.ops(table) == pattern.ops(table)
    other = MixedPattern(
        columns=["A1", "F1"], op_count=300, write_ratio=0.25, seed=22
    )
    assert pattern.ops(table) != other.ops(table)


def test_pattern_rejects_missing_column() -> None:
    pattern = MixedPattern(columns=["A1", "NOPE"])
    with pytest.raises(WorkloadError, match="NOPE"):
        pattern.ops(_pattern_table())


def test_pattern_validates_fields() -> None:
    with pytest.raises(WorkloadError):
        MixedPattern(columns=[])
    with pytest.raises(WorkloadError):
        MixedPattern(op_count=-1)
