"""Unit tests for the paper's workload patterns."""

import pytest

from repro.errors import WorkloadError
from repro.storage.loader import build_paper_table
from repro.workload.patterns import (
    Exp1Pattern,
    Exp2Pattern,
    verify_table_matches,
)
from repro.workload.stream import IdleEvent, QueryEvent


def test_exp1_event_schedule():
    pattern = Exp1Pattern(
        query_count=250, idle_every=100, refinements_per_idle=10
    )
    events = list(pattern.events())
    idles = [e for e in events if isinstance(e, IdleEvent)]
    queries = [e for e in events if isinstance(e, QueryEvent)]
    assert len(queries) == 250
    # One leading window plus one after query 100 and 200.
    assert len(idles) == 3
    assert isinstance(events[0], IdleEvent)
    assert all(idle.actions == 10 for idle in idles)
    # Idle windows sit exactly after multiples of 100 queries.
    positions = [i for i, e in enumerate(events) if isinstance(e, IdleEvent)]
    assert positions == [0, 101, 202]


def test_exp1_queries_have_paper_selectivity():
    pattern = Exp1Pattern(query_count=20)
    for query in pattern.queries():
        assert query.span == pytest.approx(
            (pattern.domain_high - pattern.domain_low) * 0.01
        )
        assert query.ref.column == "A1"


def test_exp1_statements_weighting():
    pattern = Exp1Pattern(query_count=500)
    statements = pattern.statements()
    assert len(statements) == 1
    assert statements[0].weight == 500.0


def test_exp2_round_robin_order():
    pattern = Exp2Pattern(query_count=20)
    columns = [q.ref.column for q in pattern.queries()]
    assert columns[:10] == [f"A{i}" for i in range(1, 11)]
    assert columns[10:20] == [f"A{i}" for i in range(1, 11)]


def test_exp2_statements_equal_weight():
    pattern = Exp2Pattern(query_count=100)
    statements = pattern.statements()
    assert len(statements) == 10
    assert all(s.weight == 10.0 for s in statements)


def test_exp2_validation():
    with pytest.raises(WorkloadError):
        Exp2Pattern(columns=[])
    with pytest.raises(WorkloadError):
        Exp2Pattern(columns=["A1"], full_indexes_that_fit=2)


def test_verify_table_matches():
    table = build_paper_table(rows=10, columns=2, seed=1)
    verify_table_matches(Exp1Pattern(), table)
    with pytest.raises(WorkloadError, match="lacks column"):
        verify_table_matches(Exp2Pattern(), table)  # needs A1..A10


def test_exp1_events_are_regenerable():
    pattern = Exp1Pattern(query_count=30, seed=5)
    first = [
        e.query.low
        for e in pattern.events()
        if isinstance(e, QueryEvent)
    ]
    second = [
        e.query.low
        for e in pattern.events()
        if isinstance(e, QueryEvent)
    ]
    assert first == second
