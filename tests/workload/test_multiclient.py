"""Unit tests for the multi-client traffic generators."""

import pytest

from repro.errors import WorkloadError
from repro.storage.catalog import ColumnRef
from repro.workload.multiclient import (
    ClientWorkload,
    make_closed_loop_clients,
    make_open_loop_clients,
    parameterized_queries,
)

COLUMNS = [ColumnRef("R", "A1"), ColumnRef("R", "A2")]


def test_parameterized_queries_respect_domain_and_selectivity():
    queries = parameterized_queries(
        COLUMNS, 1, 1_000_000, count=200, selectivity=0.01, seed=1
    )
    assert len(queries) == 200
    width = (1_000_000 - 1) * 0.01
    for query in queries:
        assert query.ref in COLUMNS
        assert 1 <= query.low < query.high <= 1_000_000 + width
        assert query.high - query.low == pytest.approx(width)


def test_parameterized_queries_mostly_snap_to_grid():
    queries = parameterized_queries(
        COLUMNS, 0, 1_000, count=500, grid_points=10,
        grid_fraction=0.9, seed=2,
    )
    distinct_lows = {query.low for query in queries}
    # 90% of 500 queries share <= 8 grid positions.
    assert len(distinct_lows) < 100


def test_parameterized_queries_validate_inputs():
    with pytest.raises(WorkloadError):
        parameterized_queries([], 0, 1, count=1)
    with pytest.raises(WorkloadError):
        parameterized_queries(COLUMNS, 5, 5, count=1)
    with pytest.raises(WorkloadError):
        parameterized_queries(COLUMNS, 0, 1, count=1, selectivity=0.0)
    with pytest.raises(WorkloadError):
        parameterized_queries(COLUMNS, 0, 1, count=1, grid_points=2)


def test_closed_loop_clients_are_independent_of_client_count():
    four = make_closed_loop_clients(
        COLUMNS, 1, 1_000_000, clients=4, queries_per_client=50, seed=9
    )
    eight = make_closed_loop_clients(
        COLUMNS, 1, 1_000_000, clients=8, queries_per_client=50, seed=9
    )
    assert [w.client for w in four] == [w.client for w in eight[:4]]
    for a, b in zip(four, eight[:4]):
        assert a.queries == b.queries
        assert a.arrivals is None


def test_closed_loop_validates_counts():
    with pytest.raises(WorkloadError):
        make_closed_loop_clients(COLUMNS, 0, 1, clients=0, queries_per_client=1)
    with pytest.raises(WorkloadError):
        make_closed_loop_clients(COLUMNS, 0, 1, clients=1, queries_per_client=0)


def test_open_loop_arrivals_are_increasing_and_rate_mixed():
    workloads = make_open_loop_clients(
        COLUMNS, 1, 1_000_000, clients=4, queries_per_client=100,
        arrival_rates=[1_000.0, 10.0], seed=5,
    )
    for workload in workloads:
        arrivals = workload.arrivals
        assert arrivals is not None and len(arrivals) == 100
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
    # The heavy clients (rate 1000/s) finish arriving far earlier than
    # the light ones (rate 10/s).
    heavy = workloads[0].arrivals[-1]
    light = workloads[1].arrivals[-1]
    assert heavy < light / 10


def test_open_loop_validates_rates():
    with pytest.raises(WorkloadError):
        make_open_loop_clients(
            COLUMNS, 0, 1, clients=1, queries_per_client=1, arrival_rates=[]
        )
    with pytest.raises(WorkloadError):
        make_open_loop_clients(
            COLUMNS, 0, 1, clients=1, queries_per_client=1,
            arrival_rates=[0.0],
        )


def test_client_workload_validates_arrival_alignment():
    queries = parameterized_queries(COLUMNS, 0, 100, count=3, seed=0)
    with pytest.raises(WorkloadError):
        ClientWorkload("c", queries, arrivals=[0.1])
