"""Unit tests for the COLT-style online tuner."""

import pytest

from repro.errors import ConfigError
from repro.offline.builder import IndexBuilder
from repro.offline.whatif import WhatIfOptimizer
from repro.online.colt import ColtConfig, ColtTuner
from repro.online.monitor import WorkloadMonitor
from repro.storage.catalog import ColumnRef


@pytest.fixture
def tuner(tiny_db) -> ColtTuner:
    monitor = WorkloadMonitor(tiny_db.catalog)
    optimizer = WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)
    builder = IndexBuilder(tiny_db.catalog, tiny_db.clock)
    return ColtTuner(
        monitor,
        optimizer,
        builder,
        ColtConfig(horizon_queries=1_000, drop_after_epochs=2),
    )


def _hammer(tuner, ref, n, t0=0.0):
    for i in range(n):
        tuner.monitor.record(ref, 0, 1_000, t0 + i * 0.01)


def test_hot_column_gets_an_index(tuner, a1):
    _hammer(tuner, a1, 50)
    decision = tuner.reevaluate(epoch=1, now=1.0)
    assert a1 in decision.built
    assert tuner.index_for(a1) is not None


def test_no_queries_no_builds(tuner, a1):
    decision = tuner.reevaluate(epoch=1, now=1.0)
    assert decision.built == []
    assert tuner.index_for(a1) is None


def test_cold_index_is_dropped(tuner, a1):
    _hammer(tuner, a1, 50)
    tuner.reevaluate(epoch=1, now=1.0)
    tuner.note_index_use(a1)
    # Epochs pass without any use of the index.
    tuner.reevaluate(epoch=2, now=2.0)
    decision = tuner.reevaluate(epoch=5, now=5.0)
    assert a1 in decision.dropped
    assert tuner.index_for(a1) is None


def test_used_index_survives(tuner, a1):
    _hammer(tuner, a1, 50)
    tuner.reevaluate(epoch=1, now=1.0)
    for epoch in range(2, 6):
        tuner.note_index_use(a1)
        decision = tuner.reevaluate(epoch=epoch, now=float(epoch))
        assert a1 not in decision.dropped


def test_max_indexes_cap(tiny_db):
    monitor = WorkloadMonitor(tiny_db.catalog)
    optimizer = WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)
    builder = IndexBuilder(tiny_db.catalog, tiny_db.clock)
    tuner = ColtTuner(
        monitor, optimizer, builder, ColtConfig(max_indexes=1)
    )
    a1, a2 = ColumnRef("R", "A1"), ColumnRef("R", "A2")
    _hammer(tuner, a1, 50)
    _hammer(tuner, a2, 40)
    tuner.reevaluate(epoch=1, now=1.0)
    decision = tuner.reevaluate(epoch=2, now=2.0)
    assert decision.built == []
    assert tuner.index_for(a2) is None


def test_deferred_builds_queue_and_drain(tiny_db, a1):
    monitor = WorkloadMonitor(tiny_db.catalog)
    optimizer = WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)
    builder = IndexBuilder(tiny_db.catalog, tiny_db.clock)
    tuner = ColtTuner(
        monitor, optimizer, builder, ColtConfig(defer_builds=True)
    )
    _hammer(tuner, a1, 50)
    decision = tuner.reevaluate(epoch=1, now=1.0)
    assert decision.queued == [a1]
    assert tuner.index_for(a1) is None
    built = tuner.drain_pending()
    assert built == [a1]
    assert tuner.index_for(a1) is not None


def test_drain_respects_budget(tiny_db, a1):
    monitor = WorkloadMonitor(tiny_db.catalog)
    optimizer = WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)
    builder = IndexBuilder(tiny_db.catalog, tiny_db.clock)
    tuner = ColtTuner(
        monitor, optimizer, builder, ColtConfig(defer_builds=True)
    )
    _hammer(tuner, a1, 50)
    tuner.reevaluate(epoch=1, now=1.0)
    assert tuner.drain_pending(budget_s=0.0) == []
    assert tuner.pending_builds == [a1]


def test_config_validation():
    with pytest.raises(ConfigError):
        ColtConfig(horizon_queries=0)
    with pytest.raises(ConfigError):
        ColtConfig(max_indexes=0)
    with pytest.raises(ConfigError):
        ColtConfig(drop_after_epochs=0)
