"""Unit tests for soft (scan-shared) index construction."""

import pytest

from repro.errors import ConfigError
from repro.online.soft_index import SoftIndexManager
from repro.simtime.charge import CostCharge


@pytest.fixture
def manager(tiny_db) -> SoftIndexManager:
    return SoftIndexManager(tiny_db.catalog, tiny_db.clock)


def test_non_candidate_scans_are_ignored(manager, a1):
    assert manager.note_scan(a1) is None
    assert manager.index_for(a1) is None


def test_candidate_promotes_after_threshold(manager, a1):
    manager.nominate(a1)
    index = manager.note_scan(a1)
    assert index is not None
    assert index.is_built
    assert manager.index_for(a1) is index
    assert manager.scan_passes_saved == 1
    assert manager.promoted_refs() == [a1]


def test_multi_scan_threshold(tiny_db, a1):
    manager = SoftIndexManager(
        tiny_db.catalog, tiny_db.clock, scans_to_promote=3
    )
    manager.nominate(a1)
    assert manager.note_scan(a1) is None
    assert manager.note_scan(a1) is None
    assert manager.note_scan(a1) is not None


def test_promotion_charges_sort_only(tiny_db, a1):
    manager = SoftIndexManager(tiny_db.catalog, tiny_db.clock)
    manager.nominate(a1)
    scanned_before = tiny_db.clock.total_charge.elements_scanned
    manager.note_scan(a1)
    charge: CostCharge = tiny_db.clock.total_charge
    # The build sorted the column but did not re-scan it.
    assert charge.elements_sorted == tiny_db.column("R", "A1").row_count
    assert charge.elements_scanned == scanned_before


def test_promotion_happens_once(manager, a1):
    manager.nominate(a1)
    manager.note_scan(a1)
    assert manager.note_scan(a1) is None  # already promoted


def test_nominate_is_idempotent(manager, a1):
    first = manager.nominate(a1)
    second = manager.nominate(a1)
    assert first is second


def test_invalid_threshold_rejected(tiny_db):
    with pytest.raises(ConfigError):
        SoftIndexManager(tiny_db.catalog, tiny_db.clock, scans_to_promote=0)
