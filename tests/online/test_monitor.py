"""Unit tests for the workload monitor."""

import pytest

from repro.errors import ConfigError
from repro.online.monitor import WorkloadMonitor
from repro.storage.catalog import ColumnRef


@pytest.fixture
def monitor(tiny_db) -> WorkloadMonitor:
    return WorkloadMonitor(tiny_db.catalog, histogram_bins=10)


def test_record_counts_queries(monitor, a1):
    monitor.record(a1, 100, 200, 0.1)
    monitor.record(a1, 300, 400, 0.2)
    assert monitor.query_count(a1) == 2
    assert monitor.total_queries == 2


def test_unknown_column_has_zero_activity(monitor):
    assert monitor.query_count(ColumnRef("R", "A2")) == 0
    assert monitor.frequency(ColumnRef("R", "A2"), now=1.0) == 0.0


def test_observed_columns_sorted_by_popularity(monitor):
    a1, a2 = ColumnRef("R", "A1"), ColumnRef("R", "A2")
    monitor.record(a2, 0, 1, 0.1)
    for i in range(3):
        monitor.record(a1, 0, 1, 0.2 + i)
    assert monitor.observed_columns() == [a1, a2]


def test_relative_weight(monitor):
    a1, a2 = ColumnRef("R", "A1"), ColumnRef("R", "A2")
    for _ in range(3):
        monitor.record(a1, 0, 1, 0.1)
    monitor.record(a2, 0, 1, 0.1)
    assert monitor.relative_weight(a1) == pytest.approx(0.75)
    assert monitor.relative_weight(a2) == pytest.approx(0.25)


def test_frequency_uses_recent_window(monitor, a1):
    for i in range(10):
        monitor.record(a1, 0, 1, float(i))
    # 10 queries across 9 seconds, measured at t=9.
    assert monitor.frequency(a1, now=9.0) == pytest.approx(10 / 9)


def test_coverage_accumulates_ranges(monitor, a1):
    monitor.record(a1, 100, 200, 0.1)
    monitor.record(a1, 150, 300, 0.2)
    assert monitor.coverage(a1).covers(120, 280)
    assert not monitor.coverage(a1).covers(0, 50)


def test_hot_ranges_from_histogram(monitor, a1, tiny_db):
    stats = tiny_db.column("R", "A1").stats
    width = stats.value_span / 10
    hot_low = stats.min_value + 2 * width
    for _ in range(5):
        monitor.record(a1, hot_low, hot_low + width / 2, 0.1)
    monitor.record(a1, stats.min_value, stats.min_value + 1, 0.2)
    hot = monitor.hot_ranges(a1, min_queries=5)
    assert len(hot) == 1
    low, high, count = hot[0]
    assert count >= 5
    assert low <= hot_low < high


def test_is_column_hot_threshold(monitor, a1):
    for _ in range(4):
        monitor.record(a1, 0, 1, 0.1)
    assert monitor.is_column_hot(a1, 4)
    assert not monitor.is_column_hot(a1, 5)


def test_epoch_counts_filters_by_time(monitor, a1):
    monitor.record(a1, 0, 1, 1.0)
    monitor.record(a1, 0, 1, 2.0)
    monitor.record(a1, 0, 1, 3.0)
    counts = monitor.epoch_counts(since=1.5)
    assert counts[a1] == 2


def test_invalid_configuration_rejected(tiny_db):
    with pytest.raises(ConfigError):
        WorkloadMonitor(tiny_db.catalog, histogram_bins=0)
    with pytest.raises(ConfigError):
        WorkloadMonitor(tiny_db.catalog, recent_window=0)


def test_note_many_equals_sequential_records(tiny_db, a1):
    import numpy as np

    catalog = tiny_db.catalog
    ref = a1
    rng = np.random.default_rng(7)
    lows = rng.uniform(0, 9e7, size=30)
    highs = lows + rng.uniform(0, 1e7, size=30)
    highs[5] = lows[5]  # empty range: histogram untouched, still counted
    timestamps = np.cumsum(rng.uniform(0, 1, size=30)).tolist()

    sequential = WorkloadMonitor(catalog)
    for low, high, ts in zip(lows, highs, timestamps):
        sequential.record(ref, float(low), float(high), float(ts))
    batched = WorkloadMonitor(catalog)
    batched.note_many(ref, lows, highs, [float(t) for t in timestamps])

    a = sequential._activity[ref]
    b = batched._activity[ref]
    assert b.query_count == a.query_count
    assert list(b.recent) == list(a.recent)
    assert np.array_equal(b.histogram, a.histogram)
    assert b.coverage.intervals() == a.coverage.intervals()
    assert (b.first_seen, b.last_seen) == (a.first_seen, a.last_seen)
    assert batched.total_queries == sequential.total_queries


def test_note_many_empty_window_is_noop(tiny_db, a1):
    import numpy as np

    monitor = WorkloadMonitor(tiny_db.catalog)
    monitor.note_many(a1, np.array([]), np.array([]), [])
    assert monitor.total_queries == 0


def test_frequency_zero_elapsed_window_is_finite(monitor, a1):
    """Regression: ``now`` equal to the first observation's timestamp.

    The old ``max(elapsed, 1e-9)`` clamp returned len(recent)/1e-9 --
    an absurd ~1e9-per-observation rate that drowned every real column
    in a frequency comparison.  The degenerate window reports its
    recent count as the rate instead.
    """
    for _ in range(5):
        monitor.record(a1, 0, 1, 2.5)
    rate = monitor.frequency(a1, now=2.5)
    assert rate == 5.0
    # An out-of-order clock (now before the window start) is equally
    # degenerate and must not go negative.
    assert monitor.frequency(a1, now=2.0) == 5.0
    # A real window still divides by real elapsed time.
    assert monitor.frequency(a1, now=7.5) == pytest.approx(1.0)


def test_hot_ranges_tolerates_single_timestamp_column(monitor, a1, tiny_db):
    """Every observation sharing one timestamp must not break the
    hot-range trigger (nor frequency, which feeds the same boost)."""
    stats = tiny_db.column("R", "A1").stats
    width = stats.value_span / 10
    hot_low = stats.min_value + 3 * width
    for _ in range(6):
        monitor.record(a1, hot_low, hot_low + width / 2, 1.0)
    hot = monitor.hot_ranges(a1, min_queries=6)
    assert len(hot) == 1
    low, high, count = hot[0]
    assert count >= 6
    assert low <= hot_low < high
    assert monitor.frequency(a1, now=1.0) == 6.0


def test_monitor_state_round_trip(monitor, a1, tiny_db):
    import numpy as np

    monitor.record(a1, 100, 200, 0.1)
    monitor.record(a1, 150, 300, 0.2)
    a2 = ColumnRef("R", "A1")
    state = monitor.export_state()
    clone = WorkloadMonitor(tiny_db.catalog, histogram_bins=10)
    clone.restore_state(state)
    assert clone.total_queries == monitor.total_queries
    assert clone.query_count(a2) == monitor.query_count(a2)
    original = monitor._activity[a1]
    restored = clone._activity[a1]
    assert list(restored.recent) == list(original.recent)
    assert np.array_equal(restored.histogram, original.histogram)
    assert restored.coverage.intervals() == original.coverage.intervals()
    assert restored.histogram_width == original.histogram_width
