"""Unit tests for the epoch manager."""

import pytest

from repro.errors import ConfigError
from repro.online.epoch import EpochManager


def test_epoch_fires_every_n_queries():
    epochs = EpochManager(epoch_queries=3)
    fired = []
    epochs.on_epoch(lambda e, t: fired.append((e, t)))
    results = [epochs.observe_query(float(i)) for i in range(7)]
    assert results == [False, False, True, False, False, True, False]
    assert fired == [(1, 2.0), (2, 5.0)]
    assert epochs.epochs_completed == 2
    assert epochs.queries_into_epoch == 1


def test_multiple_callbacks_all_fire():
    epochs = EpochManager(epoch_queries=1)
    hits = []
    epochs.on_epoch(lambda e, t: hits.append("a"))
    epochs.on_epoch(lambda e, t: hits.append("b"))
    epochs.observe_query(0.0)
    assert hits == ["a", "b"]


def test_last_epoch_timestamp():
    epochs = EpochManager(epoch_queries=2)
    epochs.observe_query(1.0)
    epochs.observe_query(2.5)
    assert epochs.last_epoch_at == 2.5


def test_invalid_epoch_length_rejected():
    with pytest.raises(ConfigError):
        EpochManager(epoch_queries=0)
