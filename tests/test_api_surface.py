"""API surface tests: every declared export exists and imports.

A downstream user adopts the library through its ``__init__``
re-exports; these tests keep the public surface honest.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.simtime",
    "repro.storage",
    "repro.cracking",
    "repro.offline",
    "repro.online",
    "repro.engine",
    "repro.holistic",
    "repro.workload",
    "repro.bench",
    "repro.util",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} declares no __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_convenience_path():
    """The README quickstart snippet's imports all work."""
    from repro import (  # noqa: F401
        Database,
        HolisticConfig,
        RangeQuery,
        SimClock,
        WallClock,
        build_paper_table,
        scale_by_name,
    )


def test_errors_all_derive_from_repro_error():
    import inspect

    from repro import errors

    for _name, obj in inspect.getmembers(errors, inspect.isclass):
        if obj.__module__ != "repro.errors":
            continue
        assert issubclass(obj, errors.ReproError) or obj in (
            errors.ReproError,
        )


def test_strategy_names_are_stable():
    from repro.engine.session import _STRATEGIES

    assert set(_STRATEGIES) == {"scan", "adaptive", "offline", "online"}
