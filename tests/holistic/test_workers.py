"""Tests for the parallel tuning worker pool.

Covers the serial fallback contract (``num_workers=0`` is bit-for-bit
the pre-worker kernel), window semantics, parallel time accounting,
worker attribution on the tape, and -- the important one -- a stress
test racing worker threads against foreground queries on the same
cracker index, checked against a serial oracle.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import TINY
from repro.engine.query import RangeQuery
from repro.errors import ConcurrencyError, ConfigError
from repro.holistic.kernel import HolisticConfig, HolisticKernel
from repro.holistic.workers import TuningWorkerPool
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

from tests.conftest import ground_truth_count


def _db(columns=3, rows=10_000, seed=42) -> Database:
    db = Database(clock=SimClock(TINY.cost_model()))
    db.add_table(build_paper_table(rows=rows, columns=columns, seed=seed))
    return db


def _query(low, high, column="A1"):
    return RangeQuery(ColumnRef("R", column), low, high)


# -- configuration -------------------------------------------------------


def test_config_validates_worker_knobs():
    with pytest.raises(ConfigError):
        HolisticConfig(num_workers=-1)
    with pytest.raises(ConfigError):
        HolisticConfig(latch_granularity=0)
    assert HolisticConfig().num_workers == 0


def test_pool_requires_at_least_one_worker(tiny_db):
    kernel = HolisticKernel(tiny_db)
    with pytest.raises(ConfigError):
        TuningWorkerPool(
            clock=tiny_db.clock,
            tape=kernel.tape,
            ranking=kernel.ranking,
            policy=kernel.policy,
            num_workers=0,
        )


def test_serial_kernel_has_no_pool_and_no_worker_marks(tiny_db):
    kernel = HolisticKernel(tiny_db)
    assert kernel.worker_pool is None
    kernel.select(_query(1e7, 3e7))
    kernel.exploit_idle(actions=20)
    assert all(r.worker is None for r in kernel.tape.records())
    with pytest.raises(ConfigError):
        kernel.start_workers()
    with pytest.raises(ConfigError):
        kernel.stop_workers()


def test_serial_fallback_reproduces_identical_tape():
    """num_workers=0 must behave exactly like the pre-worker kernel.

    Two fresh kernels -- default config vs. explicit num_workers=0 --
    run the same workload and must produce identical tapes, clocks and
    results.
    """
    tapes = []
    for config in (HolisticConfig(), HolisticConfig(num_workers=0)):
        db = _db()
        kernel = HolisticKernel(db, config)
        counts = []
        counts.append(kernel.select(_query(1e7, 3e7)).count)
        kernel.exploit_idle(actions=25)
        counts.append(kernel.select(_query(2e7, 6e7, "A2")).count)
        kernel.exploit_idle(budget_s=0.02)
        tapes.append(
            (
                counts,
                db.clock.now(),
                [
                    (r.timestamp, r.origin, r.pivot, r.position, r.worker)
                    for r in kernel.tape.records()
                ],
            )
        )
    assert tapes[0] == tapes[1]


# -- windowed parallel tuning -------------------------------------------


def test_worker_window_refines_and_attributes_workers():
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    outcome = kernel.exploit_idle(actions=40)
    assert outcome.actions_done > 0
    assert outcome.consumed_s > 0
    summary = kernel.tuning_summary()
    assert summary.workers == 2
    assert summary.actions_attempted == 40
    assert set(summary.per_worker) <= {0, 1}
    workers_on_tape = {
        r.worker
        for r in kernel.tape.records()
        if r.origin.value == "tuning"
    }
    assert workers_on_tape <= {0, 1}
    assert workers_on_tape  # at least one worker recorded actions
    for index in kernel.indexes.values():
        index.check_invariants()


def test_parallel_window_is_faster_than_serial_window():
    consumed = {}
    for workers in (1, 4):
        db = _db()
        kernel = HolisticKernel(db, HolisticConfig(num_workers=workers))
        outcome = kernel.exploit_idle(actions=64)
        consumed[workers] = outcome.consumed_s
        assert outcome.actions_done > 0
    assert consumed[4] < consumed[1]


def test_budget_window_with_workers_consumes_roughly_budget():
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    outcome = kernel.exploit_idle(budget_s=0.05)
    # Budget is checked between batches; the window may overshoot by
    # at most one batch but must not stop early while unrefined.
    assert outcome.consumed_s >= 0.05 or "refined" in outcome.note
    assert outcome.actions_done > 0


def test_window_reports_all_refined_when_candidates_done():
    db = _db(columns=1, rows=64)
    kernel = HolisticKernel(
        db,
        HolisticConfig(num_workers=2, cache_target_elements=32),
    )
    kernel.exploit_idle(actions=200)
    outcome = kernel.exploit_idle(actions=10)
    assert "all candidates refined" in outcome.note


def test_clock_leaves_parallel_phase_after_window():
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=3))
    kernel.exploit_idle(actions=30)
    assert not db.clock.in_parallel
    assert kernel.worker_pool is not None
    assert not kernel.worker_pool.is_running


def test_session_integration_via_strategy_options():
    db = _db()
    session = db.session("holistic", num_workers=2)
    session.select("R", "A1", 0, 1_000_000)
    record = session.idle(actions=32)
    assert record.actions_done > 0
    assert "2 workers" in record.note


# -- queries racing workers ---------------------------------------------


def test_stress_queries_race_workers_against_serial_oracle():
    """K worker threads refine while the foreground runs selects.

    Every query result must match a numpy oracle on the base column,
    and after draining, the piece map and cracker column must satisfy
    every structural invariant.
    """
    rows = 20_000
    db = _db(columns=2, rows=rows)
    kernel = HolisticKernel(
        db,
        HolisticConfig(num_workers=4, cache_target_elements=64),
    )
    column = db.column("R", "A1")
    rng = np.random.default_rng(99)
    kernel.start_workers()
    try:
        kernel.submit_tuning(600)
        for _ in range(120):
            low = float(rng.uniform(0, 9.5e7))
            high = low + float(rng.uniform(1e5, 5e6))
            result = kernel.select(_query(low, high))
            assert result.count == ground_truth_count(column, low, high)
        kernel.drain_workers()
    finally:
        kernel.stop_workers()
    for index in kernel.indexes.values():
        index.check_invariants()
    # The workers really did run concurrently with the queries.
    tuning_workers = {
        r.worker
        for r in kernel.tape.records()
        if r.origin.value == "tuning" and r.worker is not None
    }
    assert len(tuning_workers) >= 2
    assert not db.clock.in_parallel


def test_stress_contended_single_column_counts_stalls():
    """All workers hammer one tiny column: latch conflicts must be
    detected (stalls counted), never corrupting the index."""
    db = _db(columns=1, rows=2_000)
    kernel = HolisticKernel(
        db,
        # Coarse granularity: every piece maps to few latch buckets,
        # so worker collisions are frequent.
        HolisticConfig(
            num_workers=4, latch_granularity=1_000, cache_target_elements=2
        ),
    )
    kernel.exploit_idle(actions=400)
    index = kernel.index_for(ColumnRef("R", "A1"))
    index.check_invariants()
    summary = kernel.tuning_summary()
    assert summary.stalls == kernel.tape.stall_count()
    # With 4 workers on <= 2 buckets, contention is essentially
    # guaranteed; tolerate zero only if almost nothing overlapped.
    assert summary.actions_attempted == 400


def test_explicit_lifecycle_folds_worker_time_into_clock():
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    before = db.clock.now()
    kernel.start_workers()
    kernel.submit_tuning(40)
    kernel.drain_workers()
    kernel.stop_workers()
    assert db.clock.now() > before
    pool = kernel.worker_pool
    assert pool is not None
    busy = sum(stats.busy_s for stats in pool.worker_stats())
    assert busy > 0
    assert busy >= db.clock.now() - before  # lanes overlap


def test_worker_queries_race_from_two_foreground_threads():
    """Two foreground threads issue latched selects while workers
    crack: exercises multi-acquirer deadlock-freedom end to end."""
    db = _db(columns=1, rows=10_000)
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    column = db.column("R", "A1")
    errors: list[str] = []
    kernel.start_workers()

    def forager(seed: int) -> None:
        rng = np.random.default_rng(seed)
        for _ in range(40):
            low = float(rng.uniform(0, 9e7))
            high = low + 2e6
            count = kernel.select(_query(low, high)).count
            if count != ground_truth_count(column, low, high):
                errors.append(f"wrong count for [{low}, {high})")

    try:
        kernel.submit_tuning(200)
        threads = [
            threading.Thread(target=forager, args=(s,)) for s in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        kernel.drain_workers()
    finally:
        kernel.stop_workers()
    assert errors == []
    kernel.index_for(ColumnRef("R", "A1")).check_invariants()


def test_stop_preserves_settled_account_when_worker_died():
    """Regression: a worker death used to lose the ParallelAccount.

    ``stop()`` settles the parallel phase with ``end_parallel()`` and
    only then re-raises the worker failure -- the phase cannot be
    settled twice, so the account (and the busy_s statistics derived
    from its lanes) were unrecoverable and a retried ``stop()``
    silently returned ``None``.  The settled account and the updated
    worker statistics must ride on the raised ``ConcurrencyError``.
    """
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    pool = kernel.worker_pool

    def explode(worker_id, state, access):
        raise RuntimeError("injected worker crash")

    pool._perform_action = explode
    kernel.start_workers()
    kernel.submit_tuning(8)
    with pytest.raises(ConcurrencyError) as excinfo:
        pool.stop()
    error = excinfo.value
    assert error.account is not None
    assert error.account.elapsed_s >= 0.0
    assert [s.worker_id for s in error.worker_stats] == [0, 1]
    # The phase really was closed: no dangling parallel state, and a
    # retried stop() is an honest no-op.
    assert not db.clock.in_parallel
    assert pool.stop() is None


def test_drain_failure_reports_stats_without_account():
    db = _db()
    kernel = HolisticKernel(db, HolisticConfig(num_workers=2))
    pool = kernel.worker_pool

    def explode(worker_id, state, access):
        raise RuntimeError("injected worker crash")

    pool._perform_action = explode
    kernel.start_workers()
    try:
        kernel.submit_tuning(4)
        with pytest.raises(ConcurrencyError) as excinfo:
            pool.drain()
        # drain() has not settled the phase yet: no account to attach,
        # but the statistics snapshot is still there.
        assert excinfo.value.account is None
        assert len(excinfo.value.worker_stats) == 2
    finally:
        # The failure is sticky: stop() keeps raising until it is
        # explicitly acknowledged (see test_failure_is_sticky_*).
        with pytest.raises(ConcurrencyError):
            pool.stop()
        assert pool.clear_failure() is not None


# -- session-level background tuning ------------------------------------


def test_session_background_tuning_races_queries():
    db = _db(columns=2)
    session = db.session("holistic", num_workers=2)
    column = db.column("R", "A1")
    session.start_background_tuning(120)
    try:
        for i in range(20):
            low = 4e6 * i
            high = low + 2e6
            result = session.select("R", "A1", low, high)
            assert result.count == ground_truth_count(column, low, high)
    finally:
        session.finish_background_tuning()
    assert not db.clock.in_parallel
    kernel = session.strategy
    assert kernel.tuning_summary is not None
    tuning = [
        r
        for r in kernel.tape.records()
        if r.origin.value == "tuning" and r.worker is not None
    ]
    assert tuning  # workers really refined in the background
    for index in kernel.indexes.values():
        index.check_invariants()


def test_session_background_tuning_requires_workers():
    db = _db()
    scans = db.session("scan")
    with pytest.raises(ConfigError):
        scans.start_background_tuning(10)
    serial = db.session("holistic")  # num_workers=0
    with pytest.raises(ConfigError):
        serial.start_background_tuning(10)
    with pytest.raises(ConfigError):
        scans.finish_background_tuning()


def test_budget_window_terminates_on_minimal_clock():
    """A bare Clock (no parallel-lane accounting) still bounds the
    time-budget loop via plain now() deltas."""

    class MinimalClock:
        def __init__(self):
            self._now = 0.0

        def now(self):
            return self._now

        def charge(self, charge):
            self._now += 1e-4
            return 1e-4

        def sleep(self, seconds):
            self._now += seconds

    db = Database(clock=MinimalClock())
    db.add_table(build_paper_table(rows=50_000, columns=1, seed=3))
    kernel = HolisticKernel(
        db, HolisticConfig(num_workers=2, cache_target_elements=2)
    )
    outcome = kernel.exploit_idle(budget_s=0.001)
    # A tiny budget must not refine the whole 50k-row column.
    assert outcome.actions_done < 200
    assert outcome.consumed_s >= 0.001
