"""The tuning worker pool under the latch witness.

The pool arms every registered index when it starts while a witness is
enabled; a full tune-and-serve run must then finish with zero order
violations and zero unlatched mutations -- the runtime proof that the
worker protocol matches the statically-verified latch order.
"""

from __future__ import annotations

import pytest

from repro.analysis import witness
from repro.config import TINY
from repro.engine.query import RangeQuery
from repro.holistic.kernel import HolisticConfig, HolisticKernel
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

from tests.conftest import ground_truth_count


@pytest.fixture(autouse=True)
def _no_leaked_witness():
    yield
    witness.disable()


def _db(rows=10_000, seed=42) -> Database:
    db = Database(clock=SimClock(TINY.cost_model()))
    db.add_table(build_paper_table(rows=rows, columns=3, seed=seed))
    return db


def _query(low, high, column="A1"):
    return RangeQuery(ColumnRef("R", column), low, high)


def test_worker_pool_run_has_zero_witness_violations():
    db = _db()
    kernel = HolisticKernel(
        db, HolisticConfig(num_workers=4, cache_target_elements=64)
    )
    column = db.catalog.column(ColumnRef("R", "A1"))
    with witness.enabled() as w:
        kernel.start_workers()
        try:
            kernel.submit_tuning(600)
            for i in range(30):
                low = (i * 3_333_333) % 90_000_000
                high = low + 5_000_000
                result = kernel.select(_query(low, high))
                assert result.count == ground_truth_count(column, low, high)
            kernel.drain_workers()
        finally:
            kernel.stop_workers()
    assert w.violations == [], [v.detail for v in w.violations]
    assert w.acquires == w.releases > 0
    assert w.mutation_checks > 0


def test_pool_disarms_indexes_on_stop():
    db = _db(rows=2_000)
    kernel = HolisticKernel(
        db, HolisticConfig(num_workers=2, cache_target_elements=64)
    )
    with witness.enabled() as w:
        kernel.start_workers()
        try:
            kernel.submit_tuning(50)
            kernel.drain_workers()
        finally:
            kernel.stop_workers()
        # After stop the indexes are disarmed: an unlatched mutation on
        # the now-quiescent index is legal again (single-owner mode).
        before = len(w.violations)
        kernel.select(_query(1e7, 3e7))
        assert len(w.violations) == before
    assert w.violations == []
