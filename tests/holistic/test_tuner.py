"""Unit tests for auxiliary tuning actions."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.errors import ConfigError
from repro.holistic.tuner import ActionKind, AuxiliaryTuner
from repro.simtime.clock import SimClock


@pytest.fixture
def index(small_column) -> CrackerIndex:
    return CrackerIndex(small_column, clock=SimClock())


def test_random_crack_action(index):
    tuner = AuxiliaryTuner(seed=1)
    assert tuner.perform(index)
    assert index.crack_count == 1
    assert tuner.actions_performed == 1


def test_crack_largest_action(index):
    tuner = AuxiliaryTuner(kind=ActionKind.CRACK_LARGEST, seed=1)
    index.select_range(1e6, 2e6)
    biggest_before = index.max_piece_size()
    assert tuner.perform(index)
    assert index.max_piece_size() < biggest_before


def test_sort_smallest_action(index):
    index.select_range(4e7, 6e7)
    tuner = AuxiliaryTuner(
        kind=ActionKind.SORT_SMALLEST_UNSORTED, seed=1
    )
    assert tuner.perform(index)
    sorted_pieces = [
        p for p in index.piece_map.pieces() if p.is_sorted
    ]
    assert len(sorted_pieces) == 1
    index.check_invariants()


def test_sort_smallest_exhausts(index):
    tuner = AuxiliaryTuner(
        kind=ActionKind.SORT_SMALLEST_UNSORTED, seed=1
    )
    assert tuner.perform(index)  # sorts the single piece
    assert not tuner.perform(index)  # nothing unsorted left
    assert tuner.actions_degenerate == 1


def test_min_piece_size_blocks_tiny_cracks(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    tuner = AuxiliaryTuner(
        seed=1, min_piece_size=small_column.row_count + 1
    )
    assert not tuner.perform(index)
    assert tuner.actions_degenerate == 1


def test_crack_in_hot_range_confines_pivot(index):
    tuner = AuxiliaryTuner(seed=1)
    assert tuner.crack_in_hot_range(index, 4e7, 5e7)
    pivot = index.piece_map.pivots()[0]
    assert 4e7 <= pivot < 5e7


def test_crack_in_hot_range_rejects_empty_range(index):
    tuner = AuxiliaryTuner(seed=1)
    assert not tuner.crack_in_hot_range(index, 5e7, 5e7)


def test_invalid_min_piece_size():
    with pytest.raises(ConfigError):
        AuxiliaryTuner(min_piece_size=0)


def test_actions_are_seed_deterministic(small_column):
    def run(seed):
        index = CrackerIndex(small_column, clock=SimClock())
        tuner = AuxiliaryTuner(seed=seed)
        for _ in range(10):
            tuner.perform(index)
        return index.piece_map.pivots()

    assert run(7) == run(7)
    assert run(7) != run(8)
