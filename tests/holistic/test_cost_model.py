"""Unit tests for tuning economics."""

import pytest

from repro.cracking.index import CrackerIndex
from repro.holistic.cost_model import TuningCostModel
from repro.holistic.ranking import ColumnRanking
from repro.simtime.clock import SimClock
from repro.simtime.model import CostModel
from repro.storage.catalog import ColumnRef
from repro.storage.loader import generate_uniform_column


@pytest.fixture
def setup():
    clock = SimClock()
    ranking = ColumnRanking(cache_target_elements=100)
    for i in (1, 2):
        column = generate_uniform_column(f"A{i}", rows=10_000, seed=i)
        ranking.register(
            ColumnRef("R", f"A{i}"),
            CrackerIndex(column, clock=clock),
        )
    return TuningCostModel(CostModel(), ranking), ranking


def test_action_cost_tracks_average_piece(setup):
    model, ranking = setup
    state = ranking.states()[0]
    cost_before = model.action_cost_s(state)
    import numpy as np

    rng = np.random.default_rng(0)
    for _ in range(20):
        state.index.random_crack(rng, min_piece_size=1)
    assert model.action_cost_s(state) < cost_before


def test_per_query_saving_zero_when_refined(setup):
    model, ranking = setup
    state = ranking.states()[0]
    tiny = generate_uniform_column("T", rows=10, seed=1)
    state.index = CrackerIndex(tiny, clock=SimClock())
    assert model.per_query_saving_s(state) == 0.0


def test_benefit_splits_by_popularity(setup):
    model, ranking = setup
    hot, cold = ranking.states()
    for _ in range(8):
        ranking.note_query(hot.ref)
    assert model.action_benefit_s(hot) > model.action_benefit_s(cold)


def test_plan_window_respects_budget(setup):
    model, ranking = setup
    one_action = model.action_cost_s(ranking.states()[0])
    budget = one_action * 3.5
    plan = model.plan_window(budget_s=budget)
    # Projected halving makes later actions cheaper, so more than
    # budget/first-action-cost may fit -- but never beyond the budget.
    assert len(plan) >= 3
    assert sum(a.estimated_cost_s for a in plan) <= budget


def test_plan_window_empty_budget(setup):
    model, _ = setup
    assert model.plan_window(budget_s=0.0) == []


def test_plan_window_stops_at_cache_target(setup):
    model, ranking = setup
    # A huge budget: the plan must halt once projections hit the
    # cache target rather than looping forever.
    plan = model.plan_window(budget_s=1e9)
    assert len(plan) < 100_000
    assert plan  # it did schedule real work
