"""Unit tests for the idle-time scheduler."""

import pytest

from repro.cracking.index import CrackerIndex
from repro.errors import ConfigError
from repro.holistic.policies import RoundRobinPolicy
from repro.holistic.ranking import ColumnRanking
from repro.holistic.scheduler import IdleScheduler
from repro.holistic.tuner import AuxiliaryTuner
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.loader import generate_uniform_column


def _scheduler(columns=3, rows=5_000, target=10):
    clock = SimClock()
    ranking = ColumnRanking(cache_target_elements=target)
    for i in range(1, columns + 1):
        name = f"A{i}"
        column = generate_uniform_column(name, rows=rows, seed=i)
        index = CrackerIndex(column, clock=clock)
        ranking.register(ColumnRef("R", name), index)
    tuner = AuxiliaryTuner(seed=42, min_piece_size=target)
    return IdleScheduler(clock, ranking, RoundRobinPolicy(), tuner), clock


def test_run_actions_spreads_round_robin():
    scheduler, _ = _scheduler(columns=3)
    report = scheduler.run_actions(9)
    assert report.actions_attempted == 9
    assert set(report.per_column.values()) == {3}
    assert report.stop_reason == "action budget exhausted"


def test_run_actions_zero_is_noop():
    scheduler, clock = _scheduler()
    t0 = clock.now()
    report = scheduler.run_actions(0)
    assert report.actions_attempted == 0
    assert clock.now() == t0


def test_run_actions_negative_rejected():
    scheduler, _ = _scheduler()
    with pytest.raises(ConfigError):
        scheduler.run_actions(-1)


def test_run_budget_consumes_time():
    scheduler, clock = _scheduler(rows=50_000)
    budget = 0.01
    report = scheduler.run_budget(budget)
    assert report.consumed_s >= budget or (
        report.stop_reason == "all candidates refined"
    )
    assert clock.now() == pytest.approx(report.consumed_s)


def test_run_budget_negative_rejected():
    scheduler, _ = _scheduler()
    with pytest.raises(ConfigError):
        scheduler.run_budget(-0.1)


def test_stops_when_everything_refined():
    # Tiny columns with a huge target: refined from the start.
    scheduler, _ = _scheduler(rows=5, target=1_000)
    report = scheduler.run_actions(100)
    assert report.actions_attempted == 0
    assert report.stop_reason == "all candidates refined"


def test_lifetime_accumulates():
    scheduler, _ = _scheduler()
    scheduler.run_actions(4)
    scheduler.run_actions(5)
    assert scheduler.lifetime.actions_attempted == 9


def test_refinement_progresses_piece_counts():
    scheduler, _ = _scheduler(columns=2)
    states = scheduler.ranking.states()
    before = [s.index.piece_count for s in states]
    scheduler.run_actions(20)
    after = [s.index.piece_count for s in states]
    assert all(b > a for a, b in zip(before, after))


def test_merge_keeps_first_nonempty_stop_reason():
    """Regression: merging a report with an empty stop_reason used to
    erase the reason already recorded."""
    from repro.holistic.scheduler import TuningReport

    lifetime = TuningReport()
    first = TuningReport(actions_attempted=3, stop_reason="time budget exhausted")
    lifetime.merge(first)
    lifetime.merge(TuningReport(actions_attempted=1, stop_reason=""))
    assert lifetime.stop_reason == "time budget exhausted"
    # An empty accumulator still adopts the first real reason it sees.
    fresh = TuningReport()
    fresh.merge(TuningReport(stop_reason=""))
    assert fresh.stop_reason == ""
    fresh.merge(TuningReport(stop_reason="all candidates refined"))
    assert fresh.stop_reason == "all candidates refined"
