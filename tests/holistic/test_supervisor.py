"""Tests for the supervised crash handling of the tuning worker pool.

Covers the self-healing ladder of ISSUE 8: a crashed worker is
restarted with backoff and the fault is credited as recovered; a
column that repeatedly kills workers is quarantined while the rest of
the pool keeps refining; quarantining *every* candidate -- or running
a worker slot out of restarts -- is a fatal, sticky failure that every
``drain()``/``stop()`` keeps reporting until it is acknowledged; and
the pool distinguishes "all live work is done" (clean exhaustion) from
"the policy refuses to rotate off a quarantined column" (stuck).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.config import TINY
from repro.engine.query import RangeQuery
from repro.errors import ConcurrencyError
from repro.faults import FaultPlan, engaged
from repro.holistic.kernel import HolisticConfig, HolisticKernel
from repro.holistic.workers import SupervisorPolicy
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table
from repro.util.retry import BackoffPolicy

from tests.conftest import ground_truth_count

#: Zero-delay restarts keep the supervised tests fast.
FAST = SupervisorPolicy(
    backoff=BackoffPolicy(base_s=0.0, factor=2.0, cap_s=0.0, max_attempts=64)
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def _db(columns=3, rows=10_000, seed=42) -> Database:
    db = Database(clock=SimClock(TINY.cost_model()))
    db.add_table(build_paper_table(rows=rows, columns=columns, seed=seed))
    return db


def _query(low, high, column="A1"):
    return RangeQuery(ColumnRef("R", column), low, high)


def _kernel(db, **overrides) -> HolisticKernel:
    options = {"num_workers": 2, "cache_target_elements": 64}
    options.update(overrides)
    return HolisticKernel(db, HolisticConfig(**options))


# -- restart ------------------------------------------------------------


def test_injected_crash_restarts_worker_and_recovers():
    db = _db()
    kernel = _kernel(db)
    pool = kernel.worker_pool
    pool.supervisor = FAST
    column = db.column("R", "A1")
    plan = FaultPlan()
    plan.arm("workers.perform", at=0)
    with engaged(plan):
        kernel.select(_query(1e7, 3e7))
        kernel.start_workers()
        try:
            kernel.submit_tuning(16)
            kernel.drain_workers()  # a supervised crash must not surface
        finally:
            kernel.stop_workers()
    assert plan.injected == 1
    assert plan.unrecovered() == []
    assert plan.summary()["recovered"] == 1
    summary = pool.supervisor_summary()
    assert summary["restarts"] == 1
    assert summary["dead_letter"] == []
    assert any("restart #1" in line for line in summary["log"])
    # The fault-free answer path resumes after the repair.
    result = kernel.select(_query(1e7, 3e7))
    assert result.count == ground_truth_count(column, 1e7, 3e7)
    kernel.index_for(ColumnRef("R", "A1")).check_invariants()


# -- quarantine ---------------------------------------------------------


def test_repeated_crashes_quarantine_the_column():
    db = _db(columns=2)
    kernel = _kernel(db, cache_target_elements=8192)
    pool = kernel.worker_pool
    pool.supervisor = SupervisorPolicy(
        max_restarts_per_worker=16,
        quarantine_threshold=2,
        backoff=FAST.backoff,
    )
    a1 = ColumnRef("R", "A1")
    plan = FaultPlan()
    plan.arm("workers.perform", at=[0, 1])
    with engaged(plan):
        # A1 (never queried, one piece) is the only unrefined
        # candidate, so both armed crashes are attributed to it; A2
        # (cracked below the cache target by its select) keeps the
        # candidate set from becoming fully quarantined.
        kernel.index_for(a1)
        kernel.select(_query(1e7, 3e7, "A2"))
        kernel.start_workers()
        try:
            kernel.submit_tuning(24)
            kernel.drain_workers()  # quarantine, not failure
        finally:
            kernel.stop_workers()
    assert plan.injected == 2
    assert plan.unrecovered() == []
    summary = pool.supervisor_summary()
    assert summary["restarts"] == 2
    assert summary["dead_letter"] == ["R.A1"]
    assert summary["crashes_per_column"] == {"R.A1": 2}
    assert any("quarantined R.A1" in line for line in summary["log"])
    # Quarantine gates background tuning only: foreground queries on
    # the dead-lettered column still answer correctly.
    column = db.column("R", "A1")
    result = kernel.select(_query(1e7, 3e7, "A1"))
    assert result.count == ground_truth_count(column, 1e7, 3e7)


def test_quarantining_every_candidate_is_fatal():
    db = _db(columns=1)
    kernel = _kernel(db)
    pool = kernel.worker_pool
    pool.supervisor = SupervisorPolicy(
        quarantine_threshold=1, backoff=FAST.backoff
    )
    plan = FaultPlan()
    plan.arm("workers.perform", at=0)
    with engaged(plan):
        kernel.select(_query(1e7, 3e7))
        kernel.start_workers()
        try:
            kernel.submit_tuning(8)
            with pytest.raises(
                ConcurrencyError, match="every tuning candidate is quarantined"
            ):
                pool.drain()
        finally:
            with pytest.raises(ConcurrencyError):
                pool.stop()
            pool.clear_failure()
    # Losing the whole candidate set is not claimed as a recovery.
    assert plan.unrecovered() != []


# -- sticky fatal failures ----------------------------------------------


def test_failure_is_sticky_until_cleared():
    db = _db()
    kernel = _kernel(db, cache_target_elements=8192)
    pool = kernel.worker_pool
    pool.supervisor = SupervisorPolicy(
        max_restarts_per_worker=1,
        quarantine_threshold=1000,
        backoff=FAST.backoff,
    )

    def explode(worker_id, state, access):
        raise RuntimeError("genuine worker bug")

    pool._perform_action = explode
    kernel.start_workers()
    kernel.submit_tuning(8)
    with pytest.raises(ConcurrencyError, match="tuning worker died"):
        pool.drain()
    # Sticky: later drains and the stop keep reporting the loss.
    with pytest.raises(ConcurrencyError, match="tuning worker died"):
        pool.drain()
    with pytest.raises(ConcurrencyError, match="tuning worker died"):
        pool.stop()
    failure = pool.clear_failure()
    assert isinstance(failure, RuntimeError)
    assert pool.clear_failure() is None


def test_failure_is_sticky_but_next_lifecycle_is_clean():
    db = _db()
    kernel = _kernel(db, cache_target_elements=8192)
    pool = kernel.worker_pool
    pool.supervisor = SupervisorPolicy(
        max_restarts_per_worker=0,
        quarantine_threshold=1000,
        backoff=FAST.backoff,
    )

    def explode(worker_id, state, access):
        raise RuntimeError("genuine worker bug")

    pool._perform_action = explode
    kernel.start_workers()
    kernel.submit_tuning(4)
    with pytest.raises(ConcurrencyError):
        pool.stop()
    assert isinstance(pool.clear_failure(), RuntimeError)
    # With the crashing action gone, a fresh lifecycle drains cleanly.
    del pool._perform_action
    kernel.start_workers()
    try:
        kernel.submit_tuning(4)
        kernel.drain_workers()
    finally:
        kernel.stop_workers()


def test_genuine_crashes_are_not_credited_to_the_fault_plan():
    """A real (non-injected) error must not consume an armed fault's
    recovery bookkeeping: nothing was injected, so nothing can be
    marked recovered."""
    db = _db()
    kernel = _kernel(db, cache_target_elements=8192)
    pool = kernel.worker_pool
    pool.supervisor = SupervisorPolicy(
        max_restarts_per_worker=1,
        quarantine_threshold=1000,
        backoff=FAST.backoff,
    )

    def explode(worker_id, state, access):
        raise RuntimeError("genuine worker bug")

    plan = FaultPlan()  # engaged but with nothing armed
    with engaged(plan):
        pool._perform_action = explode
        kernel.start_workers()
        kernel.submit_tuning(2)
        with pytest.raises(ConcurrencyError):
            pool.stop()
        pool.clear_failure()
    assert plan.injected == 0
    assert plan.summary()["recovered"] == 0


# -- exhaustion vs. stuck (regression for _choose_state) -----------------


def test_quarantined_best_with_live_unrefined_candidate_is_stuck():
    """The ranked policy re-offers the dead-lettered best forever; with
    a live unrefined candidate it refuses to rotate to, submitted
    actions would silently no-op -- that must be a sticky failure."""
    db = _db(columns=2)
    kernel = _kernel(db, cache_target_elements=8192, policy="ranked")
    pool = kernel.worker_pool
    pool.supervisor = FAST
    a1 = ColumnRef("R", "A1")
    a2 = ColumnRef("R", "A2")
    kernel.index_for(a1)
    kernel.index_for(a2)
    for _ in range(3):  # make A1 strictly the ranked best
        kernel.ranking.note_query(a1)
    pool.dead_letter.append(a1)
    kernel.start_workers()
    try:
        kernel.submit_tuning(4)
        with pytest.raises(
            ConcurrencyError,
            match="every candidate the tuning policy offers is quarantined",
        ):
            pool.drain()
    finally:
        with pytest.raises(ConcurrencyError):
            pool.stop()
        pool.clear_failure()


def test_quarantined_remainder_with_refined_live_set_is_exhaustion():
    """When every live candidate is already refined, the only unrefined
    work left is the quarantined set: that is clean exhaustion, not a
    failure."""
    db = _db(columns=2)
    kernel = _kernel(db, cache_target_elements=8192, policy="ranked")
    pool = kernel.worker_pool
    pool.supervisor = FAST
    a1 = ColumnRef("R", "A1")
    kernel.index_for(a1)  # one piece: unrefined
    kernel.select(_query(1e7, 3e7, "A2"))  # cracked: refined at 8192
    assert kernel.ranking.is_refined(kernel.ranking.state(ColumnRef("R", "A2")))
    assert not kernel.ranking.is_refined(kernel.ranking.state(a1))
    pool.dead_letter.append(a1)
    kernel.start_workers()
    try:
        kernel.submit_tuning(4)
        kernel.drain_workers()  # clean: nothing safe is left to do
    finally:
        kernel.stop_workers()
    assert pool.dead_letter == [a1]
