"""Unit tests for the continuous column ranking."""

import pytest

from repro.cracking.index import CrackerIndex
from repro.errors import ConfigError
from repro.holistic.ranking import ColumnRanking
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.loader import generate_uniform_column


def _register(ranking, name, rows=10_000, weight=1.0):
    ref = ColumnRef("R", name)
    column = generate_uniform_column(name, rows=rows, seed=hash(name) % 100)
    index = CrackerIndex(column, clock=SimClock())
    return ref, ranking.register(ref, index, workload_weight=weight)


def test_register_is_idempotent():
    ranking = ColumnRanking(cache_target_elements=100)
    ref, state = _register(ranking, "A1")
    again = ranking.register(ref, state.index, workload_weight=5.0)
    assert again is state
    assert state.workload_weight == 5.0
    assert len(ranking) == 1


def test_fresh_column_has_positive_score():
    ranking = ColumnRanking(cache_target_elements=100)
    _, state = _register(ranking, "A1")
    assert ranking.score(state) > 0
    assert not ranking.is_refined(state)


def test_hot_column_outranks_cold():
    ranking = ColumnRanking(cache_target_elements=100)
    ref_hot, _ = _register(ranking, "A1")
    ref_cold, _ = _register(ranking, "A2")
    for _ in range(10):
        ranking.note_query(ref_hot)
    assert ranking.best().ref == ref_hot


def test_refined_column_scores_zero():
    ranking = ColumnRanking(cache_target_elements=10_000)
    _, state = _register(ranking, "A1", rows=100)
    # 100 rows, target 10k: already refined.
    assert ranking.is_refined(state)
    assert ranking.score(state) == 0.0
    assert ranking.best() is None


def test_refinement_decays_score():
    import numpy as np

    ranking = ColumnRanking(cache_target_elements=10)
    ref, state = _register(ranking, "A1", rows=10_000)
    before = ranking.score(state)
    rng = np.random.default_rng(0)
    for _ in range(50):
        state.index.random_crack(rng, min_piece_size=1)
    assert ranking.score(state) < before


def test_workload_weight_breaks_ties():
    ranking = ColumnRanking(cache_target_elements=100)
    _register(ranking, "A1", weight=1.0)
    ref_heavy, _ = _register(ranking, "A2", weight=10.0)
    assert ranking.best().ref == ref_heavy


def test_ranked_sorts_descending():
    ranking = ColumnRanking(cache_target_elements=100)
    refs = [
        _register(ranking, f"A{i}", weight=float(i))[0]
        for i in range(1, 4)
    ]
    scores = [score for _, score in ranking.ranked()]
    assert scores == sorted(scores, reverse=True)
    assert ranking.ranked()[0][0].ref == refs[-1]


def test_refined_count():
    ranking = ColumnRanking(cache_target_elements=1_000)
    _register(ranking, "A1", rows=100)  # refined immediately
    _register(ranking, "A2", rows=100_000)
    assert ranking.refined_count() == 1


def test_invalid_cache_target_rejected():
    with pytest.raises(ConfigError):
        ColumnRanking(cache_target_elements=0)


def test_note_query_on_unknown_ref_is_noop():
    ranking = ColumnRanking(cache_target_elements=100)
    ranking.note_query(ColumnRef("R", "missing"))  # must not raise
    ranking.note_tuning_action(ColumnRef("R", "missing"))
