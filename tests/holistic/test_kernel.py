"""Unit tests for the holistic kernel."""

import pytest

from repro.engine.query import RangeQuery
from repro.errors import ConfigError
from repro.holistic.kernel import HolisticConfig, HolisticKernel
from repro.offline.whatif import WorkloadStatement
from repro.storage.catalog import ColumnRef

from tests.conftest import ground_truth_count


def _query(low, high, column="A1"):
    return RangeQuery(ColumnRef("R", column), low, high)


def test_select_is_correct_and_refines(tiny_db):
    kernel = HolisticKernel(tiny_db)
    result = kernel.select(_query(1e7, 3e7))
    assert result.count == ground_truth_count(
        tiny_db.column("R", "A1"), 1e7, 3e7
    )
    index = kernel.index_for(ColumnRef("R", "A1"))
    assert index.crack_count >= 2


def test_idle_requires_some_budget(tiny_db):
    kernel = HolisticKernel(tiny_db)
    with pytest.raises(ConfigError):
        kernel.exploit_idle()


def test_idle_with_hints_tunes_hinted_columns(tiny_db):
    kernel = HolisticKernel(tiny_db)
    kernel.hint_workload(
        [WorkloadStatement(ColumnRef("R", "A2"), 0, 1, weight=10)]
    )
    outcome = kernel.exploit_idle(actions=10)
    assert outcome.actions_done > 0
    assert kernel.index_for(ColumnRef("R", "A2")).crack_count > 0
    # Unhinted columns untouched.
    assert kernel.index_for(ColumnRef("R", "A1")).crack_count == 0


def test_idle_without_knowledge_bootstraps_from_catalog(tiny_db):
    """The paper's "no knowledge" case: catalog-driven spreading."""
    kernel = HolisticKernel(tiny_db)
    outcome = kernel.exploit_idle(actions=9)
    assert outcome.actions_done > 0
    # Round-robin across all three catalog columns.
    per_column = [
        kernel.index_for(ColumnRef("R", f"A{i}")).crack_count
        for i in (1, 2, 3)
    ]
    assert all(count > 0 for count in per_column)


def test_bootstrap_can_be_disabled(tiny_db):
    config = HolisticConfig(bootstrap_from_catalog=False)
    kernel = HolisticKernel(tiny_db, config)
    outcome = kernel.exploit_idle(actions=10)
    assert outcome.actions_done == 0


def test_idle_prefers_monitored_columns_over_catalog(tiny_db):
    kernel = HolisticKernel(tiny_db)
    kernel.select(_query(1e6, 2e6, "A2"))
    kernel.exploit_idle(actions=6)
    a2_cracks = kernel.index_for(ColumnRef("R", "A2")).crack_count
    assert a2_cracks > 2  # query cracks + tuning cracks
    assert kernel.index_for(ColumnRef("R", "A1")).crack_count == 0


def test_hot_range_boost_fires_after_threshold(tiny_db):
    config = HolisticConfig(
        hot_column_threshold=3, hot_boost_cracks=2, seed=1
    )
    kernel = HolisticKernel(tiny_db, config)
    for _ in range(5):
        kernel.select(_query(4e7, 4.5e7))
    assert kernel.boost_cracks_applied > 0


def test_hot_range_boost_disabled_by_default(tiny_db):
    kernel = HolisticKernel(tiny_db)
    for _ in range(10):
        kernel.select(_query(4e7, 4.5e7))
    assert kernel.boost_cracks_applied == 0


def test_features_row_matches_paper(tiny_db):
    from repro.bench.features import PAPER_TABLE1

    features = HolisticKernel(tiny_db).features()
    expected = PAPER_TABLE1["holistic"]
    assert features.statistical_analysis == expected[0]
    assert features.idle_a_priori == expected[1]
    assert features.idle_during_workload == expected[2]
    assert features.incremental_indexing == expected[3]
    assert features.workload == expected[4]


def test_idle_improves_future_queries(tiny_db):
    """The paper's core claim at unit scale."""
    kernel = HolisticKernel(tiny_db)
    kernel.hint_workload(
        [WorkloadStatement(ColumnRef("R", "A1"), 0, 1, weight=10)]
    )
    clock = tiny_db.clock
    kernel.exploit_idle(actions=200)
    t0 = clock.now()
    kernel.select(_query(1e7, 2e7))
    tuned_cost = clock.now() - t0

    # Fresh kernel without tuning on an identical database.
    from repro.storage.database import Database
    from repro.storage.loader import build_paper_table
    from repro.simtime.clock import SimClock
    from repro.config import TINY

    db2 = Database(clock=SimClock(TINY.cost_model()))
    db2.add_table(build_paper_table(rows=10_000, columns=3, seed=42))
    cold = HolisticKernel(db2)
    t0 = db2.clock.now()
    cold.select(_query(1e7, 2e7))
    cold_cost = db2.clock.now() - t0
    assert tuned_cost < cold_cost / 5


def test_config_validation():
    with pytest.raises(ConfigError):
        HolisticConfig(hot_column_threshold=-1)
    with pytest.raises(ConfigError):
        HolisticConfig(hot_boost_cracks=-1)


def test_cache_target_derived_from_model_scale(tiny_db):
    kernel = HolisticKernel(tiny_db)
    constants = tiny_db.cost_model.constants
    expected = max(
        1,
        int(constants.cache_elements() / tiny_db.cost_model.scale),
    )
    assert kernel.cache_target_elements == expected


def test_tuning_summary_aggregates(tiny_db):
    kernel = HolisticKernel(tiny_db)
    kernel.exploit_idle(actions=5)
    kernel.exploit_idle(actions=5)
    assert kernel.tuning_summary().actions_attempted == 10
    assert kernel.idle_windows == 2
