"""Unit tests for resource-spreading policies."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.errors import ConfigError
from repro.holistic.policies import (
    RankedPolicy,
    RoundRobinPolicy,
    WeightedRandomPolicy,
    make_policy,
)
from repro.holistic.ranking import ColumnRanking
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.loader import generate_uniform_column


@pytest.fixture
def ranking() -> ColumnRanking:
    ranking = ColumnRanking(cache_target_elements=10)
    for i in range(1, 4):
        name = f"A{i}"
        column = generate_uniform_column(name, rows=1_000, seed=i)
        index = CrackerIndex(column, clock=SimClock())
        ranking.register(ColumnRef("R", name), index, workload_weight=i)
    return ranking


def test_round_robin_cycles(ranking):
    policy = RoundRobinPolicy()
    chosen = [policy.choose(ranking).ref.column for _ in range(6)]
    assert chosen == ["A1", "A2", "A3", "A1", "A2", "A3"]


def test_round_robin_skips_refined(ranking):
    policy = RoundRobinPolicy()
    # Shrink A2 below the target by marking it refined artificially:
    # register a tiny column in its place.
    tiny = generate_uniform_column("A2", rows=5, seed=9)
    ranking.register(
        ColumnRef("R", "A2"), CrackerIndex(tiny, clock=SimClock())
    )
    state = ranking.state(ColumnRef("R", "A2"))
    state.index = CrackerIndex(tiny, clock=SimClock())
    chosen = [policy.choose(ranking).ref.column for _ in range(4)]
    assert "A2" not in chosen


def test_round_robin_empty_ranking():
    ranking = ColumnRanking(cache_target_elements=10)
    assert RoundRobinPolicy().choose(ranking) is None


def test_ranked_picks_best(ranking):
    policy = RankedPolicy()
    # A3 has the highest workload weight.
    assert policy.choose(ranking).ref.column == "A3"


def test_weighted_random_prefers_heavy(ranking):
    policy = WeightedRandomPolicy(seed=0)
    picks = [policy.choose(ranking).ref.column for _ in range(300)]
    counts = {c: picks.count(c) for c in ("A1", "A2", "A3")}
    assert counts["A3"] > counts["A1"]


def test_weighted_random_empty_ranking():
    ranking = ColumnRanking(cache_target_elements=10)
    assert WeightedRandomPolicy(seed=0).choose(ranking) is None


def test_make_policy_resolves_names():
    assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
    assert isinstance(make_policy("ranked"), RankedPolicy)
    assert isinstance(
        make_policy("weighted_random", seed=1), WeightedRandomPolicy
    )


def test_make_policy_rejects_unknown():
    with pytest.raises(ConfigError):
        make_policy("alphabetical")
