"""Window accountants: amortized pricing must be bit-identical."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simtime.accounting import (
    DirectAccountant,
    WindowAccountant,
    make_accountant,
)
from repro.simtime.charge import CostCharge
from repro.simtime.clock import SimClock, WallClock


def _charged_clock() -> SimClock:
    clock = SimClock()
    clock.charge(CostCharge.for_scan(12345, 678))  # non-zero start
    return clock


def _drive(accountant) -> None:
    accountant.charge_query()
    accountant.charge_binary(17)
    accountant.charge_binary_pair(33)
    accountant.charge_warm_select(65)
    accountant.charge_crack(1000, 1)
    accountant.charge_crack(512, 2)
    accountant.charge_empty_crack()
    accountant.charge_materialize(4096)
    accountant.charge_scan(2048, 77)
    accountant.charge_scan_query(100, 3)
    accountant.charge_pending_merge(0, 55)
    accountant.charge_pending_merge(9, 200)


def _sequential_reference(clock: SimClock) -> None:
    """The exact charge stream `_drive` stands for, one event at a
    time through the classic clock interface."""
    clock.charge(CostCharge(queries=1))
    clock.charge(CostCharge.for_binary_search(17))
    clock.charge(CostCharge.for_binary_search(33))
    clock.charge(CostCharge.for_binary_search(33))
    clock.charge(CostCharge(queries=1))
    clock.charge(CostCharge.for_binary_search(65))
    clock.charge(CostCharge.for_binary_search(65))
    clock.charge(
        CostCharge(elements_cracked=1000, pieces_touched=1, cracks=1)
    )
    clock.charge(
        CostCharge(elements_cracked=512, pieces_touched=1, cracks=2)
    )
    clock.charge(CostCharge(cracks=1))
    clock.charge(CostCharge(elements_materialized=4096))
    clock.charge(
        CostCharge(elements_scanned=2048, elements_materialized=77)
    )
    clock.charge(CostCharge(queries=1))
    clock.charge(
        CostCharge(elements_scanned=100, elements_materialized=3)
    )
    clock.charge(CostCharge.for_pending_merge(0, 55))
    clock.charge(CostCharge.for_pending_merge(9, 200))


def test_window_accountant_is_bit_identical_to_per_event_charging():
    reference = _charged_clock()
    _sequential_reference(reference)

    clock = _charged_clock()
    accountant = WindowAccountant(clock)
    _drive(accountant)
    assert repr(accountant.now) == repr(reference.now())
    accountant.finish()
    assert repr(clock.now()) == repr(reference.now())
    assert clock.total_charge == reference.total_charge


def test_direct_accountant_matches_too():
    reference = _charged_clock()
    _sequential_reference(reference)
    clock = _charged_clock()
    accountant = DirectAccountant(clock)
    _drive(accountant)
    accountant.finish()
    assert repr(clock.now()) == repr(reference.now())
    assert clock.total_charge == reference.total_charge


def test_accountant_now_tracks_mid_window():
    clock = SimClock()
    accountant = WindowAccountant(clock)
    before = accountant.now
    accountant.charge_crack(100, 1)
    assert accountant.now > before
    # The clock itself only moves on finish.
    assert clock.now() == 0.0
    accountant.finish()
    assert clock.now() == accountant.now


def test_make_accountant_picks_by_clock_type():
    assert isinstance(make_accountant(SimClock()), WindowAccountant)
    assert isinstance(make_accountant(WallClock()), DirectAccountant)
    parallel = SimClock()
    parallel.begin_parallel()
    assert isinstance(make_accountant(parallel), DirectAccountant)
    parallel.end_parallel()


def test_settle_batch_rejects_backwards_time_and_parallel_phases():
    clock = SimClock()
    clock.sleep(5.0)
    with pytest.raises(ConfigError):
        clock.settle_batch(1.0, CostCharge())
    clock.begin_parallel()
    with pytest.raises(ConfigError):
        clock.settle_batch(10.0, CostCharge())
    clock.end_parallel()
    clock.settle_batch(6.0, CostCharge(queries=3))
    assert clock.now() == 6.0
    assert clock.total_charge.queries == 3
