"""Calibration tests: the paper's anchor numbers are model fixed points.

DESIGN.md §3 derives each cost constant from a published number; these
tests pin the derivations so a constant change that breaks the
reproduction fails loudly.
"""

import pytest

from repro.simtime.charge import CostCharge
from repro.simtime.costs import (
    PAPER_ADAPTIVE_TOTAL_S,
    PAPER_COLUMN_ROWS,
    PAPER_EXP2_IDLE_S,
    PAPER_OFFLINE_TOTAL_S,
    PAPER_QUERY_COUNT,
    PAPER_SCAN_TOTAL_S,
    PAPER_SORT_S,
)
from repro.simtime.model import CostModel


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel()


def test_anchor_scan_total(model):
    """10^4 scan queries over 10^8 rows cost ~6746 s (Table 2)."""
    per_query = model.scan_seconds(PAPER_COLUMN_ROWS)
    total = per_query * PAPER_QUERY_COUNT
    assert total == pytest.approx(PAPER_SCAN_TOTAL_S, rel=0.01)


def test_anchor_sort_time(model):
    """Sorting one 10^8-row column costs ~28.4 s (Figure 3)."""
    assert model.sort_seconds(PAPER_COLUMN_ROWS) == pytest.approx(
        PAPER_SORT_S, rel=0.01
    )


def test_anchor_offline_total(model):
    """Sort + 10^4 indexed queries cost ~28.5 s (Table 2)."""
    total = model.sort_seconds(PAPER_COLUMN_ROWS)
    total += PAPER_QUERY_COUNT * model.indexed_query_seconds(
        PAPER_COLUMN_ROWS
    )
    assert total == pytest.approx(PAPER_OFFLINE_TOTAL_S, rel=0.02)


def test_anchor_exp2_idle_window(model):
    """Two full sorts match the paper's ~55 s Exp2 idle budget."""
    two_sorts = 2 * model.sort_seconds(PAPER_COLUMN_ROWS)
    assert two_sorts == pytest.approx(PAPER_EXP2_IDLE_S, rel=0.05)


def test_anchor_adaptive_total_analytic(model):
    """Cracking's total is ~13 s (Table 2): analytic approximation.

    Random-bound cracking touches ~2N/(k+1) elements at query k, so
    the total element movement is ~2N*(H(Q+1)-1); adding the one-off
    column copy and per-query overheads must land near 13 s.
    """
    n, q = PAPER_COLUMN_ROWS, PAPER_QUERY_COUNT
    harmonic = sum(1.0 / k for k in range(2, q + 2))
    moved = 2.0 * n * harmonic
    total = model.seconds(
        CostCharge(
            elements_cracked=int(moved),
            elements_materialized=n,  # first-touch column copy
            queries=q,
            cracks=2 * q,
            seeks=2 * q,
        )
    )
    assert total == pytest.approx(PAPER_ADAPTIVE_TOTAL_S, rel=0.15)


def test_reduced_scale_projects_to_same_anchors():
    """A 10^6-row run projected x100 must price like 10^8 rows."""
    reduced = CostModel(scale=100.0)
    rows = PAPER_COLUMN_ROWS // 100
    assert reduced.scan_seconds(rows) == pytest.approx(
        CostModel().scan_seconds(PAPER_COLUMN_ROWS), rel=0.01
    )
    assert reduced.sort_seconds(rows) == pytest.approx(
        PAPER_SORT_S, rel=0.01
    )
