"""Unit tests for :class:`ChargeBatch` and the unrolled charge ops."""

import pytest

from repro.simtime.charge import ChargeBatch, CostCharge
from repro.simtime.clock import SimClock
from repro.simtime.model import CostModel


def test_add_and_iadd_match_fieldwise_sum():
    a = CostCharge(elements_scanned=3, cracks=1, seeks=2)
    b = CostCharge(elements_scanned=4, comparisons=7, cracks=1)
    total = a + b
    assert total.elements_scanned == 7
    assert total.comparisons == 7
    assert total.cracks == 2
    assert total.seeks == 2
    a += b
    assert a == total


def test_batch_flushes_linear_charges_in_one_call():
    eager = SimClock(CostModel())
    batched = SimClock(CostModel())
    batch = ChargeBatch(batched)
    charges = [
        CostCharge.for_crack(1_000),
        CostCharge.for_scan(5_000),
        CostCharge.for_binary_search(1_000),
    ]
    for charge in charges:
        eager.charge(charge)
        batch.add(charge)
    assert batched.now() == 0.0  # nothing settled yet
    batch.flush()
    assert batched.now() == pytest.approx(eager.now())
    assert batched.total_charge == eager.total_charge


def test_batch_passes_sorts_through_eagerly():
    clock = SimClock(CostModel())
    batch = ChargeBatch(clock)
    batch.add(CostCharge.for_crack(100))
    before_sort = clock.now()
    batch.add(CostCharge.for_sort(10_000))
    # The sort (superlinear pricing) settles immediately, flushing the
    # pending linear charges first to preserve ordering.
    assert clock.now() > before_sort
    assert batch.pending.is_zero()
    reference = SimClock(CostModel())
    reference.charge(CostCharge.for_crack(100))
    reference.charge(CostCharge.for_sort(10_000))
    assert clock.now() == pytest.approx(reference.now())


def test_empty_flush_is_free():
    clock = SimClock(CostModel())
    batch = ChargeBatch(clock)
    assert batch.flush() == 0.0
    assert clock.now() == 0.0
