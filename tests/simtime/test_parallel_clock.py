"""Unit tests for the parallel-phase accounting of the clocks."""

import threading

import pytest

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.clock import ParallelAccount, SimClock, WallClock
from repro.simtime.model import CostModel


def _charge_seconds(clock, elements):
    return clock.charge(CostCharge(elements_scanned=elements))


def test_serial_charges_unchanged_by_phase_support():
    clock = SimClock(CostModel())
    seconds = _charge_seconds(clock, 1_000_000)
    assert clock.now() == pytest.approx(seconds)
    assert not clock.in_parallel


def test_phase_advances_by_max_lane():
    clock = SimClock(CostModel())
    clock.begin_parallel()

    def lane(elements):
        _charge_seconds(clock, elements)

    threads = [
        threading.Thread(target=lane, args=(4_000_000,)),
        threading.Thread(target=lane, args=(1_000_000,)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    account = clock.end_parallel()
    expected_max = CostModel().seconds(
        CostCharge(elements_scanned=4_000_000)
    )
    expected_sum = CostModel().seconds(
        CostCharge(elements_scanned=5_000_000)
    )
    assert account.elapsed_s == pytest.approx(expected_max)
    assert account.busy_s == pytest.approx(expected_sum)
    assert clock.now() == pytest.approx(expected_max)
    assert len(account.lanes) == 2
    assert account.speedup == pytest.approx(
        expected_sum / expected_max
    )


def test_lane_local_now_during_phase():
    clock = SimClock(CostModel())
    clock.begin_parallel()
    base = clock.now()
    seconds = _charge_seconds(clock, 2_000_000)
    # This thread sees its own lane's progress...
    assert clock.now() == pytest.approx(base + seconds)
    seen_in_thread = []
    other = threading.Thread(
        target=lambda: seen_in_thread.append(clock.now())
    )
    other.start()
    other.join()
    # ...while a fresh thread still sits at the phase's base time.
    assert seen_in_thread[0] == pytest.approx(base)
    clock.end_parallel()


def test_phase_progress_probes():
    clock = SimClock(CostModel())
    clock.begin_parallel()
    assert clock.parallel_elapsed() == 0.0
    assert clock.parallel_busy() == 0.0
    seconds = _charge_seconds(clock, 1_000_000)
    assert clock.parallel_elapsed() == pytest.approx(seconds)
    assert clock.parallel_busy() == pytest.approx(seconds)
    clock.end_parallel()


def test_empty_phase_costs_nothing():
    clock = SimClock(CostModel())
    clock.sleep(1.0)
    clock.begin_parallel()
    account = clock.end_parallel()
    assert account == ParallelAccount()
    assert clock.now() == pytest.approx(1.0)
    assert account.speedup == 1.0


def test_phases_cannot_nest_and_need_to_be_open():
    clock = SimClock(CostModel())
    clock.begin_parallel()
    with pytest.raises(ConfigError):
        clock.begin_parallel()
    clock.end_parallel()
    with pytest.raises(ConfigError):
        clock.end_parallel()


def test_sleep_lands_on_the_callers_lane():
    clock = SimClock(CostModel())
    clock.begin_parallel()
    clock.sleep(0.25)
    account = clock.end_parallel()
    assert account.elapsed_s == pytest.approx(0.25)
    assert clock.now() == pytest.approx(0.25)


def test_total_charge_still_accumulates_in_phase():
    clock = SimClock(CostModel())
    clock.begin_parallel()
    _charge_seconds(clock, 123)
    clock.end_parallel()
    assert clock.total_charge.elements_scanned == 123


def test_wall_clock_phase_reports_real_time():
    clock = WallClock()
    with pytest.raises(ConfigError):
        clock.end_parallel()
    clock.begin_parallel()
    assert clock.in_parallel
    with pytest.raises(ConfigError):
        clock.begin_parallel()
    account = clock.end_parallel()
    assert account.elapsed_s >= 0.0
    assert account.busy_s == pytest.approx(account.elapsed_s)
