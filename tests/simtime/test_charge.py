"""Unit tests for cost charges."""

import pytest

from repro.simtime.charge import CostCharge


def test_default_charge_is_zero():
    assert CostCharge().is_zero()


def test_addition_merges_every_field():
    a = CostCharge(elements_scanned=5, comparisons=2, queries=1)
    b = CostCharge(elements_scanned=3, cracks=4)
    merged = a + b
    assert merged.elements_scanned == 8
    assert merged.comparisons == 2
    assert merged.queries == 1
    assert merged.cracks == 4


def test_addition_leaves_operands_untouched():
    a = CostCharge(elements_scanned=5)
    b = CostCharge(elements_scanned=3)
    _ = a + b
    assert a.elements_scanned == 5
    assert b.elements_scanned == 3


def test_inplace_addition_accumulates():
    total = CostCharge()
    total += CostCharge(elements_cracked=10)
    total += CostCharge(elements_cracked=7, pieces_touched=1)
    assert total.elements_cracked == 17
    assert total.pieces_touched == 1


def test_add_rejects_other_types():
    with pytest.raises(TypeError):
        _ = CostCharge() + 5


def test_copy_is_independent():
    original = CostCharge(seeks=2)
    clone = original.copy()
    clone.seeks += 1
    assert original.seeks == 2
    assert clone.seeks == 3


def test_total_elements_sums_element_level_work():
    charge = CostCharge(
        elements_scanned=1,
        elements_cracked=2,
        elements_sorted=3,
        elements_merged=4,
        elements_materialized=5,
        comparisons=100,
    )
    assert charge.total_elements() == 15


def test_for_scan_factory():
    charge = CostCharge.for_scan(1_000, materialized=10)
    assert charge.elements_scanned == 1_000
    assert charge.elements_materialized == 10


def test_for_crack_factory_counts_action():
    charge = CostCharge.for_crack(500)
    assert charge.elements_cracked == 500
    assert charge.cracks == 1
    assert charge.pieces_touched == 1


def test_for_binary_search_scales_with_log():
    small = CostCharge.for_binary_search(16)
    large = CostCharge.for_binary_search(1 << 20)
    assert small.comparisons < large.comparisons
    assert small.seeks == large.seeks == 1


def test_for_binary_search_handles_degenerate_sizes():
    assert CostCharge.for_binary_search(0).comparisons >= 1
    assert CostCharge.for_binary_search(1).comparisons >= 1
