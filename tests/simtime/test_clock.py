"""Unit tests for the virtual and wall clocks."""

import pytest

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.clock import SimClock, Stopwatch, WallClock
from repro.simtime.model import CostModel


def test_sim_clock_starts_at_zero():
    assert SimClock().now() == 0.0


def test_sim_clock_advances_by_charge():
    clock = SimClock(CostModel())
    seconds = clock.charge(CostCharge(elements_scanned=1_000_000))
    assert seconds > 0
    assert clock.now() == pytest.approx(seconds)


def test_sim_clock_accumulates_total_charge():
    clock = SimClock()
    clock.charge(CostCharge(elements_scanned=10))
    clock.charge(CostCharge(elements_scanned=5, cracks=1))
    assert clock.total_charge.elements_scanned == 15
    assert clock.total_charge.cracks == 1


def test_sim_clock_sleep_moves_time_without_charges():
    clock = SimClock()
    clock.sleep(2.5)
    assert clock.now() == pytest.approx(2.5)
    assert clock.total_charge.is_zero()


def test_sim_clock_rejects_negative_sleep():
    with pytest.raises(ConfigError):
        SimClock().sleep(-1.0)


def test_wall_clock_progresses_on_its_own():
    clock = WallClock()
    first = clock.now()
    second = clock.now()
    assert second >= first


def test_wall_clock_charge_returns_zero_but_tallies():
    clock = WallClock()
    assert clock.charge(CostCharge(elements_scanned=7)) == 0.0
    assert clock.total_charge.elements_scanned == 7


def test_stopwatch_measures_virtual_time():
    clock = SimClock()
    with Stopwatch(clock) as watch:
        clock.sleep(1.25)
    assert watch.elapsed == pytest.approx(1.25)


def test_stopwatch_requires_start():
    with pytest.raises(ConfigError):
        Stopwatch(SimClock()).stop()
