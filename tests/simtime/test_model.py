"""Unit tests for the cost model and projection scaling."""

import math

import pytest

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.model import CostModel, projection_scale


def test_scan_pricing_matches_constants():
    model = CostModel()
    seconds = model.seconds(CostCharge(elements_scanned=1_000_000))
    expected = 1_000_000 * model.constants.scan_ns_per_element / 1e9
    assert seconds == pytest.approx(expected)


def test_sort_pricing_uses_n_log_n():
    model = CostModel()
    n = 1 << 20
    seconds = model.seconds(CostCharge(elements_sorted=n))
    expected = (
        model.constants.sort_ns_per_element_log * n * math.log2(n) / 1e9
    )
    assert seconds == pytest.approx(expected)


def test_scale_projects_element_counts_linearly():
    base = CostModel(scale=1.0)
    projected = CostModel(scale=100.0)
    charge = CostCharge(elements_scanned=10_000)
    assert projected.seconds(charge) == pytest.approx(
        100.0 * base.seconds(charge)
    )


def test_scale_projects_sort_superlinearly():
    base = CostModel(scale=1.0)
    projected = CostModel(scale=100.0)
    charge = CostCharge(elements_sorted=10_000)
    # N log N: 100x the elements must cost more than 100x the time.
    assert projected.seconds(charge) > 100.0 * base.seconds(charge)


def test_comparisons_are_not_scaled():
    base = CostModel(scale=1.0)
    projected = CostModel(scale=100.0)
    charge = CostCharge(comparisons=50, seeks=2, queries=1)
    assert projected.seconds(charge) == pytest.approx(base.seconds(charge))


def test_zero_charge_costs_nothing():
    assert CostModel().seconds(CostCharge()) == 0.0


def test_invalid_scale_rejected():
    with pytest.raises(ConfigError):
        CostModel(scale=0.0)
    with pytest.raises(ConfigError):
        CostModel(scale=-2.0)


def test_projection_scale_ratio():
    assert projection_scale(1_000_000, 100_000_000) == pytest.approx(100.0)


def test_projection_scale_rejects_nonpositive():
    with pytest.raises(ConfigError):
        projection_scale(0, 100)
    with pytest.raises(ConfigError):
        projection_scale(100, -1)


def test_indexed_query_beats_scan_at_any_size():
    model = CostModel()
    for n in (10_000, 1_000_000, 100_000_000):
        assert model.indexed_query_seconds(n) < model.scan_seconds(n)


def test_crack_estimate_is_linear_in_piece():
    model = CostModel()
    small = model.crack_seconds(1_000)
    large = model.crack_seconds(100_000)
    # Linear term dominates; overheads add a constant.
    assert large > 50 * small / 2


def test_with_scale_returns_new_model():
    model = CostModel()
    scaled = model.with_scale(10.0)
    assert scaled.scale == 10.0
    assert model.scale == 1.0
    assert scaled.constants is model.constants
