"""Projection soundness: reduced-scale runs predict paper-scale runs.

DESIGN.md §2 claims that cracking's piece dynamics on uniform data are
scale-invariant in relative terms, so running the real algorithms at a
reduced size while multiplying element counts by ``N_paper/N_actual``
projects the paper's numbers faithfully.  These tests verify the claim
empirically: the *same* experiment at two different physical scales
must produce near-identical projected timings.
"""

import pytest

from repro.simtime.clock import SimClock
from repro.simtime.model import CostModel, projection_scale
from repro.storage.database import Database
from repro.storage.loader import build_paper_table
from repro.storage.catalog import ColumnRef
from repro.workload.generators import UniformRangeGenerator

PAPER_ROWS = 100_000_000


def _projected_run(rows: int, strategy: str, queries: int, idle_actions: int = 0):
    model = CostModel(scale=projection_scale(rows, PAPER_ROWS))
    db = Database(clock=SimClock(model))
    db.add_table(build_paper_table(rows=rows, columns=1, seed=31))
    session = db.session(strategy)
    generator = UniformRangeGenerator(
        ColumnRef("R", "A1"), 1, PAPER_ROWS, 0.01, seed=17
    )
    if idle_actions:
        session.run_query(generator.next_query())
        session.idle(actions=idle_actions)
    for query in generator.queries(queries):
        session.run_query(query)
    return session.report.total_response_s


def test_scan_projection_is_scale_free():
    small = _projected_run(5_000, "scan", queries=20)
    large = _projected_run(50_000, "scan", queries=20)
    assert small == pytest.approx(large, rel=0.01)


def test_cracking_projection_is_scale_free():
    """Total projected cracking time agrees across physical scales.

    Identical query streams crack identical *relative* piece
    structures on uniform data; only sampling noise of the data
    distribution differs, so we allow a modest tolerance.
    """
    small = _projected_run(10_000, "adaptive", queries=60)
    large = _projected_run(80_000, "adaptive", queries=60)
    assert small == pytest.approx(large, rel=0.10)


def test_holistic_projection_is_scale_free():
    small = _projected_run(10_000, "holistic", queries=60, idle_actions=50)
    large = _projected_run(80_000, "holistic", queries=60, idle_actions=50)
    assert small == pytest.approx(large, rel=0.15)


def test_offline_projection_is_exact():
    """Sort costs project deterministically (no data dependence)."""
    small_model = CostModel(scale=projection_scale(10_000, PAPER_ROWS))
    large_model = CostModel(scale=projection_scale(80_000, PAPER_ROWS))
    assert small_model.sort_seconds(10_000) == pytest.approx(
        large_model.sort_seconds(80_000), rel=1e-9
    )


def test_full_index_probes_project_exactly():
    """Probe depth is priced at the projected index size, so two
    physical scales charge identical probe times."""
    from repro.offline.fullindex import FullIndex
    from repro.storage.loader import generate_uniform_column

    def probe_cost(rows: int) -> float:
        model = CostModel(scale=projection_scale(rows, PAPER_ROWS))
        clock = SimClock(model)
        index = FullIndex(
            generate_uniform_column("A", rows=rows, seed=1), clock
        )
        index.build()
        t0 = clock.now()
        index.select_range(1e7, 2e7)
        return clock.now() - t0

    assert probe_cost(10_000) == pytest.approx(
        probe_cost(80_000), rel=1e-9
    )
