"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make non-test helpers under tests/ importable as e.g.
# ``from util.oracle import NaivePending`` without packaging tests/.
_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

from repro.config import TINY
from repro.simtime.clock import SimClock
from repro.simtime.model import CostModel
from repro.storage.catalog import ColumnRef
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.loader import build_paper_table, generate_uniform_column


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_column() -> Column:
    """10k uniform ints in the paper's domain, fixed seed."""
    return generate_uniform_column("A1", rows=10_000, seed=7)


@pytest.fixture
def tiny_column() -> Column:
    """100 values, convenient for exhaustive checks."""
    return generate_uniform_column("A1", rows=100, low=1, high=1_000, seed=3)


@pytest.fixture
def sim_clock() -> SimClock:
    return SimClock(CostModel())


@pytest.fixture
def tiny_db() -> Database:
    """A database with R(A1..A3) at 10k rows on a projected SimClock."""
    db = Database(clock=SimClock(TINY.cost_model()))
    db.add_table(build_paper_table(rows=10_000, columns=3, seed=42))
    return db


@pytest.fixture
def a1() -> ColumnRef:
    return ColumnRef("R", "A1")


def ground_truth_count(column: Column, low: float, high: float) -> int:
    """Reference result count for a range select."""
    values = column.values
    return int(np.count_nonzero((values >= low) & (values < high)))
