"""Unit tests for stochastic cracking variants."""

import numpy as np
import pytest

from repro.cracking.stochastic import StochasticCrackerIndex
from repro.errors import ConfigError
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.workload.generators import SequentialRangeGenerator

from tests.conftest import ground_truth_count


@pytest.mark.parametrize("variant", ["ddc", "ddr", "mdd1r"])
def test_variants_answer_correctly(variant, small_column, rng):
    index = StochasticCrackerIndex(
        small_column,
        variant=variant,
        seed=5,
        stop_piece_size=500,
        clock=SimClock(),
    )
    for _ in range(40):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 1e7))
        result = index.select_range(low, high)
        assert result.count == ground_truth_count(
            small_column, low, high
        )
    index.check_invariants()


def test_unknown_variant_rejected(small_column):
    with pytest.raises(ConfigError, match="unknown stochastic variant"):
        StochasticCrackerIndex(small_column, variant="bogus")


def test_bad_stop_piece_size_rejected(small_column):
    with pytest.raises(ConfigError):
        StochasticCrackerIndex(small_column, stop_piece_size=1)


def test_ddc_shrinks_touched_pieces(small_column):
    index = StochasticCrackerIndex(
        small_column,
        variant="ddc",
        seed=5,
        stop_piece_size=1_000,
        clock=SimClock(),
    )
    index.select_range(50_000_000, 51_000_000)
    # Recursion keeps halving until the touched pieces are small.
    touched = index.piece_map.piece_for_value(50_000_000)
    assert touched.size <= 1_000 or touched.is_sorted


def test_mdd1r_does_not_crack_at_query_bounds(small_column):
    index = StochasticCrackerIndex(
        small_column,
        variant="mdd1r",
        seed=5,
        stop_piece_size=1_000,
        clock=SimClock(),
    )
    index.select_range(42_000_000.0, 43_000_000.0)
    assert not index.piece_map.has_pivot(42_000_000.0)
    assert not index.piece_map.has_pivot(43_000_000.0)
    # But it did refine somewhere.
    assert index.crack_count >= 1


def test_stochastic_beats_plain_on_sequential_sweep(small_column):
    """[10]'s headline: plain cracking degrades on sequential access."""
    from repro.cracking.index import CrackerIndex

    generator = SequentialRangeGenerator(
        ColumnRef("R", "A1"), 1, 100_000_000, selectivity=0.01
    )
    queries = [generator.next_query() for _ in range(150)]

    plain_clock = SimClock()
    plain = CrackerIndex(small_column, clock=plain_clock)
    for query in queries:
        plain.select_range(query.low, query.high)

    ddr_clock = SimClock()
    ddr = StochasticCrackerIndex(
        small_column,
        variant="ddr",
        seed=5,
        stop_piece_size=500,
        clock=ddr_clock,
    )
    for query in queries:
        ddr.select_range(query.low, query.high)

    assert ddr_clock.now() < plain_clock.now() / 2


def test_inverted_range_rejected(small_column):
    index = StochasticCrackerIndex(small_column, seed=1)
    with pytest.raises(Exception, match="inverted"):
        index.select_range(10, 5)
