"""Index-level batched selects: physical pass + accounting replay."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.engine import crack_in_three, crack_spans_batch
from repro.cracking.index import CrackerIndex
from repro.errors import CrackerError, QueryError
from repro.simtime.clock import SimClock
from repro.storage.loader import generate_uniform_column


def _pair(track_rowids: bool = False, rows: int = 1500, seed: int = 0):
    column = generate_uniform_column(
        "A1", rows=rows, low=0, high=5000, seed=seed
    )
    sequential = CrackerIndex(
        column, clock=SimClock(), track_rowids=track_rowids
    )
    batched = CrackerIndex(
        column, clock=SimClock(), track_rowids=track_rowids
    )
    return sequential, batched


def _assert_identical(sequential: CrackerIndex, batched: CrackerIndex):
    assert repr(sequential.clock.now()) == repr(batched.clock.now())
    assert sequential.clock.total_charge == batched.clock.total_charge
    assert sequential.piece_map.cuts() == batched.piece_map.cuts()
    assert sequential.piece_map.pivots() == batched.piece_map.pivots()
    assert (
        sequential.piece_map.sorted_flags()
        == batched.piece_map.sorted_flags()
    )
    assert [repr(r) for r in sequential.tape.records()] == [
        repr(r) for r in batched.tape.records()
    ]
    sequential.check_invariants()
    batched.check_invariants()


def _ranges(rng, count: int) -> list[tuple[float, float]]:
    lows = rng.uniform(-100, 5100, size=count)
    widths = rng.uniform(0, 700, size=count)
    ranges = [
        (float(low), float(low + (0 if rng.random() < 0.15 else width)))
        for low, width in zip(lows, widths)
    ]
    if count > 2:
        ranges[1] = ranges[0]  # duplicated query
    return ranges


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    rows=st.integers(0, 1500),
    track=st.booleans(),
)
def test_select_batch_replay_equals_sequential_selects(seed, rows, track):
    rng = np.random.default_rng(seed)
    sequential, batched = _pair(track, rows, seed)
    for value in rng.uniform(0, 5000, size=int(rng.integers(0, 4))):
        sequential.ensure_cut(float(value))
        batched.ensure_cut(float(value))
    if sequential.piece_count > 1 and rng.random() < 0.5:
        piece = int(rng.integers(0, sequential.piece_count))
        sequential.sort_piece_at(piece)
        batched.sort_piece_at(piece)
    from repro.simtime.charge import CostCharge

    for _ in range(3):
        ranges = _ranges(rng, int(rng.integers(1, 9)))
        # replay_query owns the session's per-query overhead charge;
        # mirror the interleaving exactly on the sequential side.
        expected = []
        for low, high in ranges:
            sequential.clock.charge(CostCharge(queries=1))
            expected.append(sequential.select_range(low, high))
        lows = np.array([r[0] for r in ranges])
        highs = np.array([r[1] for r in ranges])
        context = batched.begin_select_batch(lows, highs)
        got = [context.replay_query(low, high) for low, high in ranges]
        context.check_consistent()
        for view_a, view_b in zip(expected, got):
            assert (view_a.start, view_a.end) == (view_b.start, view_b.end)
        _assert_identical(sequential, batched)


def test_begin_select_batch_rejects_inverted_ranges():
    index, _ = _pair()
    with pytest.raises(QueryError):
        index.begin_select_batch(np.array([10.0]), np.array([5.0]))


def test_replay_cache_reuse_and_invalidation():
    """Consecutive fully-replayed windows reuse the shadow map; a
    foreground crack between windows forces a fresh snapshot."""
    sequential, batched = _pair(rows=1200, seed=3)
    ranges = [(100.0, 900.0), (2000.0, 2600.0)]
    lows = np.array([r[0] for r in ranges])
    highs = np.array([r[1] for r in ranges])
    context = batched.begin_select_batch(lows, highs)
    for low, high in ranges:
        context.replay_query(low, high)
    assert context.is_complete
    cached_sim = context.sim
    follow_up = batched.begin_select_batch(
        np.array([3000.0]), np.array([3500.0])
    )
    assert follow_up.sim is cached_sim  # reused, no snapshot
    follow_up.replay_query(3000.0, 3500.0)
    # A foreground crack invalidates the cached shadow map.
    batched.ensure_cut(4321.0)
    third = batched.begin_select_batch(
        np.array([4500.0]), np.array([4600.0])
    )
    assert third.sim is not cached_sim
    third.replay_query(4500.0, 4600.0)
    third.check_consistent()


def test_incomplete_replay_is_not_reused():
    _, batched = _pair(rows=800, seed=5)
    context = batched.begin_select_batch(
        np.array([100.0, 300.0]), np.array([200.0, 400.0])
    )
    context.replay_query(100.0, 200.0)  # second entry never replayed
    assert not context.is_complete
    fresh = batched.begin_select_batch(
        np.array([500.0]), np.array([600.0])
    )
    assert fresh.sim is not context.sim


def test_warm_view_cache_shares_objects_and_survives_windows():
    _, batched = _pair(rows=1000, seed=9)
    lows = np.array([100.0, 100.0, 100.0])
    highs = np.array([700.0, 700.0, 700.0])
    context = batched.begin_select_batch(lows, highs)
    context.replay_query(100.0, 700.0)  # cracks: fresh bounds
    second = context.replay_query(100.0, 700.0)  # warm: both pivots
    third = context.replay_query(100.0, 700.0)
    assert third is second  # identical warm slice -> one view object
    again = batched.begin_select_batch(
        np.array([100.0]), np.array([700.0])
    )
    assert again.replay_query(100.0, 700.0) is second


def test_crack_spans_batch_matches_crack_in_three():
    rng = np.random.default_rng(11)
    base = rng.integers(0, 10_000, size=6000).astype(np.int64)
    reference = base.copy()
    subject = base.copy()
    bounds = [(0, 1500), (1500, 1600), (1600, 1601), (1601, 1601), (1601, 6000)]
    tasks = []
    expected = []
    for start, end in bounds:
        view = reference[start:end]
        low = float(rng.uniform(0, 10_000))
        high = low if rng.random() < 0.4 else low + float(rng.uniform(0, 3000))
        tasks.append((start, end, low, high))
        pos_low, pos_high, _charge = crack_in_three(
            reference, start, end, low, high
        )
        expected.append((pos_low, pos_high))
    got = crack_spans_batch(subject, tasks)
    assert got == expected
    for start, end in bounds:
        assert sorted(subject[start:end]) == sorted(reference[start:end])


def test_crack_spans_batch_validates_overlap_and_inversion():
    array = np.arange(100, dtype=np.int64)
    with pytest.raises(CrackerError):
        crack_spans_batch(array, [(0, 60, 5.0, 9.0), (50, 90, 3.0, 4.0)])
    with pytest.raises(CrackerError):
        crack_spans_batch(array, [(0, 60, 9.0, 5.0)])
