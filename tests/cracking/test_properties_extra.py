"""Additional property-based tests: merge kernels, multiset algebra,
sideways alignment and the hybrid index."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.hybrid import HybridCrackSortIndex, merge_sorted_into
from repro.cracking.sideways import SidewaysCrackerIndex
from repro.engine.operators import multiset_difference
from repro.simtime.clock import SimClock
from repro.storage.column import Column
from repro.storage.table import Table

ints = st.integers(min_value=-1_000, max_value=1_000)


@given(st.lists(ints, max_size=200), st.lists(ints, max_size=200))
@settings(max_examples=80, deadline=None)
def test_merge_sorted_into_equals_sort_of_concat(left, right):
    a = np.sort(np.array(left, dtype=np.int64))
    b = np.sort(np.array(right, dtype=np.int64))
    out = np.empty(len(a) + len(b), dtype=np.int64)
    merge_sorted_into(a, b, out)
    assert np.array_equal(out, np.sort(np.concatenate([a, b])))


@given(st.lists(ints, max_size=100), st.lists(ints, max_size=30))
@settings(max_examples=80, deadline=None)
def test_multiset_difference_is_multiset_subtraction(values, removals):
    array = np.array(values, dtype=np.int64)
    removal = np.array(removals, dtype=np.int64)
    result = multiset_difference(array, removal)
    # Counter model: subtraction floored at zero (removals beyond the
    # stored multiplicity are ignored).
    from collections import Counter

    expected = Counter(values)
    expected.subtract(Counter(removals))
    expected = Counter({k: v for k, v in expected.items() if v > 0})
    assert Counter(result.tolist()) == expected
    assert len(result) <= len(array)


@st.composite
def table_and_ranges(draw):
    n = draw(st.integers(min_value=1, max_value=150))
    heads = draw(
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=n,
            max_size=n,
        )
    )
    tails = list(range(n))  # unique payloads make alignment checkable
    ranges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=-50, max_value=550),
                st.integers(min_value=0, max_value=200),
            ),
            min_size=1,
            max_size=10,
        )
    )
    return heads, tails, ranges


@given(table_and_ranges())
@settings(max_examples=40, deadline=None)
def test_sideways_projection_matches_positional_join(data):
    heads, tails, ranges = data
    table = Table("T")
    table.add_column(Column("H", np.array(heads, dtype=np.int64)))
    table.add_column(Column("P", np.array(tails, dtype=np.int64)))
    index = SidewaysCrackerIndex(table, "H", clock=SimClock())
    base_h = np.array(heads, dtype=np.int64)
    base_p = np.array(tails, dtype=np.int64)
    for low, span in ranges:
        high = low + span
        view = index.select_project(float(low), float(high), "P")
        expected = base_p[(base_h >= low) & (base_h < high)]
        assert sorted(view.values().tolist()) == sorted(
            expected.tolist()
        )
    index.check_invariants()


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=300),
    st.lists(
        st.tuples(
            st.integers(min_value=-100, max_value=10_100),
            st.integers(min_value=0, max_value=3_000),
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=40, deadline=None)
def test_hybrid_index_matches_naive_filter(values, ranges):
    column = Column("A", np.array(values, dtype=np.int64))
    index = HybridCrackSortIndex(
        column, clock=SimClock(), chunk_rows=64
    )
    base = column.values
    for low, span in ranges:
        high = low + span
        view = index.select_range(float(low), float(high))
        expected = int(np.count_nonzero((base >= low) & (base < high)))
        assert view.count == expected
