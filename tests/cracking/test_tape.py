"""Unit tests for the cracker tape."""

from repro.cracking.piece import CrackOrigin
from repro.cracking.tape import CrackTape


def test_record_and_count():
    tape = CrackTape()
    tape.record(0.5, CrackOrigin.QUERY, 10.0, 4, 100)
    tape.record(0.7, CrackOrigin.TUNING, 20.0, 9, 50)
    tape.record(0.9, CrackOrigin.TUNING, 30.0, 2, 25)
    assert len(tape) == 3
    assert tape.count() == 3
    assert tape.count(CrackOrigin.QUERY) == 1
    assert tape.count(CrackOrigin.TUNING) == 2
    assert tape.count(CrackOrigin.MERGE) == 0


def test_last_and_since():
    tape = CrackTape()
    assert tape.last() is None
    tape.record(0.1, CrackOrigin.QUERY, 1.0, 0, 10)
    tape.record(0.2, CrackOrigin.QUERY, 2.0, 1, 10)
    assert tape.last().pivot == 2.0
    fresh = tape.since(0.15)
    assert [r.pivot for r in fresh] == [2.0]


def test_iteration_preserves_order():
    tape = CrackTape()
    for i in range(5):
        tape.record(float(i), CrackOrigin.SORT, float(i), i, 1)
    assert [r.position for r in tape] == [0, 1, 2, 3, 4]
    assert [r.position for r in tape.records()] == [0, 1, 2, 3, 4]


def test_clear_resets_counts():
    tape = CrackTape()
    tape.record(0.1, CrackOrigin.MERGE, 1.0, 0, 10)
    tape.clear()
    assert len(tape) == 0
    assert tape.count(CrackOrigin.MERGE) == 0


def test_index_integration_records_origins(small_column, sim_clock):
    from repro.cracking.index import CrackerIndex
    import numpy as np

    index = CrackerIndex(small_column, clock=sim_clock)
    index.select_range(1_000_000, 2_000_000)
    index.random_crack(np.random.default_rng(0))
    assert index.tape.count(CrackOrigin.QUERY) == 2
    assert index.tape.count(CrackOrigin.TUNING) == 1
    # Timestamps come from the shared clock, monotonically.
    stamps = [r.timestamp for r in index.tape]
    assert stamps == sorted(stamps)


def test_worker_attribution_context():
    tape = CrackTape()
    tape.record(0.1, CrackOrigin.QUERY, 1.0, 0, 10)
    with tape.attribution(3):
        assert tape.current_worker() == 3
        tape.record(0.2, CrackOrigin.TUNING, 2.0, 1, 9)
        with tape.attribution(None):
            tape.record(0.3, CrackOrigin.TUNING, 3.0, 2, 8)
    assert tape.current_worker() is None
    workers = [r.worker for r in tape.records()]
    assert workers == [None, 3, None]
    assert tape.records_by_worker() == {None: 2, 3: 1}


def test_worker_repr_only_when_attributed():
    tape = CrackTape()
    plain = tape.record(0.1, CrackOrigin.QUERY, 1.0, 0, 10)
    assert "worker" not in repr(plain)
    attributed = tape.record(0.2, CrackOrigin.TUNING, 2.0, 1, 9, worker=2)
    assert "worker=2" in repr(attributed)


def test_ring_buffer_capacity_keeps_newest():
    tape = CrackTape(capacity=3)
    for i in range(7):
        tape.record(float(i), CrackOrigin.QUERY, float(i), i, 10)
    assert len(tape) == 3
    assert [r.position for r in tape.records()] == [4, 5, 6]
    # Counters stay exact despite the drop.
    assert tape.count() == 7
    assert tape.count(CrackOrigin.QUERY) == 7
    assert tape.last().position == 6


def test_sampling_mode_keeps_every_kth_record():
    tape = CrackTape(sample_every=3)
    returned = [
        tape.record(float(i), CrackOrigin.TUNING, float(i), i, 10)
        for i in range(7)
    ]
    # Records 0, 3 and 6 are retained; the rest are sampled out.
    assert [r.position for r in tape.records()] == [0, 3, 6]
    assert [r.position if r else None for r in returned] == [
        0, None, None, 3, None, None, 6,
    ]
    assert len(tape) == 3
    assert tape.count() == 7
    assert tape.count(CrackOrigin.TUNING) == 7


def test_default_tape_retains_everything():
    tape = CrackTape()
    for i in range(5):
        tape.record(float(i), CrackOrigin.QUERY, float(i), i, 10)
    assert len(tape) == tape.count() == 5


def test_log_is_equivalent_to_record():
    tape = CrackTape()
    raw = tape.log(0.5, CrackOrigin.QUERY, 10.0, 4, 100)
    assert raw == (0.5, CrackOrigin.QUERY, 10.0, 4, 100, None)
    assert tape.count(CrackOrigin.QUERY) == 1
    assert tape.records()[0].pivot == 10.0


def test_invalid_tape_config_rejected():
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        CrackTape(capacity=0)
    with pytest.raises(ConfigError):
        CrackTape(sample_every=0)


def test_stall_counters_per_worker_and_total():
    tape = CrackTape()
    assert tape.stall_count() == 0
    tape.note_stall(1)
    tape.note_stall(1)
    with tape.attribution(2):
        tape.note_stall()  # falls back to the thread's attribution
    assert tape.stall_count(1) == 2
    assert tape.stall_count(2) == 1
    assert tape.stall_count() == 3
    tape.clear()
    assert tape.stall_count() == 0
