"""Unit tests for merging pending updates into cracker indexes."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.cracking.updates import (
    MaintainedCrackerIndex,
    merge_deletes,
    merge_inserts,
)
from repro.errors import CrackerError
from repro.simtime.clock import SimClock
from repro.storage.dtypes import INT64
from repro.storage.updates import PendingUpdates

from tests.conftest import ground_truth_count


def test_merge_inserts_lands_in_right_pieces(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    index.select_range(30_000_000, 60_000_000)
    fresh = np.array(
        [10, 35_000_000, 35_000_001, 99_999_999], dtype=np.int64
    )
    inserted = merge_inserts(index, fresh)
    assert inserted == 4
    assert index.row_count == small_column.row_count + 4
    index.check_invariants()  # piece bounds still hold
    view = index.select_range(35_000_000, 35_000_002)
    base_count = ground_truth_count(
        small_column, 35_000_000, 35_000_002
    )
    assert view.count == base_count + 2


def test_merge_inserts_clears_sorted_flag(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    index.select_range(30_000_000, 60_000_000)
    index.sort_piece_at(1)
    merge_inserts(index, np.array([45_000_000], dtype=np.int64))
    assert not index.piece_map.is_piece_sorted(1)
    index.check_invariants()


def test_merge_inserts_rejects_rowid_tracking(small_column):
    index = CrackerIndex(
        small_column, clock=SimClock(), track_rowids=True
    )
    with pytest.raises(CrackerError, match="row-id"):
        merge_inserts(index, np.array([1], dtype=np.int64))


def test_merge_deletes_removes_single_occurrences(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    index.select_range(30_000_000, 60_000_000)
    victim = int(small_column.values[0])
    before = index.select_range(victim, victim + 1).count
    removed = merge_deletes(index, np.array([victim], dtype=np.int64))
    assert removed == 1
    assert index.select_range(victim, victim + 1).count == before - 1
    assert index.row_count == small_column.row_count - 1
    index.check_invariants()


def test_merge_deletes_ignores_missing_values(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    removed = merge_deletes(index, np.array([-5], dtype=np.int64))
    assert removed == 0
    assert index.row_count == small_column.row_count


def test_maintained_index_sees_pending_inserts(small_column):
    pending = PendingUpdates(INT64)
    index = MaintainedCrackerIndex(
        small_column, pending, clock=SimClock()
    )
    pending.stage_inserts([42_000_000, 42_000_001])
    view = index.select_range(42_000_000, 42_000_002)
    base = ground_truth_count(small_column, 42_000_000, 42_000_002)
    assert view.count == base + 2
    # The pending entries were consumed by the ripple merge.
    assert pending.pending_insert_count == 0


def test_maintained_index_sees_pending_deletes(small_column):
    pending = PendingUpdates(INT64)
    index = MaintainedCrackerIndex(
        small_column, pending, clock=SimClock()
    )
    victim = int(small_column.values[10])
    pending.stage_deletes([10], [victim])
    base = ground_truth_count(small_column, victim, victim + 1)
    view = index.select_range(victim, victim + 1)
    assert view.count == base - 1


def test_maintained_index_leaves_out_of_range_pending(small_column):
    pending = PendingUpdates(INT64)
    index = MaintainedCrackerIndex(
        small_column, pending, clock=SimClock()
    )
    pending.stage_inserts([99_000_000])
    index.select_range(1_000, 2_000)
    assert pending.pending_insert_count == 1


def test_maintained_index_rejects_rowids(small_column):
    pending = PendingUpdates(INT64)
    with pytest.raises(CrackerError):
        MaintainedCrackerIndex(
            small_column, pending, track_rowids=True
        )


def test_merge_charges_clock(small_column):
    clock = SimClock()
    index = CrackerIndex(small_column, clock=clock)
    index.select_range(10_000_000, 20_000_000)
    merged_before = clock.total_charge.elements_merged
    merge_inserts(index, np.array([15_000_000], dtype=np.int64))
    assert clock.total_charge.elements_merged > merged_before
