"""Equivalence of the batch/vectorized kernels with sequential cracks.

ISSUE 3 rewrote the crack kernels for throughput (selection-based
partitioning, batched classification, vectorized sorted-piece cuts).
These property tests pin the contract that made the rewrite safe:

* split positions are identical to sequential ``crack_in_two`` calls;
* every piece holds exactly the same value *multiset* (element order
  inside a piece is unspecified);
* row-id tracking stays aligned (the cracker map reconstructs the
  cracker column);
* the batched ``ensure_cuts`` produces bit-identical virtual-clock
  totals and tape contents to sequential ``ensure_cut`` calls.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.engine import (
    crack_in_three,
    crack_in_two,
    crack_in_two_batch,
    crack_multi,
)
from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin
from repro.simtime.clock import SimClock
from repro.storage.column import Column


@st.composite
def array_and_pivots(draw):
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=1_000),
            min_size=1,
            max_size=300,
        )
    )
    pivots = sorted(
        set(
            draw(
                st.lists(
                    st.integers(min_value=-5, max_value=1_005),
                    min_size=1,
                    max_size=8,
                )
            )
        )
    )
    track = draw(st.booleans())
    return values, [float(p) for p in pivots], track


def _fresh(values, track):
    array = np.asarray(values, dtype=np.int64)
    rowids = (
        np.arange(len(array), dtype=np.int64) if track else None
    )
    return array, rowids


def _piece_multisets(array, bounds):
    edges = [0, *bounds, len(array)]
    return [
        np.sort(array[a:b]).tolist()
        for a, b in zip(edges, edges[1:])
    ]


@settings(max_examples=60, deadline=None)
@given(array_and_pivots())
def test_crack_multi_matches_sequential_crack_in_two(case):
    values, pivots, track = case
    seq_array, seq_rowids = _fresh(values, track)
    seq_splits = []
    start, end = 0, len(seq_array)
    for pivot in pivots:
        split, _ = crack_in_two(seq_array, start, end, pivot, seq_rowids)
        seq_splits.append(split)
        start = split  # next pivot is larger; its band starts here
    batch_array, batch_rowids = _fresh(values, track)
    batch_splits, _ = crack_multi(
        batch_array, 0, len(batch_array), pivots, batch_rowids
    )
    assert batch_splits == seq_splits
    assert _piece_multisets(batch_array, batch_splits) == (
        _piece_multisets(seq_array, seq_splits)
    )
    if track:
        base = np.asarray(values, dtype=np.int64)
        assert np.array_equal(base[batch_rowids], batch_array)


@settings(max_examples=60, deadline=None)
@given(array_and_pivots())
def test_crack_in_two_batch_matches_sequential(case):
    values, pivots, track = case
    # Carve the array into disjoint pieces, one pivot per piece.
    array_len = len(values)
    edges = np.linspace(0, array_len, num=len(pivots) + 1, dtype=int)
    tasks = [
        (int(edges[i]), int(edges[i + 1]), pivots[i])
        for i in range(len(pivots))
    ]
    seq_array, seq_rowids = _fresh(values, track)
    seq_splits = [
        crack_in_two(seq_array, s, e, p, seq_rowids)[0]
        for s, e, p in tasks
    ]
    batch_array, batch_rowids = _fresh(values, track)
    batch_splits, charges = crack_in_two_batch(
        batch_array, tasks, batch_rowids
    )
    assert batch_splits == seq_splits
    assert len(charges) == len(tasks)
    for (s, e, _), charge in zip(tasks, charges):
        assert charge.cracks == 1
        assert charge.elements_cracked == (e - s if e > s else 0)
    for (s, e, _), split in zip(tasks, batch_splits):
        assert np.sort(batch_array[s:e]).tolist() == (
            np.sort(seq_array[s:e]).tolist()
        )
        assert np.sort(batch_array[s:split]).tolist() == (
            np.sort(seq_array[s:split]).tolist()
        )
    if track:
        base = np.asarray(values, dtype=np.int64)
        assert np.array_equal(base[batch_rowids], batch_array)


@settings(max_examples=60, deadline=None)
@given(array_and_pivots())
def test_crack_in_three_matches_two_sequential_cracks(case):
    values, pivots, track = case
    low = pivots[0]
    high = pivots[-1]
    seq_array, seq_rowids = _fresh(values, track)
    pos_low, _ = crack_in_two(seq_array, 0, len(seq_array), low, seq_rowids)
    pos_high, _ = crack_in_two(
        seq_array, pos_low, len(seq_array), high, seq_rowids
    )
    three_array, three_rowids = _fresh(values, track)
    t_low, t_high, _ = crack_in_three(
        three_array, 0, len(three_array), low, high, three_rowids
    )
    assert (t_low, t_high) == (pos_low, pos_high)
    assert _piece_multisets(three_array, [t_low, t_high]) == (
        _piece_multisets(seq_array, [pos_low, pos_high])
    )
    if track:
        base = np.asarray(values, dtype=np.int64)
        assert np.array_equal(base[three_rowids], three_array)


def _column(values):
    return Column("A1", np.asarray(values, dtype=np.int64))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=8,
        max_size=400,
    ),
    st.lists(
        st.floats(
            min_value=1, max_value=9_999, allow_nan=False, width=32
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_ensure_cuts_bit_identical_to_sequential(values, cut_values):
    """Batched single-pivot-per-piece cuts replicate sequential
    accounting exactly.

    The index is pre-cracked into coarse pieces, then every piece gets
    at most one new pivot -- the ``crack_in_two_batch`` path.
    ``ensure_cuts`` processes pieces right-to-left, so the sequential
    reference issues its ``ensure_cut`` calls in descending value
    order; positions, virtual-clock totals and tape contents
    (timestamps included) must then match bit for bit.
    """
    column = _column(values)
    seq_index = CrackerIndex(column, clock=SimClock())
    batch_index = CrackerIndex(column, clock=SimClock())
    coarse = [2_500.0, 5_000.0, 7_500.0]
    for pivot in coarse:
        seq_index.ensure_cut(pivot)
        batch_index.ensure_cut(pivot)
    # Keep at most one fresh value per piece of the pre-cracked map.
    per_piece: dict[int, float] = {}
    for v in sorted(set(float(v) for v in cut_values) - set(coarse)):
        piece = batch_index.piece_map.piece_index_for_value(v)
        per_piece.setdefault(piece, v)
    distinct = sorted(per_piece.values())
    seq_positions = {
        v: seq_index.ensure_cut(v, CrackOrigin.TUNING)
        for v in sorted(distinct, reverse=True)
    }
    batch_positions = batch_index.ensure_cuts(distinct)
    assert batch_positions == [seq_positions[v] for v in distinct]
    assert batch_index.clock.now() == seq_index.clock.now()
    assert batch_index.tape.records() == seq_index.tape.records()
    batch_index.check_invariants()
    seq_index.check_invariants()


def test_ensure_cuts_sorted_piece_bit_identical(small_column):
    seq_index = CrackerIndex(small_column, clock=SimClock())
    seq_index.sort_piece_at(0)
    batch_index = CrackerIndex(small_column, clock=SimClock())
    batch_index.sort_piece_at(0)
    cuts = [1e7, 2.5e7, 4e7, 8e7]
    seq_positions = [
        seq_index.ensure_cut(v, CrackOrigin.TUNING) for v in cuts
    ]
    batch_positions = batch_index.ensure_cuts(cuts)
    assert batch_positions == seq_positions
    assert batch_index.clock.now() == seq_index.clock.now()
    assert batch_index.tape.records() == seq_index.tape.records()
    batch_index.check_invariants()
