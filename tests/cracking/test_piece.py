"""Unit tests for piece descriptors."""

import math

from repro.cracking.piece import CrackOrigin, Piece


def test_piece_size_and_emptiness():
    assert Piece(10, 25).size == 15
    assert not Piece(10, 25).is_empty
    assert Piece(10, 10).is_empty


def test_contains_value_half_open():
    piece = Piece(0, 10, low=5.0, high=15.0)
    assert piece.contains_value(5.0)
    assert piece.contains_value(14.9)
    assert not piece.contains_value(15.0)
    assert not piece.contains_value(4.9)


def test_unbounded_piece_contains_everything():
    piece = Piece(0, 10)
    assert piece.low == -math.inf
    assert piece.high == math.inf
    assert piece.contains_value(-1e18)
    assert piece.contains_value(1e18)


def test_origin_enum_values():
    assert CrackOrigin.QUERY.value == "query"
    assert CrackOrigin.TUNING.value == "tuning"
    assert CrackOrigin.MERGE.value == "merge"
    assert CrackOrigin.SORT.value == "sort"


def test_repr_mentions_sortedness():
    assert "sorted" in repr(Piece(0, 10, is_sorted=True))
    assert "sorted" not in repr(Piece(0, 10))
