"""Property-based tests (hypothesis) for the cracking core.

These pin the load-bearing invariants:

* a cracker index answers any query sequence exactly like a naive
  filter over the base column;
* the physical partitioning always matches the piece map;
* the piece map's structural invariants survive arbitrary crack
  sequences;
* interval sets behave like a set-of-points model.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.index import CrackerIndex
from repro.cracking.piecemap import PieceMap
from repro.simtime.clock import SimClock
from repro.storage.column import Column
from repro.util.intervals import IntervalSet


@st.composite
def column_and_queries(draw):
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=1_000),
            min_size=0,
            max_size=300,
        )
    )
    queries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=-50, max_value=1_050),
                st.integers(min_value=0, max_value=400),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return values, queries


@given(column_and_queries())
@settings(max_examples=60, deadline=None)
def test_cracking_select_matches_naive_filter(data):
    values, queries = data
    column = Column("A", np.array(values, dtype=np.int64))
    index = CrackerIndex(column, clock=SimClock())
    base = column.values
    for low, span in queries:
        high = low + span
        view = index.select_range(float(low), float(high))
        expected = int(np.count_nonzero((base >= low) & (base < high)))
        assert view.count == expected
        got = view.values()
        assert np.all((got >= low) & (got < high))
    index.check_invariants()
    # Cracking permutes, never loses or invents values.
    assert np.array_equal(np.sort(index.values), np.sort(base))


@given(column_and_queries())
@settings(max_examples=40, deadline=None)
def test_random_cracks_preserve_correctness(data):
    values, queries = data
    column = Column("A", np.array(values, dtype=np.int64))
    index = CrackerIndex(column, clock=SimClock())
    rng = np.random.default_rng(0)
    base = column.values
    for i, (low, span) in enumerate(queries):
        if i % 2 == 0:
            index.random_crack(rng, min_piece_size=1)
        high = low + span
        view = index.select_range(float(low), float(high))
        expected = int(np.count_nonzero((base >= low) & (base < high)))
        assert view.count == expected
    index.check_invariants()


@given(
    st.integers(min_value=0, max_value=500),
    st.lists(
        st.floats(
            min_value=0, max_value=1_000, allow_nan=False
        ),
        max_size=50,
    ),
)
@settings(max_examples=60, deadline=None)
def test_piecemap_invariants_under_value_ordered_cracks(n, pivots):
    """Cut positions proportional to pivot values keep all invariants."""
    pieces = PieceMap(n)
    for pivot in pivots:
        if pieces.has_pivot(pivot):
            continue
        piece = pieces.piece_for_value(pivot)
        # A position consistent with value order inside the piece.
        position = piece.start + piece.size // 2
        pieces.add_crack(pivot, position)
        pieces.check_invariants()
    assert pieces.piece_count == pieces.crack_count + 1
    assert sum(pieces.piece_sizes()) == n


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1_000),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=40,
    ),
    st.lists(
        st.integers(min_value=-100, max_value=1_300),
        min_size=1,
        max_size=40,
    ),
)
@settings(max_examples=80, deadline=None)
def test_interval_set_matches_point_model(intervals, probes):
    model: set[int] = set()
    iset = IntervalSet()
    for low, span in intervals:
        iset.add(float(low), float(low + span))
        model.update(range(low, low + span))
    for probe in probes:
        assert iset.contains_point(float(probe)) == (probe in model)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=20,
    ),
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=100),
    ),
)
@settings(max_examples=80, deadline=None)
def test_uncovered_parts_partition_the_query(intervals, probe):
    iset = IntervalSet()
    for low, span in intervals:
        iset.add(float(low), float(low + span))
    low, span = probe
    high = low + span
    gaps = iset.uncovered_parts(float(low), float(high))
    # Gaps are disjoint, ordered, inside the probe, and exactly cover
    # the uncovered points.
    cursor = float(low)
    for gap_low, gap_high in gaps:
        assert gap_low >= cursor
        assert gap_high > gap_low
        assert gap_high <= high
        cursor = gap_high
    gap_points = set()
    for gap_low, gap_high in gaps:
        gap_points.update(
            p
            for p in range(int(gap_low), int(np.ceil(gap_high)))
            if gap_low <= p < gap_high
        )
    for point in range(low, high):
        expected_uncovered = not iset.contains_point(float(point))
        assert (point in gap_points) == expected_uncovered
