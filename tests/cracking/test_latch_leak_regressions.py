"""Regressions for the defects the static-analysis pass surfaced.

Each test here failed against the pre-lint code: latches stranded by
an exception between acquisition and its try/finally, wall-clock reads
bypassing the audited simtime helpers, and float needles promoting
int64 stores during binary search (lossy beyond 2^53).
"""

from __future__ import annotations

import inspect
import math

import numpy as np
import pytest

import repro.cracking.concurrency as concurrency
from repro.cracking.concurrency import (
    ClientQuery,
    ConcurrentCrackScheduler,
    LatchMode,
    PieceLatchTable,
)
from repro.cracking.engine import (
    _count_below,
    _less_mask,
    crack_multi,
    default_scratch,
    split_sorted_piece,
)
from repro.cracking.index import CrackerIndex
from repro.simtime.clock import SimClock, wall_sleep
from repro.storage.column import Column
from repro.storage.updates import exact_range_cuts
from repro.util.retry import retry_call

# -- latch leaks ---------------------------------------------------------


def test_read_piece_releases_table_latch_when_lookup_raises():
    """read_piece acquires the table latch, then resolves the piece
    latch; a failure in between must not strand the table latch (it
    used to, wedging every later exclusive())."""
    table = PieceLatchTable()

    def boom(key):
        raise RuntimeError("injected lookup failure")

    table._latch = boom
    with pytest.raises(RuntimeError):
        with table.read_piece(0):
            pass  # pragma: no cover - never reached
    # Before the fix this timed out: the leaked read hold blocked the
    # table-level writer forever.
    assert table._table.acquire_write(timeout_s=0.5) is False
    table._table.release_write()


def test_scheduler_releases_grants_when_select_raises(small_column):
    """Phase 2 of the scheduler drops its piece latches in a finally;
    a select that raises (an injected fault, say) must not wedge the
    next round's acquisitions."""
    index = CrackerIndex(small_column, clock=SimClock())
    scheduler = ConcurrentCrackScheduler(index)
    index.select_range = lambda low, high: (_ for _ in ()).throw(
        RuntimeError("injected select failure")
    )
    with pytest.raises(RuntimeError):
        scheduler.run([ClientQuery("c1", 2e7, 6e7)])
    # The failed client's exclusive grants are gone: a fresh client can
    # take the same piece immediately.
    assert scheduler.latches.try_acquire("probe", 0, LatchMode.EXCLUSIVE)
    scheduler.latches.release_all("probe")


# -- wall-clock routing --------------------------------------------------


def test_concurrency_uses_the_audited_wall_helpers():
    """Deadline math goes through simtime.clock.wall_now -- the module
    must not import ``time`` at all (the determinism lint's contract)."""
    assert not hasattr(concurrency, "time")
    from repro.simtime.clock import wall_now

    assert concurrency.wall_now is wall_now


def test_retry_default_sleep_is_the_audited_helper():
    sleep_param = inspect.signature(retry_call).parameters["sleep"]
    assert sleep_param.default is wall_sleep


# -- exact int64 semantics beyond 2^53 -----------------------------------

B = 2**53  # float64 spacing becomes 2 here: odd ints are unrepresentable


def test_count_below_is_exact_beyond_2_53():
    view = np.array([B + 3], dtype=np.int64)
    # Promoted, B+3 rounds (half-to-even) to B+4 and stops counting.
    assert _count_below(view, float(B + 4), default_scratch()) == 1
    assert _count_below(view, float(B + 2), default_scratch()) == 0
    assert _count_below(view, float("nan"), default_scratch()) == 0


def test_less_mask_is_exact_beyond_2_53():
    view = np.array([B + 3, B + 5], dtype=np.int64)
    keys = np.array([float(B + 4), float(B + 4)])
    np.testing.assert_array_equal(
        _less_mask(view, keys), np.array([True, False])
    )
    # NaN keys match nothing; huge keys match everything.
    keys = np.array([float("nan"), float(2**80)])
    np.testing.assert_array_equal(
        _less_mask(view, keys), np.array([False, True])
    )


def test_split_sorted_piece_is_exact_beyond_2_53():
    array = np.array([B + 1, B + 3, B + 5], dtype=np.int64)
    split, _ = split_sorted_piece(array, 0, 3, float(B + 4))
    # First element >= B+4 is B+5 at index 2.  The promoted search saw
    # [B, B+4, B+4] and answered 1.
    assert split == 2


def test_crack_multi_is_exact_beyond_2_53():
    array = np.array([B + 5, B + 1, B + 3, B - 2], dtype=np.int64)
    splits, _ = crack_multi(array, 0, 4, [float(B + 4)])
    assert splits == [3]
    assert sorted(array[: splits[0]].tolist()) == [B - 2, B + 1, B + 3]
    assert array[splits[0]] == B + 5


def test_exact_range_cuts_beyond_2_53():
    store = np.array([B - 1, B + 1, B + 3, B + 5], dtype=np.int64)
    assert int(exact_range_cuts(store, float(B + 4))) == 3
    assert int(exact_range_cuts(store, float(B - 1))) == 0
    # NaN matches nothing, out-of-range bounds clamp to the ends.
    cuts = exact_range_cuts(
        store, np.array([float("nan"), -float(2**80), float(2**80)])
    )
    assert cuts.tolist() == [4, 0, 4]


def test_index_select_is_exact_beyond_2_53():
    """End to end: a select whose bounds straddle unrepresentable int64
    keys must count them exactly, cracking included."""
    values = np.arange(B - 8, B + 8, dtype=np.int64)
    rng = np.random.default_rng(11)
    rng.shuffle(values)
    index = CrackerIndex(
        Column("big", values), clock=SimClock(), narrow_values=False
    )
    low, high = float(B + 2), float(B + 6)  # both exactly representable
    result = index.select_range(low, high)
    # Exact oracle in integer space (a float-compare oracle would carry
    # the same promotion bug the fix removed).
    expected = sum(
        1 for v in values.tolist() if v >= math.ceil(low) and v < math.ceil(high)
    )
    assert expected == 4
    assert result.count == expected
    # The crack positions the search found must partition the data.
    again = index.select_range(low, high)
    assert again.count == expected
