"""Concurrency stress under the latch witness.

Threads hammer one cracker index through the piece-latch facade with
the witness enabled; the run must finish with zero order violations,
zero unlatched mutations, and results that match the serial oracle.
This is the dynamic half of the lock-order story -- the static
analyzer proves the graph acyclic, the witness checks the protocol the
running code actually follows.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import witness
from repro.cracking.concurrency import LatchedCrackerAccess, PieceLatchTable
from repro.cracking.index import CrackerIndex
from repro.simtime.clock import SimClock

from tests.conftest import ground_truth_count

THREADS = 4
OPS_PER_THREAD = 60


@pytest.fixture(autouse=True)
def _no_leaked_witness():
    yield
    witness.disable()


def _bounds(seed: int, i: int) -> tuple[float, float]:
    # Deterministic per-thread query stream, no shared RNG.
    a = (seed * 1_000_003 + i * 7_919) % 100_000_000
    b = (seed * 999_983 + i * 104_729) % 100_000_000
    return (min(a, b), max(a, b) + 1)


def test_latched_access_stress_has_zero_witness_violations(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    table = PieceLatchTable()
    access = LatchedCrackerAccess(index, table)
    errors: list[BaseException] = []

    def worker(seed: int) -> None:
        try:
            for i in range(OPS_PER_THREAD):
                low, high = _bounds(seed, i)
                if i % 3 == 0:
                    access.crack_value(low)
                else:
                    result = access.select_range(low, high)
                    assert result.count == ground_truth_count(
                        small_column, low, high
                    )
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    with witness.enabled() as w:
        witness.arm(index, table)
        threads = [
            threading.Thread(target=worker, args=(seed,), name=f"stress-{seed}")
            for seed in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert errors == []
    assert w.violations == [], [v.detail for v in w.violations]
    # The run exercised the protocol, it did not just idle.
    assert w.acquires == w.releases > 0
    assert w.mutation_checks > 0


def test_exclusive_rebuild_races_readers_cleanly(small_column):
    """A whole-table exclusive (rebuild) interleaved with latched reads
    must respect the table-before-piece order throughout."""
    index = CrackerIndex(small_column, clock=SimClock())
    table = PieceLatchTable()
    access = LatchedCrackerAccess(index, table)
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            i = 0
            while not stop.is_set():
                low, high = _bounds(17, i)
                access.select_range(low, high)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    with witness.enabled() as w:
        witness.arm(index, table)
        threads = [
            threading.Thread(target=reader, name=f"reader-{n}")
            for n in range(2)
        ]
        for t in threads:
            t.start()
        for _ in range(5):
            with table.exclusive():
                index.rebuild()
        stop.set()
        for t in threads:
            t.join()

    assert errors == []
    assert w.violations == [], [v.detail for v in w.violations]
