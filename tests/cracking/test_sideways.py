"""Unit tests for sideways cracking (multi-attribute queries)."""

import numpy as np
import pytest

from repro.cracking.sideways import SidewaysCrackerIndex
from repro.errors import CrackerError, QueryError
from repro.simtime.clock import SimClock
from repro.storage.loader import build_paper_table


@pytest.fixture
def table():
    return build_paper_table(rows=5_000, columns=3, seed=21)


@pytest.fixture
def index(table) -> SidewaysCrackerIndex:
    return SidewaysCrackerIndex(table, "A1", clock=SimClock())


def _expected_projection(table, low, high, tail):
    head = table.column("A1").values
    mask = (head >= low) & (head < high)
    return np.sort(table.column(tail).values[mask])


def test_select_project_matches_positional_join(index, table):
    low, high = 20_000_000, 60_000_000
    view = index.select_project(low, high, "A2")
    got = np.sort(view.values())
    assert np.array_equal(got, _expected_projection(table, low, high, "A2"))
    index.check_invariants()


def test_head_view_matches_predicate(index, table):
    low, high = 20_000_000, 60_000_000
    view = index.select_head(low, high, "A2")
    values = view.values()
    assert np.all((values >= low) & (values < high))


def test_repeated_queries_stay_correct(index, table, rng):
    for _ in range(30):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 2e7))
        view = index.select_project(low, high, "A2")
        expected = _expected_projection(table, low, high, "A2")
        assert np.array_equal(np.sort(view.values()), expected)
    index.check_invariants()


def test_maps_are_per_tail_and_lazy(index):
    assert index.map_count == 0
    index.select_project(1e6, 2e6, "A2")
    assert index.map_count == 1
    index.select_project(1e6, 2e6, "A3")
    assert index.map_count == 2
    index.select_project(3e6, 4e6, "A2")  # reuses the A2 map
    assert index.map_count == 2


def test_maps_refine_independently(index):
    index.select_project(1e6, 2e6, "A2")
    a2_cracks = index.map_for("A2").pieces.crack_count
    index.select_project(1e6, 2e6, "A3")
    # The A2 map did not change when A3's map was cracked.
    assert index.map_for("A2").pieces.crack_count == a2_cracks


def test_map_creation_charged_once(table):
    clock = SimClock()
    index = SidewaysCrackerIndex(table, "A1", clock=clock)
    index.select_project(1e6, 2e6, "A2")
    first = clock.total_charge.elements_materialized
    assert first == 2 * table.row_count
    index.select_project(3e6, 4e6, "A2")
    assert clock.total_charge.elements_materialized == first


def test_tail_equal_to_head_rejected(index):
    with pytest.raises(CrackerError, match="different"):
        index.select_project(0, 1, "A1")


def test_inverted_range_rejected(index):
    with pytest.raises(QueryError):
        index.select_project(10, 5, "A2")


def test_repeated_bounds_do_not_recrack(index):
    index.select_project(1e7, 2e7, "A2")
    cracks = index.map_for("A2").pieces.crack_count
    index.select_project(1e7, 2e7, "A2")
    assert index.map_for("A2").pieces.crack_count == cracks
