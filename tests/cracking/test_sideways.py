"""Unit tests for sideways cracking (multi-attribute queries)."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.cracking.sideways import SidewaysCrackerIndex
from repro.errors import CrackerError, QueryError
from repro.simtime.clock import SimClock
from repro.storage.loader import build_paper_table


@pytest.fixture
def table():
    return build_paper_table(rows=5_000, columns=3, seed=21)


@pytest.fixture
def index(table) -> SidewaysCrackerIndex:
    return SidewaysCrackerIndex(table, "A1", clock=SimClock())


def _expected_projection(table, low, high, tail):
    head = table.column("A1").values
    mask = (head >= low) & (head < high)
    return np.sort(table.column(tail).values[mask])


def test_select_project_matches_positional_join(index, table):
    low, high = 20_000_000, 60_000_000
    view = index.select_project(low, high, "A2")
    got = np.sort(view.values())
    assert np.array_equal(got, _expected_projection(table, low, high, "A2"))
    index.check_invariants()


def test_head_view_matches_predicate(index, table):
    low, high = 20_000_000, 60_000_000
    view = index.select_head(low, high, "A2")
    values = view.values()
    assert np.all((values >= low) & (values < high))


def test_repeated_queries_stay_correct(index, table, rng):
    for _ in range(30):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 2e7))
        view = index.select_project(low, high, "A2")
        expected = _expected_projection(table, low, high, "A2")
        assert np.array_equal(np.sort(view.values()), expected)
    index.check_invariants()


def test_maps_are_per_tail_and_lazy(index):
    assert index.map_count == 0
    index.select_project(1e6, 2e6, "A2")
    assert index.map_count == 1
    index.select_project(1e6, 2e6, "A3")
    assert index.map_count == 2
    index.select_project(3e6, 4e6, "A2")  # reuses the A2 map
    assert index.map_count == 2


def test_maps_refine_independently(index):
    index.select_project(1e6, 2e6, "A2")
    a2_cracks = index.map_for("A2").pieces.crack_count
    index.select_project(1e6, 2e6, "A3")
    # The A2 map did not change when A3's map was cracked.
    assert index.map_for("A2").pieces.crack_count == a2_cracks


def test_map_creation_charged_once(table):
    clock = SimClock()
    index = SidewaysCrackerIndex(table, "A1", clock=clock)
    index.select_project(1e6, 2e6, "A2")
    first = clock.total_charge.elements_materialized
    assert first == 2 * table.row_count
    index.select_project(3e6, 4e6, "A2")
    assert clock.total_charge.elements_materialized == first


def test_tail_equal_to_head_rejected(index):
    with pytest.raises(CrackerError, match="different"):
        index.select_project(0, 1, "A1")


def test_inverted_range_rejected(index):
    with pytest.raises(QueryError):
        index.select_project(10, 5, "A2")


def test_repeated_bounds_do_not_recrack(index):
    index.select_project(1e7, 2e7, "A2")
    cracks = index.map_for("A2").pieces.crack_count
    index.select_project(1e7, 2e7, "A2")
    assert index.map_for("A2").pieces.crack_count == cracks


def test_randomized_sequences_keep_invariants(index, table, rng):
    """Long mixed-tail select_project runs: every result exact, piece
    maps structurally sound at checkpoints along the way."""
    tails = ("A2", "A3")
    for i in range(60):
        low = float(rng.uniform(1, 9.5e7))
        high = low + float(rng.uniform(0, 1.5e7))
        tail = tails[int(rng.integers(0, len(tails)))]
        view = index.select_project(low, high, tail)
        expected = _expected_projection(table, low, high, tail)
        assert np.array_equal(np.sort(view.values()), expected)
        if i % 10 == 9:
            index.check_invariants()
    index.check_invariants()


def test_map_cracks_match_standalone_cracker(table, rng):
    """Each (head, tail) map refines its head copy exactly like an
    independent single-column CrackerIndex fed the same bound
    subsequence -- same pivots, same cut positions, head multiset
    preserved."""
    index = SidewaysCrackerIndex(table, "A1", clock=SimClock())
    standalones = {
        tail: CrackerIndex(
            table.column("A1"), clock=SimClock(), narrow_values=False
        )
        for tail in ("A2", "A3")
    }
    for _ in range(25):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(1e5, 2e7))
        tail = "A2" if rng.random() < 0.5 else "A3"
        index.select_project(low, high, tail)
        standalones[tail].select_range(low, high)
    base = np.sort(table.column("A1").values)
    for tail, standalone in standalones.items():
        pair = index.map_for(tail)
        assert pair.pieces.pivots() == standalone.piece_map.pivots()
        assert pair.pieces.cuts() == standalone.piece_map.cuts()
        # Cut positions are order-independent: cut(v) == #values < v.
        for pivot, cut in zip(pair.pieces.pivots(), pair.pieces.cuts()):
            assert cut == int(np.searchsorted(base, pivot, side="left"))
        assert np.array_equal(np.sort(pair.head), base)
