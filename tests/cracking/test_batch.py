"""Unit tests for batched multi-pivot cracking (paper §3, "in one go")."""

import numpy as np
import pytest

from repro.cracking.engine import crack_multi
from repro.cracking.index import CrackerIndex
from repro.errors import CrackerError
from repro.simtime.clock import SimClock


def _values(n: int = 2_000, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 10_000, n).astype(
        np.int64
    )


def test_crack_multi_partitions_every_band():
    array = _values()
    pivots = [2_000.0, 5_000.0, 8_000.0]
    splits, charge = crack_multi(array, 0, len(array), pivots)
    assert len(splits) == 3
    bounds = [0, *splits, len(array)]
    lows = [-np.inf, *pivots]
    highs = [*pivots, np.inf]
    for start, end, low, high in zip(bounds, bounds[1:], lows, highs):
        chunk = array[start:end]
        if len(chunk):
            assert chunk.min() >= low
            assert chunk.max() < high
    assert charge.cracks == 3
    assert charge.elements_cracked == 2 * len(array)


def test_crack_multi_matches_sequential_split_positions():
    pivots = [1_000.0, 4_000.0, 9_000.0]
    batch = _values(seed=3)
    splits, _ = crack_multi(batch, 0, len(batch), pivots)
    reference = np.sort(_values(seed=3))
    expected = [
        int(np.searchsorted(reference, p, side="left")) for p in pivots
    ]
    assert splits == expected


def test_crack_multi_preserves_multiset():
    array = _values(seed=5)
    expected = np.sort(array.copy())
    crack_multi(array, 100, 1_500, [3_000.0, 6_000.0])
    assert np.array_equal(np.sort(array), expected)


def test_crack_multi_with_rowids_stays_aligned():
    array = _values(seed=7)
    base = array.copy()
    rowids = np.arange(len(array), dtype=np.int64)
    crack_multi(array, 0, len(array), [2_500.0, 7_500.0], rowids)
    assert np.array_equal(base[rowids], array)


def test_crack_multi_validates_pivot_order():
    array = _values()
    with pytest.raises(CrackerError, match="strictly increasing"):
        crack_multi(array, 0, len(array), [5.0, 5.0])
    with pytest.raises(CrackerError, match="strictly increasing"):
        crack_multi(array, 0, len(array), [9.0, 5.0])


def test_crack_multi_empty_inputs():
    array = _values()
    splits, charge = crack_multi(array, 0, len(array), [])
    assert splits == []
    assert charge.is_zero()
    splits, _ = crack_multi(array, 10, 10, [5.0])
    assert splits == [10]


def test_ensure_cuts_equivalent_to_sequential(small_column):
    pivots = [5e6, 2e7, 3.3e7, 6e7, 9e7]
    batch_index = CrackerIndex(small_column, clock=SimClock())
    batch_positions = batch_index.ensure_cuts(list(pivots))
    sequential_index = CrackerIndex(small_column, clock=SimClock())
    sequential_positions = [
        sequential_index.ensure_cut(p) for p in pivots
    ]
    assert batch_positions == sequential_positions
    batch_index.check_invariants()


def test_ensure_cuts_is_cheaper_than_sequential(small_column):
    pivots = [float(p) for p in range(5_000_000, 100_000_000, 5_000_000)]
    batch_clock = SimClock()
    CrackerIndex(small_column, clock=batch_clock).ensure_cuts(
        list(pivots)
    )
    seq_clock = SimClock()
    seq_index = CrackerIndex(small_column, clock=seq_clock)
    for pivot in pivots:
        seq_index.ensure_cut(pivot)
    assert batch_clock.now() < seq_clock.now() / 2


def test_ensure_cuts_handles_existing_and_duplicate_pivots(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    index.ensure_cut(5e7)
    positions = index.ensure_cuts([5e7, 2e7, 2e7, 8e7])
    assert positions[0] == index.piece_map.position_of_pivot(5e7)
    assert positions[1] == positions[2]
    index.check_invariants()


def test_ensure_cuts_on_sorted_piece_uses_binary_search(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    index.sort_piece_at(0)
    cracked_before = index.clock.total_charge.elements_cracked
    index.ensure_cuts([1e7, 4e7, 7e7])
    # Sorted piece: positional splits, zero element movement.
    assert (
        index.clock.total_charge.elements_cracked == cracked_before
    )
    index.check_invariants()


def test_tuner_perform_batch(small_column):
    from repro.holistic.tuner import AuxiliaryTuner

    index = CrackerIndex(small_column, clock=SimClock())
    tuner = AuxiliaryTuner(seed=2)
    effective = tuner.perform_batch(index, 50)
    assert effective > 40  # a few random collisions allowed
    assert index.crack_count == effective
    index.check_invariants()


def test_scheduler_batched_spreads_budget():
    from repro.holistic.policies import RoundRobinPolicy
    from repro.holistic.ranking import ColumnRanking
    from repro.holistic.scheduler import IdleScheduler
    from repro.holistic.tuner import AuxiliaryTuner
    from repro.storage.catalog import ColumnRef
    from repro.storage.loader import generate_uniform_column

    clock = SimClock()
    ranking = ColumnRanking(cache_target_elements=10)
    for i in range(1, 4):
        column = generate_uniform_column(f"A{i}", rows=5_000, seed=i)
        ranking.register(
            ColumnRef("R", f"A{i}"),
            CrackerIndex(column, clock=clock),
        )
    scheduler = IdleScheduler(
        clock, ranking, RoundRobinPolicy(), AuxiliaryTuner(seed=4)
    )
    report = scheduler.run_actions_batched(30)
    assert report.actions_attempted == 30
    assert len(report.per_column) == 3
    assert report.actions_effective > 25


def test_holistic_batch_tuning_flag(tiny_db):
    session = tiny_db.session("holistic", batch_tuning=True)
    record = session.idle(actions=60)
    assert record.actions_done > 50
    result = session.select("R", "A1", 1e7, 2e7)
    from tests.conftest import ground_truth_count

    assert result.count == ground_truth_count(
        tiny_db.column("R", "A1"), 1e7, 2e7
    )
