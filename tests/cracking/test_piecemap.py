"""Unit tests for the piece map."""

import math

import pytest

from repro.cracking.piecemap import PieceMap
from repro.errors import CrackerError


def test_fresh_map_is_one_piece():
    pieces = PieceMap(100)
    assert pieces.piece_count == 1
    assert pieces.crack_count == 0
    piece = pieces.piece_at_index(0)
    assert (piece.start, piece.end) == (0, 100)
    assert piece.low == -math.inf
    assert piece.high == math.inf


def test_add_crack_splits_piece():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 42)
    assert pieces.piece_count == 2
    left = pieces.piece_at_index(0)
    right = pieces.piece_at_index(1)
    assert (left.start, left.end) == (0, 42)
    assert (right.start, right.end) == (42, 100)
    assert left.high == 50.0
    assert right.low == 50.0


def test_cracks_keep_value_and_position_order():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.add_crack(25.0, 20)
    pieces.add_crack(75.0, 70)
    assert pieces.pivots() == [25.0, 50.0, 75.0]
    assert pieces.cuts() == [20, 40, 70]
    pieces.check_invariants()


def test_duplicate_pivot_rejected():
    pieces = PieceMap(10)
    pieces.add_crack(5.0, 4)
    with pytest.raises(CrackerError, match="already recorded"):
        pieces.add_crack(5.0, 4)


def test_out_of_piece_position_rejected():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    # pivot 60 belongs to the right piece [40, 100); position 10 is not.
    with pytest.raises(CrackerError, match="outside"):
        pieces.add_crack(60.0, 10)


def test_piece_for_value_navigation():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    assert pieces.piece_for_value(10.0).start == 0
    assert pieces.piece_for_value(50.0).start == 40
    assert pieces.piece_for_value(99.0).start == 40


def test_has_pivot_and_position_of_pivot():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    assert pieces.has_pivot(50.0)
    assert not pieces.has_pivot(49.0)
    assert pieces.position_of_pivot(50.0) == 40
    with pytest.raises(CrackerError):
        pieces.position_of_pivot(49.0)


def test_piece_sizes_and_aggregates():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.add_crack(75.0, 70)
    assert pieces.piece_sizes() == [40, 30, 30]
    assert pieces.max_piece_size() == 40
    assert pieces.average_piece_size() == pytest.approx(100 / 3)


def test_sorted_flags_inherit_on_split():
    pieces = PieceMap(100, sorted_initially=True)
    pieces.add_crack(50.0, 40)
    assert pieces.is_piece_sorted(0)
    assert pieces.is_piece_sorted(1)
    pieces.mark_unsorted(1)
    assert not pieces.is_piece_sorted(1)
    pieces.mark_sorted(1)
    assert pieces.is_piece_sorted(1)


def test_largest_unsorted_piece_skips_sorted():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.mark_sorted(1)  # the 60-row piece is sorted
    piece = pieces.largest_unsorted_piece()
    assert piece is not None
    assert piece.size == 40


def test_apply_deltas_shifts_cuts():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.add_crack(75.0, 70)
    pieces.apply_deltas([5, 0, -3])
    assert pieces.cuts() == [45, 75]
    assert pieces.row_count == 102
    pieces.check_invariants()


def test_apply_deltas_validates_length_and_sizes():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    with pytest.raises(CrackerError, match="deltas"):
        pieces.apply_deltas([1])
    with pytest.raises(CrackerError, match="below zero"):
        pieces.apply_deltas([-41, 0])


def test_empty_pieces_are_allowed():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.add_crack(55.0, 40)  # empty piece [40, 40)
    assert pieces.piece_sizes() == [40, 0, 60]
    pieces.check_invariants()


def test_negative_row_count_rejected():
    with pytest.raises(CrackerError):
        PieceMap(-1)


def test_empty_map_handles_queries():
    pieces = PieceMap(0)
    assert pieces.piece_count == 1
    assert pieces.piece_sizes() == [0]
    assert pieces.average_piece_size() == 0.0


def test_shift_from_moves_only_later_cuts():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.add_crack(75.0, 70)
    pieces.shift_from(50, 5)
    assert pieces.cuts() == [40, 75]
    assert pieces.row_count == 105
    pieces.check_invariants()


def test_shift_from_past_all_cuts_grows_last_piece():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.shift_from(90, 7)
    assert pieces.cuts() == [40]
    assert pieces.row_count == 107
    assert pieces.max_piece_size() == 67
    pieces.check_invariants()


def test_shift_from_on_boundary_shifts_that_cut():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 40)
    pieces.shift_from(40, 3)
    assert pieces.cuts() == [43]
    assert pieces.row_count == 103
    pieces.check_invariants()


def test_shift_from_validates_negative_outcomes():
    pieces = PieceMap(100)
    pieces.add_crack(50.0, 10)
    with pytest.raises(CrackerError, match="row count negative"):
        pieces.shift_from(0, -101)
    with pytest.raises(CrackerError, match="negative"):
        pieces.shift_from(5, -11)
    # Failed shifts must leave the map untouched.
    assert pieces.cuts() == [10]
    assert pieces.row_count == 100
    pieces.check_invariants()


def test_max_piece_size_tracks_splits_incrementally():
    pieces = PieceMap(100)
    assert pieces.max_piece_size() == 100
    pieces.add_crack(50.0, 40)
    assert pieces.max_piece_size() == 60
    pieces.add_crack(75.0, 70)
    assert pieces.max_piece_size() == 40
    pieces.add_crack(10.0, 40)  # empty split keeps the 40-row piece
    assert pieces.max_piece_size() == 40
    pieces.apply_deltas([5, 0, 0, -3])
    assert pieces.max_piece_size() == 45
    pieces.check_invariants()


def test_smallest_unsorted_index_skips_sorted_and_tiny():
    pieces = PieceMap(100)
    pieces.add_crack(30.0, 30)
    pieces.add_crack(60.0, 31)  # 1-row piece: too small to sort
    pieces.mark_sorted(0)
    assert pieces.smallest_unsorted_index() == 2
    pieces.mark_sorted(2)
    assert pieces.smallest_unsorted_index() is None
    assert pieces.smallest_unsorted_index(min_size=1) == 1
