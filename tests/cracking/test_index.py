"""Unit tests for the cracker index."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin
from repro.errors import QueryError
from repro.simtime.clock import SimClock

from tests.conftest import ground_truth_count


@pytest.fixture
def index(small_column) -> CrackerIndex:
    return CrackerIndex(small_column, clock=SimClock())


def test_select_returns_exact_range(index, small_column):
    low, high = 10_000_000, 30_000_000
    view = index.select_range(low, high)
    assert view.count == ground_truth_count(small_column, low, high)
    values = view.values()
    assert np.all((values >= low) & (values < high))
    index.check_invariants()


def test_select_refines_index(index):
    assert index.piece_count == 1
    index.select_range(10_000_000, 30_000_000)
    # Both bounds in one piece -> crack-in-three -> 3 pieces.
    assert index.piece_count == 3
    assert index.crack_count == 2


def test_repeated_query_is_cheap_and_stable(index, small_column):
    low, high = 10_000_000, 30_000_000
    first = index.select_range(low, high)
    cracks_after_first = index.crack_count
    t0 = index.clock.now()
    second = index.select_range(low, high)
    probe_cost = index.clock.now() - t0
    assert second.count == first.count
    assert index.crack_count == cracks_after_first
    # Pure piece-map lookups: orders of magnitude below a crack.
    assert probe_cost < 1e-3


def test_many_random_queries_match_ground_truth(index, small_column, rng):
    for _ in range(100):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 1e7))
        view = index.select_range(low, high)
        assert view.count == ground_truth_count(small_column, low, high)
    index.check_invariants()


def test_query_costs_decline_as_index_refines(index, rng):
    costs = []
    for _ in range(60):
        low = float(rng.uniform(1, 9.8e7))
        t0 = index.clock.now()
        index.select_range(low, low + 1e6)
        costs.append(index.clock.now() - t0)
    early = sum(costs[:10])
    late = sum(costs[-10:])
    assert late < early / 5


def test_inverted_range_rejected(index):
    with pytest.raises(QueryError, match="inverted"):
        index.select_range(100, 50)


def test_empty_range_allowed(index):
    view = index.select_range(500, 500)
    assert view.count == 0


def test_out_of_domain_ranges(index, small_column):
    assert index.select_range(-100, 0).count == 0
    assert (
        index.select_range(0, 2e8).count == small_column.row_count
    )


def test_random_crack_refines(index, rng):
    before = index.piece_count
    outcome = index.random_crack(rng)
    assert outcome is not None
    assert index.piece_count == before + 1
    tape_origins = {record.origin for record in index.tape}
    assert CrackOrigin.TUNING in tape_origins


def test_random_crack_respects_min_piece_size(index, rng):
    # Refuse to crack when every piece is at/below the floor.
    outcome = index.random_crack(
        rng, min_piece_size=index.row_count + 1
    )
    assert outcome is None


def test_crack_largest_piece_targets_biggest(index, rng):
    index.select_range(1_000_000, 2_000_000)
    sizes_before = index.piece_map.piece_sizes()
    biggest = max(sizes_before)
    index.crack_largest_piece(rng)
    sizes_after = index.piece_map.piece_sizes()
    assert max(sizes_after) < biggest or len(sizes_after) > len(
        sizes_before
    )


def test_sort_piece_at_marks_sorted(index):
    index.select_range(40_000_000, 60_000_000)
    piece = index.sort_piece_at(1)
    assert piece.is_sorted
    chunk = index.values[piece.start : piece.end]
    assert np.all(chunk[:-1] <= chunk[1:])
    index.check_invariants()


def test_select_on_sorted_piece_uses_binary_search(index):
    index.select_range(40_000_000, 60_000_000)
    index.sort_piece_at(1)
    cracked_before = index.clock.total_charge.elements_cracked
    index.select_range(45_000_000, 50_000_000)
    # No new element movement: the sorted piece splits positionally.
    assert (
        index.clock.total_charge.elements_cracked == cracked_before
    )
    index.check_invariants()


def test_rowid_tracking_reconstructs(small_column):
    index = CrackerIndex(
        small_column, clock=SimClock(), track_rowids=True
    )
    view = index.select_range(10_000_000, 30_000_000)
    positions = view.positions()
    assert positions is not None
    reconstructed = small_column.values[positions]
    assert np.array_equal(np.sort(reconstructed), np.sort(view.values()))
    index.check_invariants()


def test_copy_charged_once_on_first_touch(small_column):
    clock = SimClock()
    index = CrackerIndex(small_column, clock=clock)
    assert clock.total_charge.elements_materialized == 0
    index.select_range(1_000, 2_000)
    assert (
        clock.total_charge.elements_materialized
        == small_column.row_count
    )
    index.select_range(3_000, 4_000)
    assert (
        clock.total_charge.elements_materialized
        == small_column.row_count
    )


def test_copy_charged_eagerly_when_requested(small_column):
    clock = SimClock()
    CrackerIndex(small_column, clock=clock, copy_on_first_touch=False)
    assert (
        clock.total_charge.elements_materialized
        == small_column.row_count
    )


def test_empty_column_index(sim_clock):
    from repro.storage.column import Column

    empty = Column("E", np.array([], dtype=np.int64))
    index = CrackerIndex(empty, clock=sim_clock)
    assert index.select_range(0, 100).count == 0
    assert index.random_crack(np.random.default_rng(0)) is None


def test_remaining_cracks_estimate_monotone(index, rng):
    before = index.remaining_cracks_estimate(1_000)
    for _ in range(20):
        index.random_crack(rng)
    # Refinement reduces average piece size and piece count grows;
    # the estimate must never report "done" while pieces are huge.
    assert before > 0
    assert index.is_refined_to(index.row_count)
    assert not index.is_refined_to(1)
