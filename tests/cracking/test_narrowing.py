"""Dtype narrowing of the cracker column (hot-path memory traffic)."""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.cracking.updates import MaintainedCrackerIndex, merge_inserts
from repro.simtime.clock import SimClock
from repro.storage.column import Column
from repro.storage.updates import PendingUpdates


def _column(values, name="A1"):
    return Column(name, np.asarray(values, dtype=np.int64))


def test_int64_column_in_int32_range_is_narrowed():
    column = _column([5, 100, 2**31 - 1, 0])
    index = CrackerIndex(column)
    assert index.values.dtype == np.int32
    assert np.array_equal(index.values, column.values)


def test_out_of_range_column_keeps_int64():
    column = _column([5, 2**31, 7])
    index = CrackerIndex(column)
    assert index.values.dtype == np.int64


def test_narrowing_can_be_disabled():
    column = _column([1, 2, 3])
    index = CrackerIndex(column, narrow_values=False)
    assert index.values.dtype == np.int64


def test_narrowed_index_answers_queries_exactly(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    assert index.values.dtype == np.int32
    view = index.select_range(1e7, 3e7)
    expected = int(
        np.count_nonzero(
            (small_column.values >= 1e7) & (small_column.values < 3e7)
        )
    )
    assert view.count == expected
    index.check_invariants()


def test_narrowed_rowids_are_int32(small_column):
    index = CrackerIndex(small_column, track_rowids=True)
    assert index.rowids.dtype == np.int32
    index.select_range(2e7, 6e7)
    index.check_invariants()


def test_merge_widens_on_out_of_range_inserts():
    column = _column([10, 20, 30])
    index = CrackerIndex(column)
    assert index.values.dtype == np.int32
    merge_inserts(index, np.array([2**31 + 5], dtype=np.int64))
    assert index.values.dtype == np.int64
    assert 2**31 + 5 in index.values.tolist()
    index.check_invariants()


def test_maintained_index_narrowing_roundtrip():
    from repro.storage.dtypes import INT64

    column = _column([10, 20, 30, 40, 50])
    pending = PendingUpdates(INT64)
    index = MaintainedCrackerIndex(column, pending, clock=SimClock())
    assert index.values.dtype == np.int32
    pending.stage_inserts(np.array([25], dtype=np.int64))
    view = index.select_range(0, 100)
    assert view.count == 6
    index.check_invariants()


def test_float_columns_never_narrowed():
    column = Column("F", np.array([1.5, 2.5], dtype=np.float64))
    index = CrackerIndex(column)
    assert index.values.dtype == np.float64
