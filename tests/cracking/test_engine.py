"""Unit tests for the crack kernels."""

import numpy as np
import pytest

from repro.cracking.engine import (
    crack_in_three,
    crack_in_two,
    sort_piece,
    split_sorted_piece,
)
from repro.errors import CrackerError


def _column(seed: int = 0, n: int = 1_000) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 10_000, n).astype(
        np.int64
    )


def test_crack_in_two_partitions_correctly():
    array = _column()
    original = np.sort(array.copy())
    split, charge = crack_in_two(array, 0, len(array), 5_000)
    assert np.all(array[:split] < 5_000)
    assert np.all(array[split:] >= 5_000)
    assert np.array_equal(np.sort(array), original)
    assert charge.elements_cracked == len(array)
    assert charge.cracks == 1


def test_crack_in_two_respects_piece_bounds():
    array = _column()
    before = array.copy()
    crack_in_two(array, 100, 200, 5_000)
    assert np.array_equal(array[:100], before[:100])
    assert np.array_equal(array[200:], before[200:])


def test_crack_in_two_with_rowids_stays_aligned():
    array = _column()
    base = array.copy()
    rowids = np.arange(len(array), dtype=np.int64)
    crack_in_two(array, 0, len(array), 5_000, rowids)
    assert np.array_equal(base[rowids], array)


def test_crack_in_two_extreme_pivots():
    array = _column()
    split, _ = crack_in_two(array, 0, len(array), -1)
    assert split == 0
    split, _ = crack_in_two(array, 0, len(array), 100_000)
    assert split == len(array)


def test_crack_in_two_empty_piece():
    array = _column()
    split, charge = crack_in_two(array, 10, 10, 5_000)
    assert split == 10
    assert charge.elements_cracked == 0


def test_crack_in_two_rejects_bad_bounds():
    array = _column()
    with pytest.raises(CrackerError):
        crack_in_two(array, -1, 10, 5)
    with pytest.raises(CrackerError):
        crack_in_two(array, 10, 5, 5)
    with pytest.raises(CrackerError):
        crack_in_two(array, 0, len(array) + 1, 5)


def test_crack_in_two_rejects_misaligned_rowids():
    array = _column()
    with pytest.raises(CrackerError, match="align"):
        crack_in_two(array, 0, 10, 5, np.arange(3))


def test_crack_in_three_partitions_into_bands():
    array = _column()
    lo, hi, charge = crack_in_three(array, 0, len(array), 2_000, 8_000)
    assert np.all(array[:lo] < 2_000)
    assert np.all((array[lo:hi] >= 2_000) & (array[lo:hi] < 8_000))
    assert np.all(array[hi:] >= 8_000)
    assert charge.cracks == 2


def test_crack_in_three_with_rowids_stays_aligned():
    array = _column()
    base = array.copy()
    rowids = np.arange(len(array), dtype=np.int64)
    crack_in_three(array, 0, len(array), 2_000, 8_000, rowids)
    assert np.array_equal(base[rowids], array)


def test_crack_in_three_rejects_inverted_range():
    array = _column()
    with pytest.raises(CrackerError, match="inverted"):
        crack_in_three(array, 0, len(array), 9_000, 1_000)


def test_crack_in_three_degenerate_equal_bounds():
    array = _column()
    lo, hi, _ = crack_in_three(array, 0, len(array), 5_000, 5_000)
    assert lo == hi
    assert np.all(array[:lo] < 5_000)
    assert np.all(array[lo:] >= 5_000)


def test_sort_piece_sorts_subrange_only():
    array = _column()
    before = array.copy()
    charge = sort_piece(array, 100, 300)
    assert np.all(array[100:299] <= array[101:300])
    assert np.array_equal(array[:100], before[:100])
    assert np.array_equal(array[300:], before[300:])
    assert charge.elements_sorted == 200


def test_sort_piece_with_rowids():
    array = _column()
    base = array.copy()
    rowids = np.arange(len(array), dtype=np.int64)
    sort_piece(array, 0, len(array), rowids)
    assert np.array_equal(base[rowids], array)


def test_split_sorted_piece_binary_searches():
    array = np.arange(0, 100, dtype=np.int64)
    position, charge = split_sorted_piece(array, 0, 100, 42)
    assert position == 42
    assert charge.comparisons >= 1
    # No data movement at all.
    assert np.array_equal(array, np.arange(0, 100))
