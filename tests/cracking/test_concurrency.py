"""Unit tests for piece latching and the concurrent crack scheduler."""

import pytest

from repro.cracking.concurrency import (
    ClientQuery,
    ConcurrentCrackScheduler,
    LatchMode,
    PieceLatchManager,
)
from repro.cracking.index import CrackerIndex
from repro.simtime.clock import SimClock

from tests.conftest import ground_truth_count


def test_shared_latches_coexist():
    latches = PieceLatchManager()
    assert latches.try_acquire("a", 0, LatchMode.SHARED)
    assert latches.try_acquire("b", 0, LatchMode.SHARED)
    assert latches.holders_of(0) == {"a", "b"}
    assert latches.stats.grants == 2


def test_exclusive_excludes_everyone():
    latches = PieceLatchManager()
    assert latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)
    assert not latches.try_acquire("b", 0, LatchMode.SHARED)
    assert not latches.try_acquire("b", 0, LatchMode.EXCLUSIVE)
    assert latches.stats.conflicts == 2


def test_shared_blocks_exclusive_from_others():
    latches = PieceLatchManager()
    assert latches.try_acquire("a", 0, LatchMode.SHARED)
    assert not latches.try_acquire("b", 0, LatchMode.EXCLUSIVE)


def test_lone_shared_holder_upgrades():
    latches = PieceLatchManager()
    assert latches.try_acquire("a", 0, LatchMode.SHARED)
    assert latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)
    assert not latches.try_acquire("b", 0, LatchMode.SHARED)


def test_shared_holder_cannot_upgrade_among_peers():
    latches = PieceLatchManager()
    latches.try_acquire("a", 0, LatchMode.SHARED)
    latches.try_acquire("b", 0, LatchMode.SHARED)
    assert not latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)


def test_release_all_frees_pieces():
    latches = PieceLatchManager()
    latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)
    latches.try_acquire("a", 10, LatchMode.EXCLUSIVE)
    released = latches.release_all("a")
    assert released == 2
    assert latches.held_count() == 0
    assert latches.try_acquire("b", 0, LatchMode.EXCLUSIVE)


def test_reacquire_same_mode_is_idempotent():
    latches = PieceLatchManager()
    assert latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)
    assert latches.try_acquire("a", 0, LatchMode.EXCLUSIVE)
    assert latches.try_acquire("a", 0, LatchMode.SHARED)


def test_scheduler_runs_all_queries(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    scheduler = ConcurrentCrackScheduler(index)
    queries = [
        ClientQuery("c1", 10_000_000, 20_000_000),
        ClientQuery("c2", 30_000_000, 40_000_000),
        ClientQuery("c3", 15_000_000, 35_000_000),
        ClientQuery("c4", 70_000_000, 80_000_000),
    ]
    report = scheduler.run(queries)
    assert report.executed == 4
    for query in queries:
        assert query.result is not None
        assert query.result.count == ground_truth_count(
            small_column, query.low, query.high
        )
    index.check_invariants()


def test_scheduler_defers_conflicting_queries(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    scheduler = ConcurrentCrackScheduler(index)
    # All four queries hit the same initial (single) piece: only the
    # first proceeds in round one, the rest wait.
    queries = [
        ClientQuery(f"c{i}", 10_000_000 * i, 10_000_000 * i + 5_000_000)
        for i in range(1, 5)
    ]
    report = scheduler.run(queries)
    assert report.executed == 4
    assert report.deferrals > 0
    assert report.rounds > 1


def test_scheduler_disjoint_pieces_run_same_round(small_column):
    index = CrackerIndex(small_column, clock=SimClock())
    # Pre-crack so the queries land in different pieces.
    index.select_range(25_000_000, 50_000_000)
    index.select_range(75_000_000, 90_000_000)
    scheduler = ConcurrentCrackScheduler(index)
    queries = [
        ClientQuery("c1", 1_000_000, 2_000_000),
        ClientQuery("c2", 30_000_000, 31_000_000),
        ClientQuery("c3", 80_000_000, 81_000_000),
    ]
    report = scheduler.run(queries)
    assert report.rounds == 1
    assert report.deferrals == 0


def test_scheduler_livelock_guard(small_column):
    from repro.errors import ConcurrencyError

    index = CrackerIndex(small_column, clock=SimClock())
    scheduler = ConcurrentCrackScheduler(index)
    queries = [
        ClientQuery("c1", 10_000_000, 20_000_000),
        ClientQuery("c2", 10_000_000, 20_000_000),
    ]
    with pytest.raises(ConcurrencyError):
        scheduler.run(queries, max_rounds=0)
