"""Unit tests for the hybrid crack-sort index."""

import numpy as np
import pytest

from repro.cracking.hybrid import HybridCrackSortIndex, merge_sorted_into
from repro.errors import ConfigError, QueryError
from repro.simtime.clock import SimClock

from tests.conftest import ground_truth_count


@pytest.fixture
def hybrid(small_column) -> HybridCrackSortIndex:
    return HybridCrackSortIndex(
        small_column, clock=SimClock(), chunk_rows=1_000
    )


def test_chunking(small_column, hybrid):
    assert hybrid.chunk_count == small_column.row_count // 1_000


def test_first_select_migrates_and_answers(hybrid, small_column):
    low, high = 10_000_000, 30_000_000
    view = hybrid.select_range(low, high)
    expected = ground_truth_count(small_column, low, high)
    assert view.count == expected
    assert hybrid.final_row_count == expected
    assert hybrid.is_covered(low, high)
    # Final store is sorted.
    final = hybrid.final_values
    assert np.all(final[:-1] <= final[1:])


def test_covered_requery_does_not_grow_final(hybrid):
    low, high = 10_000_000, 30_000_000
    hybrid.select_range(low, high)
    rows_after_first = hybrid.final_row_count
    merges_after_first = hybrid.merges
    view = hybrid.select_range(low + 1_000, high - 1_000)
    assert hybrid.final_row_count == rows_after_first
    assert hybrid.merges == merges_after_first
    assert view.count > 0


def test_partial_overlap_merges_only_gaps(hybrid, small_column):
    hybrid.select_range(10_000_000, 30_000_000)
    view = hybrid.select_range(20_000_000, 40_000_000)
    assert view.count == ground_truth_count(
        small_column, 20_000_000, 40_000_000
    )
    assert hybrid.is_covered(10_000_000, 40_000_000)
    expected_total = ground_truth_count(
        small_column, 10_000_000, 40_000_000
    )
    assert hybrid.final_row_count == expected_total


def test_random_queries_match_ground_truth(hybrid, small_column, rng):
    for _ in range(50):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 1.5e7))
        view = hybrid.select_range(low, high)
        assert view.count == ground_truth_count(
            small_column, low, high
        )


def test_covered_queries_get_cheap(hybrid):
    clock = hybrid.clock
    hybrid.select_range(10_000_000, 90_000_000)
    t0 = clock.now()
    hybrid.select_range(20_000_000, 80_000_000)
    probe_cost = clock.now() - t0
    assert probe_cost < 1e-3


def test_inverted_range_rejected(hybrid):
    with pytest.raises(QueryError):
        hybrid.select_range(10, 5)


def test_bad_chunk_rows_rejected(small_column):
    with pytest.raises(ConfigError):
        HybridCrackSortIndex(small_column, chunk_rows=0)


def test_merge_sorted_into_correctness(rng):
    left = np.sort(rng.integers(0, 1_000, 500)).astype(np.int64)
    right = np.sort(rng.integers(0, 1_000, 300)).astype(np.int64)
    out = np.empty(800, dtype=np.int64)
    merge_sorted_into(left, right, out)
    assert np.array_equal(out, np.sort(np.concatenate([left, right])))


def test_merge_sorted_into_validates_size():
    with pytest.raises(QueryError):
        merge_sorted_into(
            np.array([1]), np.array([2]), np.empty(3, dtype=np.int64)
        )


def test_merge_sorted_into_empty_sides():
    left = np.array([], dtype=np.int64)
    right = np.array([1, 2], dtype=np.int64)
    out = np.empty(2, dtype=np.int64)
    merge_sorted_into(left, right, out)
    assert out.tolist() == [1, 2]
    merge_sorted_into(right, left, out)
    assert out.tolist() == [1, 2]
