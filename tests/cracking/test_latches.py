"""Unit tests for the blocking latch layer used by tuning workers."""

import threading

import pytest

from repro.cracking.concurrency import (
    LatchedCrackerAccess,
    PieceLatchTable,
    ReadWriteLatch,
)
from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin
from repro.errors import ConfigError

from tests.conftest import ground_truth_count


# -- ReadWriteLatch ------------------------------------------------------


def test_uncontended_acquisitions_do_not_stall():
    latch = ReadWriteLatch()
    assert latch.acquire_read() is False
    assert latch.acquire_read() is False  # readers share
    latch.release_read()
    latch.release_read()
    assert latch.acquire_write() is False
    latch.release_write()


def test_writer_waits_for_readers_and_reports_the_stall():
    latch = ReadWriteLatch()
    latch.acquire_read()
    outcome = []
    writer = threading.Thread(
        target=lambda: outcome.append(latch.acquire_write())
    )
    writer.start()
    # Writer must be parked until the reader leaves.
    writer.join(timeout=0.05)
    assert writer.is_alive()
    latch.release_read()
    writer.join(timeout=5)
    assert not writer.is_alive()
    assert outcome == [True]  # it had to wait -> contention stall
    latch.release_write()


def test_reader_waits_for_writer():
    latch = ReadWriteLatch()
    latch.acquire_write()
    outcome = []
    reader = threading.Thread(
        target=lambda: outcome.append(latch.acquire_read())
    )
    reader.start()
    reader.join(timeout=0.05)
    assert reader.is_alive()
    latch.release_write()
    reader.join(timeout=5)
    assert not reader.is_alive()
    assert outcome == [True]
    latch.release_read()


# -- PieceLatchTable -----------------------------------------------------


def test_granularity_buckets_positions():
    table = PieceLatchTable(granularity=100)
    assert table.key_for(0) == 0
    assert table.key_for(99) == 0
    assert table.key_for(100) == 1
    assert table.key_for(250) == 2
    with pytest.raises(ConfigError):
        PieceLatchTable(granularity=0)


def test_disjoint_buckets_do_not_conflict():
    table = PieceLatchTable()
    entered = threading.Event()
    release = threading.Event()

    def hold_key_zero():
        with table.write_pieces([0]):
            entered.set()
            release.wait(timeout=5)

    holder = threading.Thread(target=hold_key_zero)
    holder.start()
    assert entered.wait(timeout=5)
    with table.write_pieces([500]) as stalled:
        assert stalled is False  # other bucket: no conflict
    release.set()
    holder.join()
    assert table.stats.conflicts == 0
    assert table.stats.grants == 2


def test_same_bucket_conflicts_and_counts_a_stall():
    table = PieceLatchTable()
    entered = threading.Event()
    release = threading.Event()

    def hold():
        with table.write_pieces([7]):
            entered.set()
            release.wait(timeout=5)

    holder = threading.Thread(target=hold)
    holder.start()
    assert entered.wait(timeout=5)
    stalls = []

    def contender():
        with table.write_pieces([7]) as stalled:
            stalls.append(stalled)

    thread = threading.Thread(target=contender)
    thread.start()
    thread.join(timeout=0.05)
    assert thread.is_alive()  # parked behind the holder
    release.set()
    holder.join()
    thread.join(timeout=5)
    assert stalls == [True]
    assert table.stats.conflicts == 1


def test_exclusive_excludes_piece_level_traffic():
    table = PieceLatchTable()
    entered = threading.Event()
    release = threading.Event()

    def hold_exclusive():
        with table.exclusive():
            entered.set()
            release.wait(timeout=5)

    holder = threading.Thread(target=hold_exclusive)
    holder.start()
    assert entered.wait(timeout=5)
    stalls = []

    def piece_user():
        with table.write_pieces([3]) as stalled:
            stalls.append(stalled)

    thread = threading.Thread(target=piece_user)
    thread.start()
    thread.join(timeout=0.05)
    assert thread.is_alive()
    release.set()
    holder.join()
    thread.join(timeout=5)
    assert stalls == [True]


def test_multi_key_acquisition_orders_keys():
    table = PieceLatchTable()
    with table.write_pieces([9, 2, 9]) as stalled:
        assert stalled is False
    # Two distinct buckets acquired and released.
    assert table.stats.grants == 1
    assert table.stats.releases == 2


def test_read_piece_shares_with_readers():
    table = PieceLatchTable()
    with table.read_piece(1) as first:
        with table.read_piece(1) as second:
            assert first is False
            assert second is False


# -- LatchedCrackerAccess ------------------------------------------------


def test_latched_select_matches_plain_select(small_column):
    plain = CrackerIndex(small_column)
    latched_index = CrackerIndex(small_column)
    access = LatchedCrackerAccess(latched_index, PieceLatchTable())
    bounds = [(0, 2e7), (1e7, 5e7), (4.2e7, 4.21e7), (9e7, 1e8)]
    for low, high in bounds:
        expected = plain.select_range(low, high)
        got = access.select_range(low, high)
        assert got.count == expected.count
        assert got.count == ground_truth_count(small_column, low, high)
    assert latched_index.piece_map.pivots() == plain.piece_map.pivots()
    latched_index.check_invariants()


def test_latched_crack_value_contract(small_column):
    index = CrackerIndex(small_column)
    access = LatchedCrackerAccess(index, PieceLatchTable())
    assert access.crack_value(5e7, origin=CrackOrigin.TUNING) is True
    # Same value again: already a pivot -> degenerate.
    assert access.crack_value(5e7, origin=CrackOrigin.TUNING) is False
    # A huge min size: piece too small -> degenerate.
    assert (
        access.crack_value(2.5e7, min_piece_size=10**9) is False
    )
    assert index.piece_map.has_pivot(5e7)
    index.check_invariants()
