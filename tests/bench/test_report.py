"""Unit tests for report rendering."""

from repro.bench.report import (
    curve_at_ranks,
    format_seconds,
    format_series_table,
    format_table,
    log_spaced_ranks,
)


def test_format_seconds_units():
    assert format_seconds(123.4) == "123 s"
    assert format_seconds(12.34) == "12.3 s"
    assert format_seconds(0.01234) == "12.3 ms"
    assert format_seconds(0.00001234) == "12.3 us"


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_log_spaced_ranks_shape():
    ranks = log_spaced_ranks(10_000)
    assert ranks[0] == 1
    assert ranks[-1] == 10_000
    assert 10 in ranks and 100 in ranks and 1_000 in ranks
    assert ranks == sorted(set(ranks))


def test_log_spaced_ranks_small_n():
    assert log_spaced_ranks(1) == [1]
    ranks = log_spaced_ranks(7)
    assert ranks[-1] == 7


def test_curve_at_ranks_samples_one_indexed():
    curve = [float(i) for i in range(1, 101)]
    assert curve_at_ranks(curve, [1, 10, 100]) == [1.0, 10.0, 100.0]
    # Ranks beyond the curve are dropped.
    assert curve_at_ranks(curve, [1, 500]) == [1.0]


def test_format_series_table_layout():
    text = format_series_table(
        "Figure X",
        [1, 2],
        {"scan": [0.5, 1.0], "holistic": [0.1, 0.2]},
    )
    assert "Figure X" in text
    assert "scan" in text and "holistic" in text
    assert "0.5" in text
