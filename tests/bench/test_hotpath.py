"""Tests for the wall-clock hot-path microbenchmark harness."""

import json

from repro.bench.hotpath import (
    attach_baseline,
    check_regression,
    hotpath_text,
    run_hotpath,
)
from repro.bench.runner import main


def _tiny_run(**overrides):
    params = dict(rows=20_000, queries=60, seed=7, repeats=1)
    params.update(overrides)
    return run_hotpath(**params)


def test_run_hotpath_structure_and_determinism():
    first = _tiny_run()
    second = _tiny_run()
    assert first["schema"] == "hotpath-v1"
    names = set(first["scenarios"])
    assert {
        "serial_select",
        "serial_select_rowids",
        "batch_tuning",
        "worker_pool_2",
    } <= names
    for name, data in first["scenarios"].items():
        assert data["wall_s"] >= 0
        assert data["ops"] > 0
        assert data["throughput"] > 0
    # Deterministic scenarios fingerprint identically across runs.
    for name in ("serial_select", "serial_select_rowids", "batch_tuning"):
        assert (
            first["scenarios"][name]["fingerprint"]
            == second["scenarios"][name]["fingerprint"]
        ), name
    text = hotpath_text(first)
    assert "serial_select" in text


def test_check_regression_flags_slowdown_and_divergence():
    current = _tiny_run()
    committed = json.loads(json.dumps(current))  # deep copy
    assert check_regression(current, committed) == []
    slow = json.loads(json.dumps(current))
    slow["scenarios"]["serial_select"]["throughput"] = (
        current["scenarios"]["serial_select"]["throughput"] * 10
    )
    failures = check_regression(current, slow)
    assert any("regressed" in f for f in failures)
    diverged = json.loads(json.dumps(current))
    diverged["scenarios"]["batch_tuning"]["fingerprint"][
        "crack_count"
    ] = -1
    failures = check_regression(current, diverged)
    assert any("diverged" in f for f in failures)


def test_attach_baseline_computes_speedups():
    current = _tiny_run()
    baseline = json.loads(json.dumps(current))
    for data in baseline["scenarios"].values():
        data["throughput"] = data["throughput"] / 2
    attach_baseline(current, baseline)
    assert current["speedup_vs_baseline"]["serial_select"] > 1.5


def test_cli_hotpath_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main(
        [
            "hotpath",
            "--rows",
            "20000",
            "--queries",
            "50",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    document = json.loads(out.read_text())
    assert document["config"]["rows"] == 20_000
    printed = capsys.readouterr().out
    assert "Hot-path wall-clock microbenchmark" in printed


def test_cli_hotpath_check_gate(tmp_path, capsys):
    committed = tmp_path / "committed.json"
    out = tmp_path / "fresh.json"
    args = [
        "hotpath",
        "--rows",
        "20000",
        "--queries",
        "50",
        "--out",
        str(committed),
    ]
    assert main(args) == 0
    args = [
        "hotpath",
        "--rows",
        "20000",
        "--queries",
        "50",
        "--out",
        str(out),
        "--check",
        str(committed),
    ]
    assert main(args) == 0
    printed = capsys.readouterr().out
    assert "perf-smoke gate passed" in printed
