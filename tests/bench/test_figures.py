"""Acceptance tests for Figures 1 and 2 and the ablation benches."""

import pytest

from repro.bench.ablations import (
    ablation_policies,
    ablation_stochastic,
    ablation_text,
)
from repro.bench.cracking_demo import DEMO_VALUES, figure2_text
from repro.bench.timeline import figure1_text
from repro.config import TINY


def test_figure2_walkthrough_is_consistent():
    text = figure2_text()
    assert "initial column" in text
    assert "after Q1" in text
    assert "after Q2" in text
    # All original values survive the cracks.
    for value in DEMO_VALUES:
        assert f"{value:>2d}" in text


def test_figure2_custom_queries():
    text = figure2_text(queries=[(3, 9)])
    assert "after Q1" in text
    assert "after Q2" not in text


def test_figure1_timeline_covers_all_strategies():
    text = figure1_text(TINY, seed=1)
    for name in ("offline", "online", "adaptive", "holistic"):
        assert f"[{name}]" in text
    assert "queries 1-" in text


def test_figure1_holistic_reports_tuning():
    text = figure1_text(TINY, seed=1)
    holistic_part = text.split("[holistic]")[1]
    assert "auxiliary actions" in holistic_part
    assert "tuning-driven" in holistic_part


def test_figure1_offline_reports_build():
    text = figure1_text(TINY, seed=1)
    offline_part = text.split("[offline]")[1].split("[")[0]
    assert "full index" in offline_part or "built 1" in offline_part


@pytest.mark.slow
def test_ablation_stochastic_shape():
    rows = ablation_stochastic(TINY, seed=1)
    totals = {row.label: row.total_response_s for row in rows}
    # [10]'s claim: data-driven variants beat plain cracking on
    # sequential workloads.
    assert totals["ddr"] < totals["standard"]
    assert totals["ddc"] < totals["standard"]


@pytest.mark.slow
def test_ablation_policies_runs_all(tiny_db):
    rows = ablation_policies(TINY, seed=1, idle_actions=50)
    assert [r.label for r in rows] == [
        "round_robin",
        "ranked",
        "weighted_random",
    ]
    assert all(r.total_response_s > 0 for r in rows)


def test_ablation_text_renders():
    from repro.bench.ablations import AblationRow

    text = ablation_text(
        "title", [AblationRow("x", 1.5, "note")]
    )
    assert "title" in text and "1.500" in text and "note" in text
