"""Unit tests for CSV export of bench results."""

import csv

import pytest

from repro.bench.exp1 import run_exp1
from repro.bench.exp2 import run_exp2
from repro.bench.export import export_exp1_csv, export_exp2_csv
from repro.config import TINY


@pytest.fixture(scope="module")
def exp1_result():
    return run_exp1(TINY, x_values=(10,), seed=42)


@pytest.fixture(scope="module")
def exp2_result():
    return run_exp2(TINY, seed=42)


def test_exp1_export_layout(exp1_result, tmp_path):
    written = export_exp1_csv(exp1_result, tmp_path)
    names = {p.name for p in written}
    assert names == {"figure3_x10.csv", "table2.csv"}
    with (tmp_path / "figure3_x10.csv").open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["query", "scan", "offline", "adaptive", "holistic"]
    assert len(rows) == 1 + TINY.query_count
    assert rows[1][0] == "1"
    # Cumulative: last scan value exceeds the first.
    assert float(rows[-1][1]) > float(rows[1][1])


def test_exp1_table2_csv(exp1_result, tmp_path):
    export_exp1_csv(exp1_result, tmp_path)
    with (tmp_path / "table2.csv").open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["indexing", "x10_total_s"]
    by_strategy = {row[0]: float(row[1]) for row in rows[1:]}
    assert by_strategy["scan"] > by_strategy["holistic"]


def test_exp2_export(exp2_result, tmp_path):
    path = export_exp2_csv(exp2_result, tmp_path)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["query", "offline", "holistic"]
    assert len(rows) == 1 + TINY.query_count
    # Final gap visible in the data.
    assert float(rows[-1][1]) > float(rows[-1][2])


def test_export_creates_directory(exp2_result, tmp_path):
    target = tmp_path / "nested" / "dir"
    path = export_exp2_csv(exp2_result, target)
    assert path.exists()


def test_cli_csv_option(tmp_path, capsys):
    from repro.bench.runner import main

    assert (
        main(
            [
                "exp2",
                "--scale",
                "tiny",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    assert (tmp_path / "figure4.csv").exists()
    assert "wrote" in capsys.readouterr().out
