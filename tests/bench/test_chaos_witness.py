"""One chaos scenario replayed under the latch witness.

The quick latch-timeout scenario injects LatchTimeout into worker
acquisitions while two tuning workers race the serving path; with the
witness watching, the run must stay order-clean (injected timeouts
abort an acquisition before it is recorded, so the protocol's latch
bookkeeping stays balanced) and still match the fault-free reference
fingerprint.
"""

from __future__ import annotations

import pytest

from repro.analysis import witness
from repro.bench.chaos import QUICK_OPS, QUICK_ROWS, _serving_scenario, _trace


@pytest.fixture(autouse=True)
def _no_leaked_witness():
    yield
    witness.disable()


def test_latch_timeout_chaos_is_witness_clean():
    seed = 42
    case = _trace(QUICK_ROWS, QUICK_OPS, seed)
    with witness.enabled() as w:
        result = _serving_scenario(
            "serving/latch_timeout",
            QUICK_ROWS,
            QUICK_OPS,
            seed,
            case,
            arm=lambda p: p.arm("latch.acquire", at=[0, 2]),
            expected_injected=2,
            workers=2,
        )
    assert result.matches_reference
    assert result.faults["injected"] == 2
    assert w.violations == [], [v.detail for v in w.violations]
    assert w.acquires == w.releases > 0
