"""Unit tests for the bench CLI."""

import pytest

from repro.bench.runner import main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Holistic" in out


def test_figure2_command(capsys):
    assert main(["figure2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "after Q2" in out


def test_exp1_and_table2_at_tiny_scale(capsys):
    assert main(["table2", "--scale", "tiny", "--x", "10"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "X=10" in out
    assert "Scan" in out and "Holistic" in out


def test_exp1_figure_output(capsys):
    assert main(["exp1", "--scale", "tiny", "--x", "10"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "T_init" in out
    assert "holistic" in out


def test_exp2_command(capsys):
    assert main(["exp2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "ratio" in out


def test_figure1_command(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "[holistic]" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_unknown_scale_rejected():
    with pytest.raises(SystemExit):
        main(["table1", "--scale", "galactic"])


@pytest.mark.slow
def test_ablation_commands(capsys):
    assert main(["ablation-stochastic", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "standard" in out and "ddr" in out
