"""Acceptance test for Table 1: the feature matrix."""

from repro.bench.features import (
    PAPER_TABLE1,
    collect_features,
    table1_text,
)


def test_matrix_matches_paper_exactly():
    for features in collect_features():
        expected = PAPER_TABLE1[features.name]
        got = (
            features.statistical_analysis,
            features.idle_a_priori,
            features.idle_during_workload,
            features.incremental_indexing,
            features.workload,
        )
        assert got == expected, f"{features.name} row diverges"


def test_all_four_strategies_present():
    names = [f.name for f in collect_features()]
    assert names == ["offline", "online", "adaptive", "holistic"]


def test_holistic_is_the_only_all_yes_row():
    for features in collect_features():
        all_yes = (
            features.statistical_analysis
            and features.idle_a_priori
            and features.idle_during_workload
            and features.incremental_indexing
        )
        assert all_yes == (features.name == "holistic")


def test_rendering_contains_every_row():
    text = table1_text()
    for name in ("Offline", "Online", "Adaptive", "Holistic"):
        assert name in text
    assert "static" in text and "dynamic" in text
