"""Acceptance tests for Exp2 (Figure 4)."""

import pytest

from repro.bench.exp2 import figure4_text, run_exp2
from repro.config import TINY


@pytest.fixture(scope="module")
def result():
    return run_exp2(TINY, seed=42)


def test_offline_wins_only_the_first_two_queries(result):
    """Paper: 'Only for the first two queries holistic indexing is
    slower because all queries so far are on the fully indexed
    attributes.'"""
    offline = result.offline_report.cumulative_curve()
    holistic = result.holistic_report.cumulative_curve()
    assert offline[0] < holistic[0]
    assert offline[1] < holistic[1]
    # By the end of the first round-robin round holistic leads.
    assert holistic[10] < offline[10]


def test_final_gap_is_large(result):
    """Paper: ~2 orders of magnitude at 10^4 queries; at tiny scale
    (200 queries) the gap is smaller but must exceed one order."""
    assert result.final_ratio > 10


def test_idle_budget_fits_two_sorts(result):
    two_sorts = 2 * result.scale.cost_model().sort_seconds(
        result.scale.rows
    )
    assert result.idle_budget_s == pytest.approx(two_sorts)


def test_holistic_spent_comparable_idle_time(result):
    """The paper equates 2 sorts with 10x100 cracks (55 s); our model
    must agree within ~25%."""
    assert result.holistic_idle_used_s == pytest.approx(
        result.idle_budget_s, rel=0.25
    )


def test_offline_curve_has_scan_segments(result):
    """80% of offline queries scan: the curve grows linearly after
    the indexed minority."""
    curve = result.offline_report.cumulative_curve()
    late_slope = (curve[-1] - curve[-51]) / 50
    scan_cost = result.scale.cost_model().scan_seconds(
        result.scale.rows
    )
    # 8 of 10 queries pay a full scan.
    assert late_slope == pytest.approx(0.8 * scan_cost, rel=0.1)


def test_rendering_mentions_both_strategies(result):
    text = figure4_text(result)
    assert "offline" in text
    assert "holistic" in text
    assert "ratio" in text
