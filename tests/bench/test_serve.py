"""The concurrent-serving bench harness."""

from __future__ import annotations

import json

from repro.bench.serve import (
    check_regression,
    run_serve,
    run_serve_command,
    serve_text,
)

_TINY = dict(rows=2_000, queries_per_client=24, repeats=1)


def _tiny_doc(**overrides):
    config = {**_TINY, **overrides}
    return run_serve(
        client_counts=(1, 3),
        strategies=("adaptive", "holistic"),
        **config,
    )


def test_run_serve_document_shape_and_equivalence():
    doc = _tiny_doc()
    assert doc["schema"] == "serve-v1"
    assert set(doc["scenarios"]) == {
        "adaptive/solo/clients1",
        "adaptive/solo/clients3",
        "adaptive/serve/clients1",
        "adaptive/serve/clients3",
        "holistic/solo/clients1",
        "holistic/solo/clients3",
        "holistic/serve/clients1",
        "holistic/serve/clients3",
    }
    for name, data in doc["scenarios"].items():
        clients = int(name.rsplit("clients", 1)[1])
        assert data["ops"] == clients * 24
        assert data["throughput"] > 0
        assert len(data["fingerprints"]) == clients
        if "/serve/" in name:
            assert data["latency_p99_ms"] >= data["latency_p50_ms"] >= 0
            assert data["windows"] >= 1
    # The headline correctness proof: every serving client's
    # fingerprint equals its solo run's.
    assert all(doc["serve_equals_solo"].values())
    assert "clients3" in doc["speedup_serve_vs_solo"]["adaptive"]
    assert "serve == solo fingerprints" in serve_text(doc)


def test_workers_scenario_compares_against_plain_holistic_solo():
    doc = run_serve(
        client_counts=(2,),
        strategies=("holistic", "holistic_workers"),
        **_TINY,
    )
    assert "holistic_workers/solo/clients2" not in doc["scenarios"]
    workers = doc["scenarios"]["holistic_workers/serve/clients2"]
    solo = doc["scenarios"]["holistic/solo/clients2"]
    # Background tuning must not move a single client's accounting.
    assert workers["fingerprints"] == solo["fingerprints"]
    assert doc["serve_equals_solo"]["holistic_workers/serve/clients2"]


def test_workers_scenario_alone_still_measures_its_solo_baseline():
    """Regression: sweeping only holistic_workers used to crash at the
    speedup computation because its plain-holistic solo baseline was
    never measured."""
    doc = run_serve(
        client_counts=(2,),
        strategies=("holistic_workers",),
        **_TINY,
    )
    assert "holistic/solo/clients2" in doc["scenarios"]
    assert doc["serve_equals_solo"]["holistic_workers/serve/clients2"]
    assert "clients2" in doc["speedup_serve_vs_solo"]["holistic_workers"]


def test_check_regression_passes_against_self_and_detects_drift():
    doc = _tiny_doc()
    assert check_regression(doc, doc) == []
    slowed = json.loads(json.dumps(doc))
    slowed["scenarios"]["adaptive/serve/clients3"]["throughput"] = (
        doc["scenarios"]["adaptive/serve/clients3"]["throughput"] * 3
    )
    failures = check_regression(doc, slowed)
    assert any("throughput regressed" in f for f in failures)
    diverged = json.loads(json.dumps(doc))
    diverged["scenarios"]["adaptive/serve/clients3"]["fingerprints"][
        "client-0"
    ]["state_sha256"] = "bogus"
    failures = check_regression(doc, diverged)
    assert any("fingerprint diverged" in f for f in failures)
    broken = json.loads(json.dumps(doc))
    broken["serve_equals_solo"]["adaptive/serve/clients3"] = False
    failures = check_regression(broken, doc)
    assert any("diverged from the solo baselines" in f for f in failures)


def test_run_serve_command_writes_output_and_gates(tmp_path):
    out = tmp_path / "bench.json"
    text, exit_code = run_serve_command(
        rows=2_000,
        queries=16,
        seed=7,
        quick=True,
        out=str(out),
        check_path=None,
        repeats=1,
    )
    assert exit_code == 0
    assert "Concurrent serving benchmark" in text
    document = json.loads(out.read_text())
    assert document["config"]["rows"] == 2_000
    assert document["config"]["client_counts"] == [1, 8]
    # Round-trip the check gate against the file it just wrote.  At
    # this tiny scale wall-clock noise alone can trip the 2x
    # throughput limit, so only the deterministic fingerprint half of
    # the gate is asserted here (the pass path is covered by
    # test_check_regression_passes_against_self_and_detects_drift).
    text, exit_code = run_serve_command(
        rows=2_000,
        queries=16,
        seed=7,
        quick=True,
        out=str(tmp_path / "again.json"),
        check_path=str(out),
        repeats=1,
    )
    assert "fingerprint diverged" not in text
    assert "solo baselines" not in text
