"""The mixed read/write bench harness."""

from __future__ import annotations

import json

from repro.bench.mixed import (
    check_regression,
    mixed_text,
    run_mixed,
    run_mixed_command,
)

_TINY = dict(rows=1_500, ops=40, repeats=1)


def _tiny_doc(**overrides):
    return run_mixed(**{**_TINY, **overrides})


def test_run_mixed_document_shape():
    doc = _tiny_doc(mixes=(0.2,))
    assert doc["schema"] == "mixed-v1"
    names = set(doc["scenarios"])
    for mode in (
        "reference/naive",
        "adaptive/sequential",
        "adaptive/batched",
        "maintained/ripple",
        "holistic/serving",
        "holistic_workers/serving",
    ):
        assert f"mix20/{mode}" in names
    assert "drift/online/sequential" in names
    assert "drift/holistic/sequential" in names
    assert "sideways/cracked/select_project" in names
    for data in doc["scenarios"].values():
        assert data["throughput"] > 0
        assert data["matches_reference"]
        assert set(data["fingerprint"]) == {
            "queries",
            "updates",
            "result_rows",
            "result_sha256",
        }
    # The headline claim: every engine path reproduced the serial
    # reference bit for bit, including the worker-racing path.
    assert all(doc["oracle_matches_reference"].values())
    assert doc["sideways_equals_scan"]
    ratio = doc["shootout"]["virtual_response_ratio_online_vs_holistic"]
    assert ratio is not None and ratio > 0


def test_engine_modes_share_the_reference_fingerprint():
    doc = _tiny_doc(mixes=(0.35,))
    digests = {
        name: data["fingerprint"]["result_sha256"]
        for name, data in doc["scenarios"].items()
        if name.startswith("mix35/")
    }
    assert len(set(digests.values())) == 1, digests


def test_mixed_text_renders():
    doc = _tiny_doc(mixes=(0.2,))
    text = mixed_text(doc)
    assert "mix20/maintained/ripple" in text
    assert "ok" in text
    assert "COLT-vs-holistic" in text


def test_check_regression_passes_against_itself():
    doc = _tiny_doc(mixes=(0.2,))
    assert check_regression(doc, doc) == []


def test_check_regression_flags_throughput_and_fingerprint():
    doc = _tiny_doc(mixes=(0.2,))
    committed = json.loads(json.dumps(doc))
    name = "mix20/adaptive/sequential"
    committed["scenarios"][name]["throughput"] = (
        doc["scenarios"][name]["throughput"] * 10
    )
    committed["scenarios"]["mix20/maintained/ripple"]["fingerprint"][
        "result_sha256"
    ] = "0" * 64
    failures = check_regression(doc, committed)
    assert any("regressed" in f for f in failures)
    assert any("result_sha256" in f for f in failures)


def test_check_regression_flags_in_run_divergence():
    doc = _tiny_doc(mixes=(0.2,))
    doc["oracle_matches_reference"]["mix20/adaptive/batched"] = False
    failures = check_regression(doc, doc)
    assert any("diverged from the serial reference" in f for f in failures)


def test_check_regression_skips_fingerprints_across_configs():
    doc = _tiny_doc(mixes=(0.2,))
    committed = json.loads(json.dumps(doc))
    committed["config"]["rows"] = doc["config"]["rows"] + 1
    committed["scenarios"]["mix20/adaptive/sequential"]["fingerprint"][
        "result_sha256"
    ] = "0" * 64
    assert check_regression(doc, committed) == []


def test_run_mixed_command_round_trip(tmp_path):
    out = tmp_path / "mixed.json"
    text, code = run_mixed_command(
        rows=1_500,
        ops=40,
        seed=7,
        quick=True,
        out=str(out),
        check_path=None,
        repeats=1,
    )
    assert code == 0
    assert out.exists()
    doc = json.loads(out.read_text())
    assert doc["schema"] == "mixed-v1"
    assert "wrote" in text

    text, code = run_mixed_command(
        rows=1_500,
        ops=40,
        seed=7,
        quick=True,
        out=str(tmp_path / "mixed2.json"),
        check_path=str(out),
        repeats=1,
    )
    assert code == 0
    assert "gate passed" in text


def test_run_mixed_command_fails_on_bad_baseline(tmp_path):
    out = tmp_path / "mixed.json"
    _, code = run_mixed_command(
        rows=1_500,
        ops=40,
        seed=7,
        quick=True,
        out=str(out),
        check_path=None,
        repeats=1,
    )
    assert code == 0
    doc = json.loads(out.read_text())
    name = next(iter(doc["scenarios"]))
    doc["scenarios"][name]["throughput"] *= 1000
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    text, code = run_mixed_command(
        rows=1_500,
        ops=40,
        seed=7,
        quick=True,
        out=str(tmp_path / "mixed3.json"),
        check_path=str(bad),
        repeats=1,
    )
    assert code == 1
    assert "FAILURES" in text
