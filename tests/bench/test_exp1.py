"""Acceptance tests for Exp1 (Figure 3 / Table 2).

These pin the paper's qualitative claims at tiny scale (DESIGN.md §5):
the orderings, the idle-time monotonicity, and the shape of the
curves.  Absolute projected magnitudes are recorded in EXPERIMENTS.md
from the medium-scale run.
"""

import pytest

from repro.bench.exp1 import figure3_text, run_exp1, table2_text
from repro.config import TINY


@pytest.fixture(scope="module")
def result():
    return run_exp1(TINY, x_values=(10, 100), seed=42)


def test_strategy_ordering_matches_paper(result):
    """Table 2: Scan > Offline > Adaptive > Holistic at every X."""
    for x in result.x_values:
        scan = result.run_for("scan", x).total_s
        offline = result.run_for("offline", x).total_s
        adaptive = result.run_for("adaptive", x).total_s
        holistic = result.run_for("holistic", x).total_s
        assert scan > offline > adaptive > holistic


def test_holistic_improves_with_more_idle_time(result):
    """More refinements per window -> lower holistic total."""
    h10 = result.run_for("holistic", 10).total_s
    h100 = result.run_for("holistic", 100).total_s
    assert h100 < h10


def test_scan_and_adaptive_ignore_idle_time(result):
    """Neither baseline can exploit idle windows (paper §4)."""
    assert ("scan", None) in result.runs
    assert ("adaptive", None) in result.runs
    assert result.run_for("scan", 10) is result.run_for("scan", 100)


def test_scan_curve_is_linear(result):
    curve = result.run_for("scan", 10).curve
    per_query = curve[0]
    assert curve[99] == pytest.approx(100 * per_query, rel=0.02)


def test_cracking_curve_flattens(result):
    """Adaptive improves continuously: late queries are far cheaper."""
    curve = result.run_for("adaptive", 10).curve
    first_half = curve[len(curve) // 2]
    second_half = curve[-1] - first_half
    assert second_half < first_half / 2


def test_offline_pays_upfront_then_flat(result):
    curve = result.run_for("offline", 10).curve
    assert curve[0] > 0.5 * curve[-1]  # first query dominates
    tail_growth = curve[-1] - curve[len(curve) // 2]
    assert tail_growth < curve[0] / 100


def test_holistic_t_init_grows_with_x(result):
    t10 = result.run_for("holistic", 10).t_init_s
    t100 = result.run_for("holistic", 100).t_init_s
    assert 0 < t10 < t100


def test_offline_total_is_sort_time_minus_credit(result):
    """Offline ~ Time_sort - T_init + probes (DESIGN.md divergence)."""
    run = result.run_for("offline", 10)
    expected = result.sort_time_s - run.t_init_s
    assert run.total_s == pytest.approx(expected, rel=0.05)


def test_renderings_include_all_strategies(result):
    fig = figure3_text(result)
    table = table2_text(result)
    for name in ("scan", "offline", "adaptive", "holistic"):
        assert name in fig
        assert name.capitalize() in table
    assert "X=10" in table
