"""The end-to-end queries-per-second bench harness."""

from __future__ import annotations

import json

from repro.bench.e2e import (
    check_regression,
    e2e_text,
    run_e2e,
    run_e2e_command,
)

_TINY = dict(rows=2000, queries=48, repeats=1)


def _tiny_doc(**overrides):
    config = {**_TINY, **overrides}
    return run_e2e(
        batch_sizes=(1, 8),
        strategies=("adaptive", "holistic"),
        **config,
    )


def test_run_e2e_document_shape_and_equivalence():
    doc = _tiny_doc()
    assert doc["schema"] == "e2e-v1"
    assert set(doc["scenarios"]) == {
        "adaptive/batch1",
        "adaptive/batch8",
        "holistic/batch1",
        "holistic/batch8",
    }
    for data in doc["scenarios"].values():
        assert data["ops"] == 48
        assert data["throughput"] > 0
        assert data["fingerprint"]["queries"] == 48
    # The headline correctness proof: batch == sequential fingerprints.
    assert doc["batch_equals_sequential"] == {
        "adaptive": True,
        "holistic": True,
    }
    assert "batch8" in doc["speedup_vs_batch1"]["adaptive"]
    assert "batch1" in e2e_text(doc)


def test_fingerprints_identical_across_batch_sizes():
    doc = _tiny_doc()
    for strategy in ("adaptive", "holistic"):
        batch1 = doc["scenarios"][f"{strategy}/batch1"]["fingerprint"]
        batch8 = doc["scenarios"][f"{strategy}/batch8"]["fingerprint"]
        assert batch8 == batch1


def test_check_regression_passes_against_self_and_detects_drift():
    doc = _tiny_doc()
    assert check_regression(doc, doc) == []
    slowed = json.loads(json.dumps(doc))
    slowed["scenarios"]["adaptive/batch8"]["throughput"] = (
        doc["scenarios"]["adaptive/batch8"]["throughput"] * 3
    )
    failures = check_regression(doc, slowed)
    assert any("throughput regressed" in f for f in failures)
    diverged = json.loads(json.dumps(doc))
    diverged["scenarios"]["adaptive/batch1"]["fingerprint"][
        "state_sha256"
    ] = "bogus"
    failures = check_regression(doc, diverged)
    assert any("fingerprint diverged" in f for f in failures)
    broken = json.loads(json.dumps(doc))
    broken["batch_equals_sequential"]["adaptive"] = False
    failures = check_regression(broken, doc)
    assert any("diverged from sequential" in f for f in failures)


def test_run_e2e_command_writes_output(tmp_path):
    out = tmp_path / "bench.json"
    text, exit_code = run_e2e_command(
        rows=2000,
        queries=32,
        seed=7,
        quick=True,
        out=str(out),
        check_path=None,
        repeats=1,
    )
    assert exit_code == 0
    assert "queries-per-second" in text
    document = json.loads(out.read_text())
    assert document["config"]["rows"] == 2000
    # Round-trip the check gate against the file it just wrote.  At
    # this tiny scale wall-clock noise alone can trip the 2x
    # throughput limit (an intermittent tier-1 failure under load), so
    # only the deterministic fingerprint half of the gate is asserted
    # (the pass path is covered by
    # test_check_regression_passes_against_self_and_detects_drift).
    text, exit_code = run_e2e_command(
        rows=2000,
        queries=32,
        seed=7,
        quick=True,
        out=str(tmp_path / "again.json"),
        check_path=str(out),
        repeats=1,
    )
    assert "fingerprint diverged" not in text
    assert "diverged from sequential" not in text
