"""The differential fingerprint oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.session import make_strategy
from repro.serving import ServingFrontend
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import (
    build_paper_table,
    generate_uniform_float_column,
)
from repro.workload.generators import TraceOp
from repro.workload.patterns import MixedPattern
from util.oracle import (
    OracleError,
    ReferenceEngine,
    TraceFingerprint,
    reference_results,
    replay_batched,
    replay_maintained,
    replay_sequential,
    replay_serving,
)

A1 = ColumnRef("R", "A1")
F1 = ColumnRef("R", "F1")


def _db(rows: int = 2_000, seed: int = 5) -> Database:
    db = Database(clock=SimClock())
    table = build_paper_table(rows=rows, columns=2, seed=seed)
    table.add_column(
        generate_uniform_float_column("F1", rows=rows, seed=seed + 9)
    )
    db.add_table(table)
    return db


def _trace(db: Database, ops: int = 120, **overrides) -> list[TraceOp]:
    options = dict(
        columns=["A1", "A2", "F1"],
        op_count=ops,
        write_ratio=0.3,
        batch_size=8,
        burst=3,
        seed=3,
    )
    options.update(overrides)
    return MixedPattern(**options).ops(db.table("R"))


def test_reference_engine_matches_brute_force() -> None:
    db = _db(rows=300)
    engine = ReferenceEngine(db, [A1])
    base = db.column("R", "A1").values.copy()
    engine.apply(TraceOp("insert", A1, values=(7, 500_000)))
    engine.apply(
        TraceOp(
            "delete",
            A1,
            values=(int(base[3]), int(base[9])),
            positions=(3, 9),
        )
    )
    got = engine.apply(TraceOp("query", A1, 0.0, 1e9))
    alive = np.delete(base, [3, 9])
    want = np.sort(np.concatenate([alive, [7, 500_000]]))
    assert np.array_equal(got, want)


def test_fingerprint_is_order_sensitive() -> None:
    a, b = TraceFingerprint(), TraceFingerprint()
    a.note_query(np.array([1, 2]))
    a.note_query(np.array([3]))
    b.note_query(np.array([3]))
    b.note_query(np.array([1, 2]))
    assert a.as_dict()["result_sha256"] != b.as_dict()["result_sha256"]


def test_fingerprint_normalizes_dtype() -> None:
    a, b = TraceFingerprint(), TraceFingerprint()
    a.note_query(np.array([1, 2], dtype=np.int32))
    b.note_query(np.array([1, 2], dtype=np.int64))
    assert a.as_dict()["result_sha256"] == b.as_dict()["result_sha256"]


def test_all_drivers_match_reference() -> None:
    db0 = _db()
    trace = _trace(db0)
    refs = [ColumnRef("R", c) for c in ("A1", "A2", "F1")]
    expected, reference = reference_results(db0, refs, trace)
    assert reference["queries"] + reference["updates"] == len(trace)

    runs = {}
    db = _db()
    runs["sequential"] = replay_sequential(
        db, db.session("adaptive"), trace, expected, reference
    )
    db = _db()
    runs["batched"] = replay_batched(
        db, db.session("adaptive"), trace, expected, reference, window=16
    )
    db = _db()
    frontend = ServingFrontend(db, make_strategy("holistic", db, seed=5))
    runs["serving"] = replay_serving(
        db, frontend, trace, expected, reference, clients=2, window=16
    )
    db = _db()
    runs["maintained"] = replay_maintained(db, trace, expected, reference)

    for label, run in runs.items():
        assert run.matches_reference, label
        assert run.fingerprint == reference, label


def test_corrupted_result_raises_oracle_error() -> None:
    db0 = _db(rows=600)
    trace = _trace(db0, ops=40)
    expected, reference = reference_results(
        db0, [ColumnRef("R", c) for c in ("A1", "A2", "F1")], trace
    )
    # Corrupt one expected multiset: the engine's (correct) answer now
    # disagrees, which must surface as a divergence, not silence.
    victim = next(i for i, e in enumerate(expected) if len(e))
    expected[victim] = expected[victim][:-1]
    db = _db(rows=600)
    with pytest.raises(OracleError, match="rows"):
        replay_sequential(
            db, db.session("adaptive"), trace, expected, reference
        )


def test_short_run_is_rejected() -> None:
    db0 = _db(rows=600)
    trace = _trace(db0, ops=40, write_ratio=0.0)
    expected, reference = reference_results(
        db0, [ColumnRef("R", c) for c in ("A1", "A2", "F1")], trace
    )
    db = _db(rows=600)
    with pytest.raises(OracleError, match="answered"):
        replay_sequential(
            db, db.session("adaptive"), trace[:-1], expected, reference
        )
