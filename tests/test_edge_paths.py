"""Edge-path tests: float columns, error propagation, empty data.

These exercise paths the paper's experiments never touch but a
downstream user will: non-integer columns, missing objects reached
through the session API, and degenerate (empty) tables.
"""

import numpy as np
import pytest

from repro.cracking.index import CrackerIndex
from repro.errors import UnknownColumnError, UnknownTableError
from repro.simtime.clock import SimClock
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.dtypes import FLOAT64
from repro.storage.table import Table


def _float_column(n: int = 5_000, seed: int = 9) -> Column:
    values = np.random.default_rng(seed).uniform(0.0, 1.0, n)
    return Column("F", values, FLOAT64)


def test_cracking_float_column_is_correct():
    column = _float_column()
    index = CrackerIndex(column, clock=SimClock())
    for low, high in [(0.1, 0.3), (0.25, 0.9), (0.0, 1.0)]:
        view = index.select_range(low, high)
        base = column.values
        expected = int(np.count_nonzero((base >= low) & (base < high)))
        assert view.count == expected
    index.check_invariants()


def test_random_cracks_on_float_column():
    column = _float_column()
    index = CrackerIndex(column, clock=SimClock())
    rng = np.random.default_rng(0)
    for _ in range(20):
        index.random_crack(rng, min_piece_size=1)
    index.check_invariants()
    assert index.piece_count > 10


def test_full_index_on_float_column():
    from repro.offline.fullindex import FullIndex

    column = _float_column()
    index = FullIndex(column, SimClock())
    index.build()
    view = index.select_range(0.4, 0.6)
    base = column.values
    expected = int(np.count_nonzero((base >= 0.4) & (base < 0.6)))
    assert view.count == expected


def test_session_surfaces_unknown_table():
    db = Database()
    session = db.session("scan")
    with pytest.raises(UnknownTableError):
        session.select("missing", "A1", 0, 1)


def test_session_surfaces_unknown_column():
    db = Database()
    table = db.create_table("T")
    table.add_column(Column("A", np.array([1], dtype=np.int64)))
    session = db.session("adaptive")
    with pytest.raises(UnknownColumnError):
        session.select("T", "missing", 0, 1)


def test_holistic_on_empty_table_is_harmless():
    db = Database()
    table = db.create_table("T")
    table.add_column(Column("A", np.array([], dtype=np.int64)))
    session = db.session("holistic")
    record = session.idle(actions=10)
    assert record.actions_done == 0
    result = session.select("T", "A", 0, 100)
    assert result.count == 0


def test_scan_on_empty_table():
    db = Database()
    table = db.create_table("T")
    table.add_column(Column("A", np.array([], dtype=np.int64)))
    session = db.session("scan")
    assert session.select("T", "A", 0, 100).count == 0


def test_single_value_column_cracks_cleanly():
    column = Column("A", np.full(100, 7, dtype=np.int64))
    index = CrackerIndex(column, clock=SimClock())
    assert index.select_range(7, 8).count == 100
    assert index.select_range(0, 7).count == 0
    # Random cracks degenerate (zero value span) but never corrupt.
    assert index.random_crack(np.random.default_rng(0)) is None
    index.check_invariants()


def test_mixed_strategies_share_one_database():
    """Two sessions with different strategies can coexist on one DB."""
    from repro.storage.loader import build_paper_table

    db = Database()
    db.add_table(build_paper_table(rows=2_000, columns=1, seed=1))
    scan = db.session("scan")
    adaptive = db.session("adaptive")
    a = scan.select("R", "A1", 1e6, 5e7)
    b = adaptive.select("R", "A1", 1e6, 5e7)
    assert a.count == b.count
    # The adaptive session's cracking never mutates the base column.
    assert db.column("R", "A1").values.flags.writeable is False
