"""Unit tests for full sorted indexes."""

import numpy as np
import pytest

from repro.errors import IndexingError, QueryError
from repro.offline.fullindex import FullIndex
from repro.simtime.clock import SimClock

from tests.conftest import ground_truth_count


def test_unbuilt_index_refuses_probes(small_column):
    index = FullIndex(small_column, SimClock())
    assert not index.is_built
    with pytest.raises(IndexingError, match="not built"):
        index.select_range(0, 10)


def test_build_sorts_and_charges(small_column):
    clock = SimClock()
    index = FullIndex(small_column, clock)
    seconds = index.build()
    assert seconds > 0
    assert index.is_built
    assert index.built_at == pytest.approx(clock.now())
    values = index.sorted_values
    assert np.all(values[:-1] <= values[1:])
    assert clock.total_charge.elements_sorted == small_column.row_count


def test_rebuild_is_free(small_column):
    clock = SimClock()
    index = FullIndex(small_column, clock)
    index.build()
    t = clock.now()
    assert index.build() == 0.0
    assert clock.now() == t


def test_select_matches_ground_truth(small_column, rng):
    index = FullIndex(small_column, SimClock())
    index.build()
    for _ in range(50):
        low = float(rng.uniform(1, 9e7))
        high = low + float(rng.uniform(0, 1e7))
        view = index.select_range(low, high)
        assert view.count == ground_truth_count(small_column, low, high)
        got = view.values()
        assert np.all((got >= low) & (got < high))


def test_probe_cost_is_logarithmic(small_column):
    clock = SimClock()
    index = FullIndex(small_column, clock)
    index.build()
    t0 = clock.now()
    index.select_range(10_000_000, 30_000_000)
    probe = clock.now() - t0
    assert probe < 1e-4  # microseconds, not milliseconds


def test_build_cost_estimate_matches_actual(small_column):
    clock = SimClock()
    index = FullIndex(small_column, clock)
    estimate = index.build_cost_estimate()
    actual = index.build()
    assert estimate == pytest.approx(actual, rel=1e-9)


def test_rowid_tracking_reconstructs(small_column):
    index = FullIndex(small_column, SimClock(), track_rowids=True)
    index.build()
    view = index.select_range(10_000_000, 30_000_000)
    positions = view.positions()
    assert positions is not None
    assert np.array_equal(
        small_column.values[positions], view.values()
    )


def test_inverted_range_rejected(small_column):
    index = FullIndex(small_column, SimClock())
    index.build()
    with pytest.raises(QueryError):
        index.select_range(10, 5)
