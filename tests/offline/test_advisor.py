"""Unit tests for the offline advisor."""

import pytest

from repro.errors import ConfigError
from repro.offline.advisor import OfflineAdvisor
from repro.offline.whatif import WhatIfOptimizer, WorkloadStatement
from repro.storage.catalog import ColumnRef


@pytest.fixture
def advisor(tiny_db) -> OfflineAdvisor:
    return OfflineAdvisor(
        WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)
    )


def _stmt(column: str, weight: float) -> WorkloadStatement:
    return WorkloadStatement(
        ColumnRef("R", column), 1_000, 2_000, weight=weight
    )


def test_candidates_deduplicate_columns(advisor):
    workload = [_stmt("A1", 1), _stmt("A2", 1), _stmt("A1", 2)]
    assert advisor.candidates(workload) == [
        ColumnRef("R", "A1"),
        ColumnRef("R", "A2"),
    ]


def test_unlimited_budget_recommends_all_useful(advisor):
    workload = [_stmt("A1", 100), _stmt("A2", 50), _stmt("A3", 10)]
    report = advisor.advise(workload)
    recommended = [r.ref.column for r in report.recommended]
    assert set(recommended) == {"A1", "A2", "A3"}
    # Greedy order follows benefit.
    assert recommended[0] == "A1"


def test_budget_limits_builds(advisor, tiny_db):
    workload = [_stmt("A1", 100), _stmt("A2", 50), _stmt("A3", 10)]
    one_build = tiny_db.cost_model.sort_seconds(
        tiny_db.column("R", "A1").row_count
    )
    report = advisor.advise(workload, budget_s=one_build * 1.5)
    assert len(report.recommended) == 1
    assert report.recommended[0].ref.column == "A1"
    assert len(report.rejected) >= 1
    assert report.total_build_cost_s <= one_build * 1.5


def test_zero_budget_recommends_nothing(advisor):
    workload = [_stmt("A1", 100)]
    report = advisor.advise(workload, budget_s=0.0)
    assert report.recommended == []


def test_max_indexes_cap(advisor):
    workload = [_stmt("A1", 100), _stmt("A2", 50)]
    report = advisor.advise(workload, max_indexes=1)
    assert len(report.recommended) == 1


def test_negative_budget_rejected(advisor):
    with pytest.raises(ConfigError):
        advisor.advise([], budget_s=-1.0)
    with pytest.raises(ConfigError):
        advisor.advise([], max_indexes=-1)


def test_report_tracks_whatif_calls(advisor):
    workload = [_stmt("A1", 100), _stmt("A2", 50)]
    report = advisor.advise(workload)
    assert report.whatif_calls > 0


def test_benefit_per_build_second_ordering(advisor):
    workload = [_stmt("A1", 100), _stmt("A2", 1)]
    report = advisor.advise(workload)
    benefits = [r.benefit_per_build_second for r in report.recommended]
    assert benefits == sorted(benefits, reverse=True)


def test_zero_cost_zero_benefit_is_not_infinitely_attractive():
    """Regression: a free build with no benefit returned inf and could
    outrank genuinely beneficial candidates in the greedy pick."""
    from repro.offline.advisor import Recommendation

    useless = Recommendation(ColumnRef("R", "A1"), 0.0, 0.0)
    useful = Recommendation(ColumnRef("R", "A2"), 5.0, 2.0)
    assert useless.benefit_per_build_second == 0.0
    assert (
        useful.benefit_per_build_second
        > useless.benefit_per_build_second
    )
    # A free build that does buy time still ranks above everything.
    free_win = Recommendation(ColumnRef("R", "A3"), 1.0, 0.0)
    assert free_win.benefit_per_build_second == float("inf")
    ranked = sorted(
        [useless, useful, free_win],
        key=lambda r: r.benefit_per_build_second,
        reverse=True,
    )
    assert [r.ref.column for r in ranked] == ["A3", "A2", "A1"]
