"""Unit tests for the budgeted index builder."""

import pytest

from repro.offline.builder import IndexBuilder
from repro.storage.catalog import ColumnRef


@pytest.fixture
def builder(tiny_db) -> IndexBuilder:
    return IndexBuilder(tiny_db.catalog, tiny_db.clock)


def _refs(*columns: str) -> list[ColumnRef]:
    return [ColumnRef("R", c) for c in columns]


def test_build_now_creates_usable_index(builder, a1):
    record = builder.build_now(a1)
    assert record.cost_s > 0
    assert record.finished_at >= record.started_at
    index = builder.index_for(a1)
    assert index is not None
    assert index.is_built


def test_index_for_unbuilt_returns_none(builder, a1):
    assert builder.index_for(a1) is None
    assert builder.ready_time(a1) is None


def test_build_within_unlimited_builds_all(builder):
    report = builder.build_within(_refs("A1", "A2", "A3"))
    assert len(report.built) == 3
    assert report.skipped == []


def test_build_within_budget_skips_what_does_not_fit(builder, tiny_db):
    one_sort = tiny_db.cost_model.sort_seconds(
        tiny_db.column("R", "A1").row_count
    )
    report = builder.build_within(
        _refs("A1", "A2", "A3"), budget_s=2 * one_sort
    )
    assert len(report.built) == 2
    assert len(report.skipped) == 1
    assert report.skipped[0].column == "A3"
    assert report.total_cost_s <= 2 * one_sort * 1.01


def test_build_within_skips_already_built(builder):
    builder.build_now(ColumnRef("R", "A1"))
    report = builder.build_within(_refs("A1", "A2"))
    assert [r.ref.column for r in report.built] == ["A2"]


def test_builds_advance_the_clock(builder, tiny_db, a1):
    before = tiny_db.clock.now()
    builder.build_now(a1)
    assert tiny_db.clock.now() > before


def test_ready_time_reflects_clock(builder, tiny_db, a1):
    builder.build_now(a1)
    assert builder.ready_time(a1) == pytest.approx(tiny_db.clock.now())
