"""Unit tests for what-if analysis."""

import pytest

from repro.offline.whatif import (
    Configuration,
    WhatIfOptimizer,
    WorkloadStatement,
)
from repro.storage.catalog import ColumnRef


@pytest.fixture
def optimizer(tiny_db) -> WhatIfOptimizer:
    # The projected model: 10k local rows priced as the paper's 10^8.
    return WhatIfOptimizer(tiny_db.catalog, tiny_db.cost_model)


def _statement(column: str, weight: float = 1.0) -> WorkloadStatement:
    return WorkloadStatement(
        ColumnRef("R", column), 1_000, 2_000, weight=weight
    )


def test_statement_cost_depends_on_configuration(optimizer, a1):
    stmt = _statement("A1")
    scan_cost = optimizer.statement_cost(stmt, Configuration())
    indexed_cost = optimizer.statement_cost(
        stmt, Configuration(indexes={a1})
    )
    assert indexed_cost < scan_cost / 100


def test_workload_cost_weights_statements(optimizer):
    light = [_statement("A1", weight=1.0)]
    heavy = [_statement("A1", weight=10.0)]
    config = Configuration()
    assert optimizer.workload_cost(
        heavy, config
    ) == pytest.approx(10 * optimizer.workload_cost(light, config))


def test_index_benefit_positive_for_hot_column(optimizer, a1):
    workload = [_statement("A1", weight=100.0)]
    benefit = optimizer.index_benefit(workload, Configuration(), a1)
    assert benefit > 0


def test_index_benefit_zero_for_unqueried_column(optimizer):
    workload = [_statement("A1", weight=100.0)]
    other = ColumnRef("R", "A2")
    benefit = optimizer.index_benefit(workload, Configuration(), other)
    assert benefit == pytest.approx(0.0)


def test_optimizer_counts_calls(optimizer, a1):
    before = optimizer.calls
    optimizer.workload_cost([_statement("A1")], Configuration())
    assert optimizer.calls == before + 1


def test_configuration_with_index_is_persistent(a1):
    base = Configuration()
    extended = base.with_index(a1)
    assert not base.covers(a1)
    assert extended.covers(a1)


def test_build_cost_scales_with_rows(optimizer, a1):
    cost = optimizer.build_cost(a1)
    assert cost > 0
