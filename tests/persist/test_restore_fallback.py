"""The self-healing restart path: walk-back, retry, pointer repair.

Each test corrupts a published snapshot the way
:func:`repro.persist.format._tamper_published` models media failure --
a torn array file, a flipped bit, a garbage ``CURRENT`` pointer -- and
asserts that :func:`restore_snapshot` still comes back with a valid
older generation (or the repaired current one), that the injected
faults are all credited as recovered, and that the restored engine
answers queries correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.engine.query import RangeQuery
from repro.errors import PersistError
from repro.faults import FaultPlan, engaged
from repro.persist import SnapshotManager, restore_snapshot
from repro.persist.format import (
    CURRENT_FILE,
    current_generation,
    generation_name,
    list_generations,
    quick_verify_manifest,
    read_manifest,
)
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

from tests.conftest import ground_truth_count

ROWS = 8_000
REF = ColumnRef("R", "A1")


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def _fresh_session(seed: int = 42):
    db = Database(clock=SimClock())
    db.add_table(build_paper_table(rows=ROWS, columns=2, seed=seed))
    return db, db.session("holistic", seed=seed)


def _run_queries(session, count: int, low: float = 4e6, step: float = 9e6):
    for i in range(count):
        session.run_query(
            RangeQuery(REF, low + i * step, low + i * step + 5e6)
        )


def _two_generations(tmp_path, plan: FaultPlan | None):
    """Checkpoint a clean generation, then a (possibly tampered) one."""
    db, session = _fresh_session()
    manager = SnapshotManager(
        tmp_path, db, strategy=session.strategy, session=session,
        keep_history=True,
    )
    _run_queries(session, 4)
    clean = manager.checkpoint(extra={"mark": "clean"}).generation
    _run_queries(session, 4, low=6e6)
    if plan is None:
        tampered = manager.checkpoint(extra={"mark": "tampered"}).generation
    else:
        with engaged(plan):
            try:
                tampered = manager.checkpoint(
                    extra={"mark": "tampered"}
                ).generation
            except PersistError:
                # A corrupted CURRENT pointer fails the checkpoint's
                # own read-back: the writer dies mid-publish.
                tampered = max(list_generations(tmp_path))
    return clean, tampered


def _assert_answers(restored) -> None:
    column = restored.db.column("R", "A1")
    result = restored.session.run_query(RangeQuery(REF, 2e7, 5e7))
    assert result.count == ground_truth_count(column, 2e7, 5e7)
    for index in restored.strategy.indexes.values():
        index.check_invariants()


# -- walk-back -----------------------------------------------------------


def test_torn_current_generation_walks_back(tmp_path):
    plan = FaultPlan()
    plan.arm("persist.publish.torn", at=0)
    clean, tampered = _two_generations(tmp_path, plan)
    with engaged(plan):
        restored = restore_snapshot(tmp_path)
    assert restored.generation == clean
    assert restored.fallback_generations == [tampered]
    assert restored.extra == {"mark": "clean"}
    assert plan.injected == 1
    assert plan.unrecovered() == []
    _assert_answers(restored)


def test_torn_snapshot_without_fallback_dies(tmp_path):
    plan = FaultPlan()
    plan.arm("persist.publish.torn", at=0)
    _two_generations(tmp_path, plan)
    with pytest.raises(PersistError, match="torn"):
        restore_snapshot(tmp_path, fallback=False)


def test_bitflip_evades_quick_check_until_lazy_verify(tmp_path):
    plan = FaultPlan()
    plan.arm("persist.publish.bitflip", at=0)
    clean, tampered = _two_generations(tmp_path, plan)
    with engaged(plan):
        # A flipped payload bit is invisible to the structural check:
        # the corrupt generation restores...
        restored = restore_snapshot(tmp_path, verify="lazy")
        assert restored.generation == tampered
        assert restored.verification == "lazy"
        # ...until the background verifier rehashes it.
        assert restored.verifier is not None
        assert restored.verifier.wait(60.0) is False
        assert restored.verifier.done and not restored.verifier.ok
        # Re-restore with the proven-bad generation excluded.
        healthy = restore_snapshot(
            tmp_path, verify="eager", exclude=[tampered]
        )
    assert healthy.generation == clean
    assert healthy.verification == "eager"
    assert plan.unrecovered() == []
    _assert_answers(healthy)


def test_eager_verify_walks_past_the_bitflip(tmp_path):
    plan = FaultPlan()
    plan.arm("persist.publish.bitflip", at=0)
    clean, tampered = _two_generations(tmp_path, plan)
    with engaged(plan):
        restored = restore_snapshot(tmp_path, verify="eager")
    assert restored.generation == clean
    assert restored.fallback_generations == [tampered]
    assert plan.unrecovered() == []


def test_background_verifier_passes_on_a_clean_snapshot(tmp_path):
    clean, newest = _two_generations(tmp_path, None)
    restored = restore_snapshot(tmp_path, verify="lazy")
    assert restored.generation == newest
    assert restored.verifier.wait(60.0) is True
    assert restored.verifier.done and restored.verifier.ok


# -- pointer repair ------------------------------------------------------


def test_garbage_pointer_is_repaired_on_restore(tmp_path):
    plan = FaultPlan()
    plan.arm("persist.publish.pointer", at=0)
    clean, tampered = _two_generations(tmp_path, plan)
    assert (tmp_path / CURRENT_FILE).read_text() == "gen-garbage\n"
    with engaged(plan):
        restored = restore_snapshot(tmp_path)
    # The newest structurally-valid generation wins, and the pointer
    # is healed in place...
    assert restored.generation == tampered
    assert (tmp_path / CURRENT_FILE).read_text() == (
        generation_name(tampered) + "\n"
    )
    assert current_generation(tmp_path) == tampered
    assert plan.unrecovered() == []
    _assert_answers(restored)
    # ...so the restored engine can checkpoint normally again.
    manager = SnapshotManager(
        tmp_path,
        restored.db,
        strategy=restored.strategy,
        session=restored.session,
        keep_history=True,
    )
    result = manager.checkpoint()
    assert result.generation == tampered + 1
    assert current_generation(tmp_path) == result.generation


# -- transient restore faults --------------------------------------------


def test_transient_restore_fault_is_retried(tmp_path):
    clean, newest = _two_generations(tmp_path, None)
    plan = FaultPlan()
    plan.arm("persist.restore", at=0)
    with engaged(plan):
        restored = restore_snapshot(tmp_path)
    # The injected fault hit the first restore attempt; the retry
    # succeeded without walking back a generation.
    assert restored.generation == newest
    assert restored.fallback_generations == []
    assert plan.injected == 1
    assert plan.unrecovered() == []
    _assert_answers(restored)


# -- quick_verify_manifest unit ------------------------------------------


def test_quick_verify_catches_torn_and_missing_files(tmp_path):
    _, newest = _two_generations(tmp_path, None)
    manifest = read_manifest(tmp_path, newest)
    quick_verify_manifest(tmp_path, manifest)  # clean: no error
    entry = max(
        manifest["arrays"].values(), key=lambda e: int(e["nbytes"])
    )
    path = tmp_path / entry["file"]
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(PersistError, match="torn"):
        quick_verify_manifest(tmp_path, manifest)
    path.unlink()
    with pytest.raises(PersistError, match="missing"):
        quick_verify_manifest(tmp_path, manifest)
    path.write_bytes(payload)
    quick_verify_manifest(tmp_path, manifest)  # healed: clean again
