"""Snapshot round trips through the differential fingerprint oracle.

Each test replays one interleaved read/write trace twice over:

* the naive sorted-array reference engine, start to finish, giving the
  expected per-run digest;
* a real engine path that is **checkpointed mid-trace, discarded, and
  restored from disk** before finishing the trace.

The combined fingerprint of the interrupted run must equal the
reference digest bit for bit -- a restore that loses a staged update,
a piece-map cut or one clock tick shows up as a digest mismatch.
Restored indexes must also still pass ``check_invariants``, and piece
maps must come back exactly as refined as they were captured (the
zero-re-crack restart claim).
"""

import numpy as np
import pytest

from repro.bench.oracle import TraceFingerprint, reference_results
from repro.engine.query import RangeQuery
from repro.errors import PersistError
from repro.persist import SnapshotManager, restore_snapshot
from repro.serving import ServingFrontend
from repro.serving.window import WindowEntry
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table
from repro.workload.patterns import MixedPattern

ROWS = 12_000
OPS = 160
SEED = 42
DOMAIN = (1.0, 100_000_000.0)
COLUMNS = ("A1", "A2")


def _fresh_db() -> Database:
    db = Database(clock=SimClock())
    db.add_table(build_paper_table(rows=ROWS, columns=2, seed=SEED))
    return db


def _trace():
    pattern = MixedPattern(
        columns=list(COLUMNS),
        domain_low=DOMAIN[0],
        domain_high=DOMAIN[1],
        op_count=OPS,
        write_ratio=0.25,
        batch_size=8,
        seed=SEED,
    )
    db = _fresh_db()
    trace = pattern.ops(db.table("R"))
    _, reference = reference_results(db, pattern.refs(), trace)
    return trace, reference


def _stage(db, op, fingerprint) -> None:
    pending = db.catalog.table(op.ref.table).updates_for(op.ref.column)
    if op.kind == "insert":
        pending.stage_inserts(np.asarray(op.values))
    else:
        pending.stage_deletes(
            np.asarray(op.positions, dtype=np.int64),
            np.asarray(op.values),
        )
    fingerprint.note_update()


def _replay_span(db, session, trace, fingerprint, start, stop) -> None:
    for op in trace[start:stop]:
        if op.is_query:
            result = session.run_query(RangeQuery(op.ref, op.low, op.high))
            fingerprint.note_query(result.values())
        else:
            _stage(db, op, fingerprint)


def _assert_digest(fingerprint: TraceFingerprint, reference: dict) -> None:
    assert fingerprint.as_dict()["result_sha256"] == (
        reference["result_sha256"]
    )


class TestMidTraceRoundTrip:
    @pytest.mark.parametrize("strategy", ["holistic", "adaptive"])
    def test_restored_run_fingerprints_like_uninterrupted(
        self, tmp_path, strategy
    ):
        trace, reference = _trace()
        cut = len(trace) // 2

        db = _fresh_db()
        session = db.session(strategy, seed=SEED) if (
            strategy == "holistic"
        ) else db.session(strategy)
        fingerprint = TraceFingerprint()
        _replay_span(db, session, trace, fingerprint, 0, cut)
        if strategy == "holistic":
            session.idle(actions=40)
        manager = SnapshotManager(
            tmp_path, db, strategy=session.strategy, session=session,
            verify=True,
        )
        manager.checkpoint(extra={"cursor": cut})
        clock_at_cut = db.clock.now()
        captured_pieces = {
            ref: index.piece_count
            for ref, index in session.strategy.indexes.items()
        }
        del db, session  # the restart boundary: live objects are gone

        restored = restore_snapshot(tmp_path, verify=True)
        assert restored.extra == {"cursor": cut}
        assert restored.db.clock.now() == clock_at_cut
        for ref, index in restored.strategy.indexes.items():
            # Zero re-crack: piece maps come back exactly as refined.
            assert index.piece_count == captured_pieces[ref]
            index.check_invariants()
        _replay_span(
            restored.db, restored.session, trace, fingerprint, cut,
            len(trace),
        )
        _assert_digest(fingerprint, reference)
        for index in restored.strategy.indexes.values():
            index.check_invariants()

    def test_base_columns_restore_as_readonly_memmaps(self, tmp_path):
        trace, _ = _trace()
        db = _fresh_db()
        session = db.session("adaptive")
        fingerprint = TraceFingerprint()
        _replay_span(db, session, trace, fingerprint, 0, 40)
        SnapshotManager(
            tmp_path, db, strategy=session.strategy, session=session
        ).checkpoint()

        def memmap_backed(array) -> bool:
            while array is not None:
                if isinstance(array, np.memmap):
                    return True
                array = getattr(array, "base", None)
            return False

        restored = restore_snapshot(tmp_path)
        column = restored.db.column("R", "A1")
        # coerce_array returns a plain ndarray *view* of the mapping
        # (no copy): the file stays the backing store.
        assert memmap_backed(column.values)
        assert not column.values.flags.writeable
        for index in restored.strategy.indexes.values():
            # Cracker columns are copy-on-write views: writable in
            # memory, never written back to the snapshot files.
            assert isinstance(index.values, np.memmap)
            assert index.values.flags.writeable

    def test_repeated_bounds_do_not_recrack_after_restore(self, tmp_path):
        db = _fresh_db()
        session = db.session("adaptive")
        ref = ColumnRef("R", "A1")
        query = RangeQuery(ref, 10_000.0, 900_000.0)
        before = np.sort(session.run_query(query).values())
        SnapshotManager(
            tmp_path, db, strategy=session.strategy, session=session
        ).checkpoint()

        restored = restore_snapshot(tmp_path)
        index = restored.strategy.indexes[ref]
        cracks = index.crack_count
        again = np.sort(restored.session.run_query(query).values())
        assert index.crack_count == cracks
        assert np.array_equal(before, again)


class TestServingWindows:
    def test_snapshot_between_serving_windows(self, tmp_path):
        trace, reference = _trace()
        window = 16
        clients = 2

        def _serve(frontend, differ, ops, sequences):
            buffer = []

            def flush():
                if not buffer:
                    return
                entries = []
                for i, op in enumerate(buffer):
                    lane = i % clients
                    entries.append(
                        WindowEntry(
                            f"c{lane}",
                            sequences[lane],
                            RangeQuery(op.ref, op.low, op.high),
                        )
                    )
                    sequences[lane] += 1
                for op, result in zip(buffer, frontend.serve_window(entries)):
                    differ.note_query(result.values())
                buffer.clear()

            for op in ops:
                if op.is_query:
                    buffer.append(op)
                    if len(buffer) >= window:
                        flush()
                else:
                    flush()
                    _stage(frontend.db, op, differ)
            flush()

        cut = len(trace) // 2
        db = _fresh_db()
        kernel = db.session("holistic", seed=SEED).strategy
        frontend = ServingFrontend(db, kernel)
        for i in range(clients):
            frontend.add_client(f"c{i}")
        fingerprint = TraceFingerprint()
        sequences = [0] * clients
        _serve(frontend, fingerprint, trace[:cut], sequences)
        SnapshotManager(tmp_path, db, strategy=kernel).checkpoint()
        del db, kernel, frontend

        restored = restore_snapshot(tmp_path)
        frontend = ServingFrontend(restored.db, restored.strategy)
        for i in range(clients):
            frontend.add_client(f"c{i}")
        _serve(frontend, fingerprint, trace[cut:], sequences)
        _assert_digest(fingerprint, reference)
        for index in restored.strategy.indexes.values():
            index.check_invariants()


class TestTuningWorkers:
    def test_snapshot_with_workers_racing_the_workload(self, tmp_path):
        trace, reference = _trace()
        cut = len(trace) // 2

        db = _fresh_db()
        session = db.session("holistic", seed=SEED, num_workers=2)
        kernel = session.strategy
        fingerprint = TraceFingerprint()
        kernel.start_workers()
        kernel.submit_tuning(150)
        try:
            _replay_span(db, session, trace, fingerprint, 0, cut)
            manager = SnapshotManager(tmp_path, db, strategy=kernel,
                                      session=session)
            # Snapshots need settled state: capture is refused while
            # workers may be mid-crack.
            with pytest.raises(PersistError, match="tuning workers"):
                manager.checkpoint()
            kernel.drain_workers()
        finally:
            kernel.stop_workers()
        manager.checkpoint(extra={"cursor": cut})
        del db, session, kernel, manager

        restored = restore_snapshot(tmp_path)
        kernel = restored.strategy
        assert kernel.worker_pool is not None  # num_workers survived
        kernel.start_workers()
        kernel.submit_tuning(150)
        try:
            _replay_span(
                restored.db, restored.session, trace, fingerprint, cut,
                len(trace),
            )
            kernel.drain_workers()
        finally:
            kernel.stop_workers()
        _assert_digest(fingerprint, reference)
        for index in kernel.indexes.values():
            index.check_invariants()


class TestLearnedState:
    def test_monitor_ranking_and_tape_survive_restart(self, tmp_path):
        trace, _ = _trace()
        db = _fresh_db()
        session = db.session("holistic", seed=SEED)
        fingerprint = TraceFingerprint()
        _replay_span(db, session, trace, fingerprint, 0, len(trace) // 2)
        session.idle(actions=30)
        kernel = session.strategy
        SnapshotManager(
            tmp_path, db, strategy=kernel, session=session
        ).checkpoint()

        restored = restore_snapshot(tmp_path)
        live, back = kernel, restored.strategy
        assert back.monitor.export_state() == live.monitor.export_state()
        assert back.ranking.export_state() == live.ranking.export_state()
        assert back.tape.export_state() == live.tape.export_state()
        assert back.idle_windows == live.idle_windows
        assert (
            restored.session.export_state()["cumulative_s"]
            == session.export_state()["cumulative_s"]
        )

    def test_unsupported_strategy_is_refused(self, tmp_path):
        db = _fresh_db()
        session = db.session("adaptive", variant="mdd1r")
        session.run_query(RangeQuery(ColumnRef("R", "A1"), 10.0, 1000.0))
        manager = SnapshotManager(tmp_path, db, strategy=session.strategy)
        with pytest.raises(PersistError, match="not .*supported"):
            manager.checkpoint()
