"""On-disk format: atomic publish, corruption detection, pruning."""

import json

import numpy as np
import pytest

from repro.errors import PersistError
from repro.persist.format import (
    FORMAT_VERSION,
    current_generation,
    generation_name,
    list_generations,
    load_array,
    prune,
    read_current_manifest,
    read_manifest,
    verify_manifest,
    write_generation,
)


def _arrays():
    return {
        "column/R/A1": np.arange(100, dtype=np.int64),
        "index/R/A1/pivots": np.array([10.0, 50.0]),
    }


class TestPublish:
    def test_first_generation_round_trips(self, tmp_path):
        root = tmp_path / "snap"
        generation = write_generation(root, _arrays(), {"tag": 1})
        assert generation == 1
        assert current_generation(root) == 1
        got, manifest = read_current_manifest(root)
        assert got == 1
        assert manifest["meta"] == {"tag": 1}
        values = load_array(root, manifest["arrays"]["column/R/A1"])
        assert np.array_equal(values, np.arange(100))

    def test_generations_increment_and_current_follows(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        generation = write_generation(tmp_path, _arrays(), {})
        assert generation == 2
        assert current_generation(tmp_path) == 2

    def test_missing_root_has_no_generation(self, tmp_path):
        assert current_generation(tmp_path / "nope") is None
        with pytest.raises(PersistError):
            read_current_manifest(tmp_path / "nope")

    def test_carry_forward_references_older_generation(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        _, manifest = read_current_manifest(tmp_path)
        carried = {"column/R/A1": manifest["arrays"]["column/R/A1"]}
        write_generation(
            tmp_path,
            {"index/R/A1/pivots": np.array([10.0, 50.0, 75.0])},
            {},
            carry=carried,
        )
        _, manifest2 = read_current_manifest(tmp_path)
        entry = manifest2["arrays"]["column/R/A1"]
        assert entry["generation"] == 1
        assert entry["file"].startswith(generation_name(1))
        assert np.array_equal(load_array(tmp_path, entry), np.arange(100))

    def test_carry_of_missing_file_is_refused(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        bogus = {
            "x": {
                "file": "gen-000099/x.npy",
                "dtype": "int64",
                "shape": [1],
                "nbytes": 8,
                "sha256": "0" * 64,
                "generation": 99,
            }
        }
        with pytest.raises(PersistError, match="missing file"):
            write_generation(tmp_path, {}, {}, carry=bogus)

    def test_array_written_and_carried_is_refused(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        _, manifest = read_current_manifest(tmp_path)
        carry = {"column/R/A1": manifest["arrays"]["column/R/A1"]}
        with pytest.raises(PersistError, match="both written and carried"):
            write_generation(
                tmp_path, {"column/R/A1": np.arange(3)}, {}, carry=carry
            )


class TestCorruption:
    def test_verify_detects_flipped_bytes(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        _, manifest = read_current_manifest(tmp_path)
        path = tmp_path / manifest["arrays"]["column/R/A1"]["file"]
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistError, match="checksum mismatch"):
            verify_manifest(tmp_path, manifest)

    def test_corrupt_current_pointer(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        (tmp_path / "CURRENT").write_text("garbage\n")
        with pytest.raises(PersistError, match="corrupt CURRENT"):
            current_generation(tmp_path)

    def test_dangling_current_pointer(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        (tmp_path / "CURRENT").write_text("gen-000042\n")
        with pytest.raises(PersistError, match="manifest is missing"):
            current_generation(tmp_path)

    def test_unsupported_format_version(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        path = tmp_path / generation_name(1) / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="not supported"):
            read_manifest(tmp_path, 1)

    def test_load_array_rejects_metadata_mismatch(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        _, manifest = read_current_manifest(tmp_path)
        entry = dict(manifest["arrays"]["column/R/A1"])
        entry["dtype"] = "float64"
        with pytest.raises(PersistError, match="manifest says"):
            load_array(tmp_path, entry)


class TestCrashRecovery:
    def test_leftover_tmp_dir_is_collected(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        leftover = tmp_path / ".tmp-gen-000002"
        leftover.mkdir()
        (leftover / "junk.npy").write_bytes(b"partial write")
        write_generation(tmp_path, _arrays(), {})
        assert not leftover.exists()
        assert current_generation(tmp_path) == 2

    def test_unpublished_generation_is_collected(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        # Crash window: gen dir renamed into place, CURRENT never
        # republished.  The next writer must reclaim the number.
        orphan = tmp_path / generation_name(2)
        orphan.mkdir()
        (orphan / "manifest.json").write_text("{}")
        generation = write_generation(tmp_path, _arrays(), {"fresh": True})
        assert generation == 2
        assert read_manifest(tmp_path, 2)["meta"] == {"fresh": True}

    def test_failed_write_leaves_previous_generation_intact(self, tmp_path):
        write_generation(tmp_path, _arrays(), {"good": True})

        class Boom:
            """Array-like whose serialization fails mid-write."""

            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("disk on fire")

        with pytest.raises(Exception):
            write_generation(tmp_path, {"bad": Boom()}, {})
        assert current_generation(tmp_path) == 1
        assert read_manifest(tmp_path, 1)["meta"] == {"good": True}
        assert not list((tmp_path).glob(".tmp-*"))


class TestPrune:
    def test_prune_drops_unreferenced_keeps_carried(self, tmp_path):
        write_generation(tmp_path, _arrays(), {})
        _, m1 = read_current_manifest(tmp_path)
        # gen 2 rewrites everything -> gen 1 becomes garbage.
        write_generation(tmp_path, _arrays(), {})
        # gen 3 carries gen 2's column -> gen 2 must survive pruning.
        _, m2 = read_current_manifest(tmp_path)
        write_generation(
            tmp_path,
            {"index/R/A1/pivots": np.array([1.0])},
            {},
            carry={"column/R/A1": m2["arrays"]["column/R/A1"]},
        )
        removed = prune(tmp_path)
        assert removed == [generation_name(1)]
        assert list_generations(tmp_path) == [2, 3]
        # The carried array still loads after pruning.
        _, manifest = read_current_manifest(tmp_path)
        verify_manifest(tmp_path, manifest)
