"""Property: any single injected fault leaves answers bit-identical.

One mixed workload -- concurrent serving windows, background tuning
workers, mid-run and final checkpoints, then a restore -- is run once
fault-free to fix a result digest.  Hypothesis then picks an arbitrary
registered fault point and hit index; the same workload with that one
fault armed must produce the *same* digest (every query answered
identically), leave every index invariant-clean, and credit every
injected fault as recovered.
"""

from __future__ import annotations

import hashlib
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

from repro import faults
from repro.engine.query import RangeQuery
from repro.engine.session import make_strategy
from repro.errors import PersistError
from repro.faults import FAULT_POINTS, FaultPlan, engaged
from repro.persist import SnapshotManager, restore_snapshot
from repro.serving import ServingFrontend
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

ROWS = 6_000
SEED = 11
DOMAIN = (1.0, 100_000_000.0)

#: (point, hit) cases.  Publish tampering is pinned to the *final*
#: checkpoint (hit 1): corrupting the first generation poisons files
#: the second generation carries forward by reference, leaving nothing
#: to walk back to -- a two-failure scenario, not a single fault.
CASES = (
    [("workers.perform", h) for h in (0, 3, 6, 9)]
    + [("latch.acquire", h) for h in (0, 2, 4)]
    + [("serving.replay", h) for h in (0, 4, 8, 12, 16, 20)]
    + [
        ("persist.publish.torn", 1),
        ("persist.publish.bitflip", 1),
        ("persist.publish.pointer", 0),
        ("persist.publish.pointer", 1),
        ("persist.restore", 0),
    ]
)

_BASELINE: dict[str, str] = {}


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def _queries(count: int = 32) -> list[RangeQuery]:
    rng = np.random.default_rng(SEED)
    queries = []
    for i in range(count):
        ref = ColumnRef("R", "A1" if i % 2 == 0 else "A2")
        low = float(rng.uniform(DOMAIN[0], DOMAIN[1] * 0.9))
        queries.append(RangeQuery(ref, low, low + float(rng.uniform(1e6, 9e6))))
    return queries


def _digest_result(digest: "hashlib._Hash", result) -> None:
    values = np.sort(np.asarray(result.values(), dtype=np.float64))
    digest.update(str(int(result.count)).encode())
    digest.update(values.tobytes())


def _run(plan: FaultPlan | None) -> str:
    """The workload; returns the run's result digest."""
    digest = hashlib.sha256()
    with tempfile.TemporaryDirectory() as snapdir:
        db = Database(clock=SimClock())
        db.add_table(build_paper_table(rows=ROWS, columns=2, seed=SEED))
        kernel = make_strategy(
            "holistic", db, num_workers=1, cache_target_elements=64, seed=SEED
        )
        frontend = ServingFrontend(db, kernel, depth=4)
        queries = _queries()
        frontend.add_client("c0", queries[0::2])
        frontend.add_client("c1", queries[1::2])
        manager = SnapshotManager(
            snapdir, db, strategy=kernel, session=None, keep_history=True
        )

        def checkpoint() -> None:
            # Snapshots need settled index state: workers are stopped
            # around every checkpoint.
            try:
                manager.checkpoint()
            except PersistError:
                if plan is None:
                    raise
                # An injected garbage CURRENT pointer fails the
                # checkpoint's own read-back: the writer crashes after
                # a partial publish.  The restore below must heal it.

        window = 0
        while True:
            entries = frontend.former.next_window()
            if not entries:
                break
            kernel.start_workers()
            try:
                results = frontend.serve_window(entries)
                kernel.submit_tuning(4)
                kernel.drain_workers()
            finally:
                kernel.stop_workers()
            for result in results:
                _digest_result(digest, result)
            window += 1
            if window == 2:
                checkpoint()
        checkpoint()
        for index in kernel.indexes.values():
            index.check_invariants()

        restored = restore_snapshot(snapdir, verify="eager")
        for query in _queries(4):
            _digest_result(digest, restored.strategy.select(query))
        for index in restored.strategy.indexes.values():
            index.check_invariants()
    return digest.hexdigest()


def _baseline() -> str:
    if "digest" not in _BASELINE:
        _BASELINE["digest"] = _run(None)
    return _BASELINE["digest"]


@settings(max_examples=20, deadline=None)
@given(case=st.sampled_from(CASES))
def test_any_single_fault_is_answer_invisible(case):
    point, hit = case
    assert point in FAULT_POINTS
    plan = FaultPlan(seed=SEED)
    plan.arm(point, at=hit)
    with engaged(plan):
        digest = _run(plan)
    assert digest == _baseline()
    # Whatever fired was healed; late hit indices may simply never
    # fire, which must also leave answers untouched.
    assert plan.unrecovered() == []
