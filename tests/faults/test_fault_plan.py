"""Unit tests for the deterministic fault-injection plane."""

import pytest

from repro import faults
from repro.errors import ConfigError, InjectedFault, LatchTimeout
from repro.faults import (
    FAULT_POINTS,
    TAMPER_POINTS,
    FaultPlan,
    engaged,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends with no plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


# -- arming --------------------------------------------------------------


def test_arm_rejects_unknown_point():
    with pytest.raises(ConfigError, match="unknown fault point"):
        FaultPlan().arm("no.such.point")


def test_arm_rejects_negative_indices():
    with pytest.raises(ConfigError, match="must be >= 0"):
        FaultPlan().arm("workers.perform", at=-1)


def test_tamper_points_are_registered():
    assert TAMPER_POINTS <= set(FAULT_POINTS)


def test_arm_random_is_seed_deterministic():
    schedules = []
    for _ in range(2):
        plan = FaultPlan(seed=7)
        rules = plan.arm_random(5)
        schedules.append([(r.point, sorted(r.at)) for r in rules])
    assert schedules[0] == schedules[1]


# -- firing --------------------------------------------------------------


def test_trip_is_noop_without_plan():
    faults.trip("workers.perform")  # must not raise


def test_trip_fires_only_at_armed_indices():
    plan = FaultPlan()
    plan.arm("workers.perform", at=[1, 3])
    with engaged(plan):
        faults.trip("workers.perform")  # hit 0
        with pytest.raises(InjectedFault) as excinfo:
            faults.trip("workers.perform")  # hit 1
        assert excinfo.value.point == "workers.perform"
        assert excinfo.value.hit == 1
        faults.trip("workers.perform")  # hit 2
        with pytest.raises(InjectedFault):
            faults.trip("workers.perform")  # hit 3
        faults.trip("workers.perform")  # hit 4
    assert plan.injected == 2
    assert plan.hits("workers.perform") == 5


def test_trip_substitutes_error_type_with_point_attribution():
    plan = FaultPlan()
    plan.arm("latch.acquire", at=0)
    with engaged(plan):
        with pytest.raises(LatchTimeout) as excinfo:
            faults.trip("latch.acquire", error=LatchTimeout)
    assert excinfo.value.point == "latch.acquire"
    assert excinfo.value.hit == 0


def test_times_caps_firings_with_at_none():
    plan = FaultPlan()
    plan.arm("serving.replay", at=None, times=2)
    fired = 0
    with engaged(plan):
        for _ in range(5):
            try:
                faults.trip("serving.replay")
            except InjectedFault:
                fired += 1
    assert fired == 2


def test_tamper_returns_event_instead_of_raising():
    plan = FaultPlan()
    plan.arm("persist.publish.torn", at=1)
    with engaged(plan):
        assert faults.tamper("persist.publish.torn") is None
        event = faults.tamper("persist.publish.torn")
        assert event is not None and event.hit == 1
        assert faults.tamper("persist.publish.torn") is None


# -- recovery bookkeeping ------------------------------------------------


def test_recovered_credits_oldest_unrecovered_event():
    plan = FaultPlan()
    plan.arm("workers.perform", at=[0, 1])
    with engaged(plan):
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.trip("workers.perform")
        faults.recovered("workers.perform", "first restart")
    assert len(plan.unrecovered()) == 1
    assert plan.unrecovered()[0].hit == 1
    assert plan.events[0].note == "first restart"


def test_recovered_matching_credits_prefix():
    plan = FaultPlan()
    plan.arm("persist.publish.torn")
    plan.arm("persist.restore")
    with engaged(plan):
        faults.tamper("persist.publish.torn")
        with pytest.raises(InjectedFault):
            faults.trip("persist.restore")
        assert plan.note_recovered_matching("persist.", "walked back") == 2
    assert plan.unrecovered() == []


def test_summary_accounts_per_point():
    plan = FaultPlan(seed=3)
    plan.arm("workers.perform", at=[0, 1])
    with engaged(plan):
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.trip("workers.perform")
        faults.recovered("workers.perform")
    summary = plan.summary()
    assert summary["seed"] == 3
    assert summary["injected"] == 2
    assert summary["recovered"] == 1
    assert summary["per_point"] == {"workers.perform": 2}
    assert [e["hit"] for e in summary["events"]] == [0, 1]


# -- installation --------------------------------------------------------


def test_nested_install_of_other_plan_is_refused():
    plan = FaultPlan()
    with engaged(plan):
        with pytest.raises(ConfigError, match="already installed"):
            faults.install(FaultPlan())
        faults.install(plan)  # re-installing the same plan is fine
    assert faults.active() is None


def test_engaged_uninstalls_on_error():
    plan = FaultPlan()
    plan.arm("workers.perform")
    with pytest.raises(InjectedFault):
        with engaged(plan):
            faults.trip("workers.perform")
    assert faults.active() is None
