"""Unit tests for columns."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.column import Column
from repro.storage.dtypes import INT32


def test_column_basic_properties():
    column = Column("A", np.array([5, 3, 9], dtype=np.int64))
    assert column.name == "A"
    assert column.row_count == 3
    assert len(column) == 3
    assert column.ctype.name == "int64"


def test_column_stats():
    column = Column("A", np.array([5, 3, 9], dtype=np.int64))
    assert column.stats.min_value == 3
    assert column.stats.max_value == 9
    assert column.stats.row_count == 3
    assert column.stats.value_span == 6


def test_empty_column_stats():
    column = Column("A", np.array([], dtype=np.int64))
    assert column.row_count == 0
    assert column.stats.row_count == 0


def test_base_array_is_read_only():
    column = Column("A", np.array([1, 2, 3], dtype=np.int64))
    with pytest.raises(ValueError):
        column.values[0] = 99


def test_copy_values_is_writable_and_independent():
    column = Column("A", np.array([1, 2, 3], dtype=np.int64))
    copy = column.copy_values()
    copy[0] = 99
    assert column.values[0] == 1


def test_with_appended_builds_new_column():
    column = Column("A", np.array([1, 2], dtype=np.int64))
    grown = column.with_appended([3, 4])
    assert grown.row_count == 4
    assert column.row_count == 2
    assert grown.stats.max_value == 4


def test_explicit_ctype_coerces():
    column = Column("A", np.array([1, 2], dtype=np.int64), INT32)
    assert column.ctype is INT32
    assert column.values.dtype == np.int32


def test_nbytes_accounts_for_width():
    col32 = Column("A", np.array([1, 2], dtype=np.int64), INT32)
    col64 = Column("B", np.array([1, 2], dtype=np.int64))
    assert col32.nbytes == 8
    assert col64.nbytes == 16


def test_empty_name_rejected():
    with pytest.raises(SchemaError):
        Column("", np.array([1], dtype=np.int64))
