"""Unit tests for the database facade."""

import pytest

from repro.errors import ConfigError
from repro.simtime.clock import SimClock, WallClock
from repro.simtime.model import CostModel
from repro.storage.database import Database
from repro.storage.loader import build_paper_table


def test_database_defaults_to_sim_clock():
    db = Database()
    assert isinstance(db.clock, SimClock)
    assert db.cost_model is db.clock.model


def test_database_with_wall_clock_gets_default_model():
    db = Database(clock=WallClock())
    assert isinstance(db.cost_model, CostModel)


def test_database_with_explicit_model():
    model = CostModel(scale=100.0)
    db = Database(cost_model=model)
    assert db.cost_model is model
    assert db.clock.model is model


def test_schema_shortcuts():
    db = Database()
    db.add_table(build_paper_table(rows=10, columns=2, seed=1))
    assert db.table("R").column_count == 2
    assert db.column("R", "A2").row_count == 10


def test_create_table_shortcut():
    db = Database()
    table = db.create_table("S")
    assert db.catalog.has_table("S")
    assert table.name == "S"


def test_session_factory_dispatches_strategies():
    db = Database()
    db.add_table(build_paper_table(rows=10, columns=1, seed=1))
    for name in ("scan", "adaptive", "offline", "online", "holistic"):
        session = db.session(name)
        assert session.strategy.name == name


def test_session_factory_rejects_unknown():
    db = Database()
    with pytest.raises(ConfigError, match="unknown strategy"):
        db.session("btree")
