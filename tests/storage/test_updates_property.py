"""Property tests: PendingUpdates vs the exact NaivePending model.

The delta store's range lookups are binary searches over dtype-coerced
arrays; the reference model evaluates ``low <= v < high`` with exact
Python arithmetic.  Arbitrary interleavings of staging, peeking, and
consuming must agree between the two -- including at the adversarial
magnitudes where ``searchsorted`` used to diverge (int64 values beyond
2^53 probed with float bounds; see ``exact_range_cuts``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.dtypes import FLOAT64, INT32, INT64
from repro.storage.updates import PendingUpdates, exact_range_cuts
from util.oracle import NaivePending

# Value pools per dtype, salted with the magnitudes that break a
# float64-promoting binary search: 2^53 neighbours (where float64 loses
# integer exactness) and ~6e17 (the original fuzz failure's scale).
_INT64_POOL = [
    0,
    1,
    -1,
    2**53 - 1,
    2**53,
    2**53 + 1,
    -(2**53) - 1,
    629_131_755_568_097_452,
    -629_131_755_568_097_452,
    629_131_755_568_097_453,
    np.iinfo(np.int64).max,
    np.iinfo(np.int64).min,
]
_INT32_POOL = [0, 1, -1, 2**31 - 1, -(2**31), 123_456_789]
_FLOAT_POOL = [
    0.0,
    -0.0,
    1.5,
    -1.5,
    6.291317555680974e17,
    np.nextafter(1.0, 2.0),
    5e-324,  # smallest subnormal
    1e308,
]

_BOUND_POOL = [
    float(v)
    for v in (
        0.0,
        -0.0,
        0.5,
        2.0**53,
        float(2**53 + 2),
        6.291317555680974e17,
        -6.291317555680974e17,
        1.649365601384583e17,
        np.nextafter(6.291317555680974e17, 0.0),
        2.0**63,
        -(2.0**63),
        1e308,
        float("nan"),
    )
]


def _values(pool: list) -> st.SearchStrategy:
    return st.lists(st.sampled_from(pool), min_size=0, max_size=6)


def _ops(pool: list) -> st.SearchStrategy:
    bound = st.sampled_from(_BOUND_POOL)
    bounds = st.tuples(bound, bound)
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), _values(pool)),
            st.tuples(st.just("delete"), _values(pool)),
            st.tuples(st.just("peek_ins"), bounds),
            st.tuples(st.just("peek_del"), bounds),
            st.tuples(st.just("take_ins"), bounds),
            st.tuples(st.just("take_del"), bounds),
            st.tuples(st.just("clear"), st.just(None)),
        ),
        min_size=1,
        max_size=24,
    )


def _replay(ctype, dtype, ops) -> None:
    real = PendingUpdates(ctype)
    naive = NaivePending(ctype)
    next_position = 0
    for kind, payload in ops:
        if kind == "insert":
            values = np.asarray(payload, dtype=dtype)
            assert real.stage_inserts(values) == naive.stage_inserts(values)
        elif kind == "delete":
            values = np.asarray(payload, dtype=dtype)
            # Positions drawn from a small window so restaging a
            # previously-consumed position actually happens.
            positions = np.arange(
                next_position, next_position + len(values), dtype=np.int64
            ) % 7
            next_position += len(values)
            assert real.stage_deletes(positions, values) == (
                naive.stage_deletes(positions, values)
            )
        elif kind == "clear":
            real.clear()
            naive.clear()
        else:
            low, high = payload
            if kind == "peek_ins":
                got = real.inserts_in_range(low, high)
                want = naive.inserts_in_range(low, high)
            elif kind == "peek_del":
                got = real.deletes_in_range(low, high)
                want = naive.deletes_in_range(low, high)
            elif kind == "take_ins":
                got = real.take_inserts_in_range(low, high)
                want = naive.take_inserts_in_range(low, high)
            else:
                got = real.take_deletes_in_range(low, high)
                want = naive.take_deletes_in_range(low, high)
            assert list(got) == want, (kind, low, high)
        assert real.pending_insert_count == naive.pending_insert_count
        assert real.pending_delete_count == naive.pending_delete_count


@settings(max_examples=60, deadline=None)
@given(ops=_ops(_INT64_POOL))
def test_interleavings_match_naive_int64(ops) -> None:
    _replay(INT64, np.int64, ops)


@settings(max_examples=40, deadline=None)
@given(ops=_ops(_INT32_POOL))
def test_interleavings_match_naive_int32(ops) -> None:
    _replay(INT32, np.int32, ops)


@settings(max_examples=40, deadline=None)
@given(ops=_ops(_FLOAT_POOL))
def test_interleavings_match_naive_float64(ops) -> None:
    _replay(FLOAT64, np.float64, ops)


# -- regression anchors for the exact_range_cuts fix -------------------


def test_int64_store_float_bounds_beyond_2_53() -> None:
    """The original fuzz failure: searchsorted's float64 promotion
    rounded -629131755568097452 onto the low bound and returned it
    from an interval it is not in."""
    pending = PendingUpdates(INT64)
    pending.stage_deletes([5], [-629_131_755_568_097_452])
    got = pending.deletes_in_range(
        -6.291317555680974e17, 1.649365601384583e17
    )
    assert list(got) == []


def test_exact_edges_at_2_53_neighbours() -> None:
    pending = PendingUpdates(INT64)
    pending.stage_inserts([2**53, 2**53 + 1, 2**53 - 1])
    # float(2^53) == 2^53 exactly: half-open [2^53, 2^53+2) keeps the
    # first two, and 2^53+1 must not be lost to rounding.
    got = pending.inserts_in_range(2.0**53, float(2**53 + 2))
    assert list(got) == [2**53, 2**53 + 1]


def test_float_store_keeps_fractional_bounds() -> None:
    pending = PendingUpdates(FLOAT64)
    pending.stage_inserts([5.25, 5.75, 6.0])
    assert list(pending.inserts_in_range(5.5, 6.0)) == [5.75]


def test_python_int_bounds_stay_exact() -> None:
    pending = PendingUpdates(INT64)
    pending.stage_inserts([2**53 + 1])
    assert list(pending.inserts_in_range(2**53 + 1, 2**53 + 2)) == [
        2**53 + 1
    ]
    assert list(pending.inserts_in_range(2**53 + 2, 2**62)) == []


def test_exact_range_cuts_extreme_bounds() -> None:
    store = np.array([np.iinfo(np.int64).min, 0, np.iinfo(np.int64).max])
    assert exact_range_cuts(store, float("nan")) == 3
    assert exact_range_cuts(store, 2.0**63) == 3
    assert exact_range_cuts(store, -(2.0**63)) == 0
    assert exact_range_cuts(store, 1e308) == 3
    assert exact_range_cuts(store, -1e308) == 0
    assert list(exact_range_cuts(store, np.array([0.5, -0.5]))) == [2, 1]


def test_take_deletes_keeps_positions_aligned() -> None:
    pending = PendingUpdates(INT64)
    pending.stage_deletes([10, 11, 12], [100, 200, 300])
    taken = pending.take_deletes_in_range(150, 250)
    assert list(taken) == [200]
    # Position 11's pair was consumed: restaging it must succeed,
    # while 10 and 12 are still staged and dedup away.
    assert pending.stage_deletes([10, 11, 12], [100, 201, 300]) == 1
    assert list(pending.deletes_in_range(0, 1000)) == [100, 201, 300]


# -- regression anchors for the NaN-high-bound fix ---------------------
#
# exact_range_cuts maps NaN to len(store) ("first element >= NaN" --
# nothing is), which is the empty range when NaN is the *low* cut but
# selected the whole tail when composed as a range's *high* cut: peeks
# returned every value >= low and take_* physically consumed the store.
# Found by the differential audit of clear/drain/restage interleavings.


def test_nan_high_bound_takes_nothing_int32() -> None:
    pending = PendingUpdates(INT32)
    pending.stage_deletes(
        [0, 1, 2, 3], [-(2**31), -(2**31), -1, 200]
    )
    taken = pending.take_deletes_in_range(-(2.0**63), float("nan"))
    assert list(taken) == []
    assert pending.pending_delete_count == 4
    assert len(pending.delete_positions) == 4


def test_nan_high_bound_peeks_nothing_int64() -> None:
    pending = PendingUpdates(INT64)
    pending.stage_inserts([2**53 + 1, 629_131_755_568_097_452])
    assert list(pending.inserts_in_range(200.0, float("nan"))) == []
    assert pending.pending_insert_count == 2


def test_nan_bounds_take_nothing_float64() -> None:
    pending = PendingUpdates(FLOAT64)
    pending.stage_inserts([1e308])
    assert (
        list(pending.take_inserts_in_range(-(2.0**63), float("nan"))) == []
    )
    assert list(pending.take_inserts_in_range(float("nan"), 1e309)) == []
    assert pending.pending_insert_count == 1


def test_pending_window_nan_bounds_match_sequential() -> None:
    from repro.engine.operators import PendingWindow

    pending = PendingUpdates(INT64)
    pending.stage_inserts([10, 20, 30])
    pending.stage_deletes([7], [25])
    lows = np.array([0.0, float("nan"), 15.0])
    highs = np.array([float("nan"), 100.0, 100.0])
    window = PendingWindow(pending, lows, highs)
    for i, (low, high) in enumerate(zip(lows, highs)):
        seq_ins = pending.inserts_in_range(low, high)
        seq_del = pending.deletes_in_range(low, high)
        assert window._ins_hi[i] - window._ins_lo[i] == len(seq_ins)
        assert window._del_hi[i] - window._del_lo[i] == len(seq_del)
    assert list(window.overlapping_slots()) == [False, False, True]


def test_clear_makes_consumed_positions_restageable() -> None:
    pending = PendingUpdates(INT64)
    naive = NaivePending(INT64)
    for store in (pending, naive):
        store.stage_deletes([1, 2], [10, 20])
        store.clear()
    assert pending.pending_insert_count == 0
    assert pending.pending_delete_count == 0
    # After clear every position is restageable, exactly once.
    assert pending.stage_deletes([1, 2, 1], [11, 21, 12]) == (
        naive.stage_deletes([1, 2, 1], [11, 21, 12])
    )
    assert list(pending.deletes_in_range(0, 100)) == (
        naive.deletes_in_range(0, 100)
    )


def test_pending_window_agrees_with_sequential_beyond_2_53() -> None:
    from repro.engine.operators import PendingWindow

    pending = PendingUpdates(INT64)
    pending.stage_inserts(
        [629_131_755_568_097_452, 629_131_755_568_097_453, 42]
    )
    pending.stage_deletes([3], [-629_131_755_568_097_452])
    lows = np.array([-6.291317555680974e17, 0.0, 6.291317555680974e17])
    highs = np.array([1.649365601384583e17, 1e18, 6.29131755568097472e17])
    window = PendingWindow(pending, lows, highs)
    for i, (low, high) in enumerate(zip(lows, highs)):
        seq_ins = pending.inserts_in_range(low, high)
        seq_del = pending.deletes_in_range(low, high)
        assert window._ins_hi[i] - window._ins_lo[i] == len(seq_ins)
        assert window._del_hi[i] - window._del_lo[i] == len(seq_del)
        assert bool(window.overlapping_slots()[i]) == bool(
            len(seq_ins) or len(seq_del)
        )
