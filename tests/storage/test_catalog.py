"""Unit tests for the catalog."""

import numpy as np
import pytest

from repro.errors import DuplicateObjectError, UnknownTableError
from repro.storage.catalog import Catalog, ColumnRef
from repro.storage.column import Column
from repro.storage.table import Table


def _table(name: str) -> Table:
    table = Table(name)
    table.add_column(Column("A1", np.array([1, 5, 3], dtype=np.int64)))
    return table


def test_create_and_lookup():
    catalog = Catalog()
    catalog.create_table("R")
    assert catalog.has_table("R")
    assert catalog.table("R").name == "R"


def test_register_prebuilt_table():
    catalog = Catalog()
    catalog.register_table(_table("S"))
    assert catalog.table_names == ["S"]


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.create_table("R")
    with pytest.raises(DuplicateObjectError):
        catalog.create_table("R")
    with pytest.raises(DuplicateObjectError):
        catalog.register_table(_table("R"))


def test_unknown_table_lookup():
    catalog = Catalog()
    with pytest.raises(UnknownTableError):
        catalog.table("missing")


def test_drop_table():
    catalog = Catalog()
    catalog.create_table("R")
    catalog.drop_table("R")
    assert not catalog.has_table("R")
    with pytest.raises(UnknownTableError):
        catalog.drop_table("R")


def test_column_resolution_via_ref():
    catalog = Catalog()
    catalog.register_table(_table("S"))
    column = catalog.column(ColumnRef("S", "A1"))
    assert column.name == "A1"


def test_entries_describe_every_column():
    catalog = Catalog()
    catalog.register_table(_table("S"))
    catalog.register_table(_table("T"))
    entries = catalog.entries()
    assert len(entries) == 2
    refs = {str(e.ref) for e in entries}
    assert refs == {"S.A1", "T.A1"}
    entry = entries[0]
    assert entry.stats.row_count == 3
    assert entry.nbytes == 3 * entry.element_bytes


def test_column_ref_renders_qualified_name():
    assert str(ColumnRef("R", "A7")) == "R.A7"
