"""Unit tests for selection views."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.storage.views import (
    MaterializedResult,
    PositionsView,
    RangeView,
    concat_results,
)


@pytest.fixture
def array() -> np.ndarray:
    return np.array([10, 20, 30, 40, 50], dtype=np.int64)


def test_range_view_slices_lazily(array):
    view = RangeView(array, 1, 4)
    assert view.count == 3
    assert view.values().tolist() == [20, 30, 40]
    assert view.positions() is None


def test_range_view_with_rowids(array):
    rowids = np.array([4, 3, 2, 1, 0], dtype=np.int64)
    view = RangeView(array, 1, 3, rowids)
    assert view.positions().tolist() == [3, 2]


def test_range_view_rejects_bad_bounds(array):
    with pytest.raises(QueryError):
        RangeView(array, -1, 3)
    with pytest.raises(QueryError):
        RangeView(array, 3, 2)
    with pytest.raises(QueryError):
        RangeView(array, 0, 6)


def test_empty_range_view(array):
    view = RangeView(array, 2, 2)
    assert view.count == 0
    assert view.values().tolist() == []


def test_positions_view(array):
    view = PositionsView(array, np.array([0, 2, 4]))
    assert view.count == 3
    assert view.values().tolist() == [10, 30, 50]
    assert view.positions().tolist() == [0, 2, 4]


def test_materialized_result():
    result = MaterializedResult(np.array([1, 2], dtype=np.int64))
    assert result.count == 2
    assert result.positions() is None


def test_concat_results_merges_values(array):
    a = RangeView(array, 0, 2)
    b = PositionsView(array, np.array([4]))
    merged = concat_results(a, b)
    assert merged.count == 3
    assert merged.values().tolist() == [10, 20, 50]
    # RangeView without rowids has no positions -> merged has none.
    assert merged.positions() is None


def test_concat_results_keeps_positions_when_both_have_them(array):
    rowids = np.arange(5, dtype=np.int64)
    a = RangeView(array, 0, 2, rowids)
    b = PositionsView(array, np.array([4]))
    merged = concat_results(a, b)
    assert merged.positions().tolist() == [0, 1, 4]
