"""Unit tests for tables."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateObjectError,
    SchemaError,
    UnknownColumnError,
)
from repro.storage.column import Column
from repro.storage.table import Table


def _column(name: str, values: list[int]) -> Column:
    return Column(name, np.array(values, dtype=np.int64))


def test_add_and_fetch_columns():
    table = Table("R")
    table.add_column(_column("A1", [1, 2, 3]))
    table.add_column(_column("A2", [4, 5, 6]))
    assert table.column_names == ["A1", "A2"]
    assert table.column("A2").values[0] == 4
    assert table.row_count == 3
    assert table.column_count == 2


def test_duplicate_column_rejected():
    table = Table("R")
    table.add_column(_column("A1", [1]))
    with pytest.raises(DuplicateObjectError):
        table.add_column(_column("A1", [2]))


def test_row_count_mismatch_rejected():
    table = Table("R")
    table.add_column(_column("A1", [1, 2]))
    with pytest.raises(SchemaError, match="rows"):
        table.add_column(_column("A2", [1, 2, 3]))


def test_unknown_column_lookup():
    table = Table("R")
    with pytest.raises(UnknownColumnError):
        table.column("missing")
    with pytest.raises(UnknownColumnError):
        table.updates_for("missing")


def test_iteration_yields_columns():
    table = Table("R")
    table.add_column(_column("A1", [1]))
    table.add_column(_column("A2", [2]))
    assert [c.name for c in table] == ["A1", "A2"]


def test_insert_rows_stages_per_column_deltas():
    table = Table("R")
    table.add_column(_column("A1", [1, 2]))
    table.add_column(_column("A2", [3, 4]))
    staged = table.insert_rows({"A1": [10], "A2": [20]})
    assert staged == 1
    assert table.updates_for("A1").pending_insert_count == 1
    assert table.updates_for("A2").pending_insert_count == 1


def test_insert_rows_requires_all_columns():
    table = Table("R")
    table.add_column(_column("A1", [1]))
    table.add_column(_column("A2", [2]))
    with pytest.raises(SchemaError, match="missing columns"):
        table.insert_rows({"A1": [10]})


def test_insert_rows_rejects_ragged_input():
    table = Table("R")
    table.add_column(_column("A1", [1]))
    table.add_column(_column("A2", [2]))
    with pytest.raises(SchemaError, match="ragged"):
        table.insert_rows({"A1": [10], "A2": [20, 30]})


def test_empty_table_name_rejected():
    with pytest.raises(SchemaError):
        Table("")


def test_nbytes_sums_columns():
    table = Table("R")
    table.add_column(_column("A1", [1, 2]))
    table.add_column(_column("A2", [3, 4]))
    assert table.nbytes == 32
