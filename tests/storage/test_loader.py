"""Unit tests for data generation and CSV loading."""

import numpy as np
import pytest

from repro.errors import SchemaError, WorkloadError
from repro.storage.loader import (
    build_paper_table,
    generate_clustered_column,
    generate_uniform_column,
    generate_zipf_column,
    infer_int_type,
    load_csv,
)


def test_uniform_column_domain_and_size():
    column = generate_uniform_column("A", rows=5_000, seed=1)
    assert column.row_count == 5_000
    assert column.stats.min_value >= 1
    assert column.stats.max_value <= 100_000_000


def test_uniform_column_is_seed_deterministic():
    a = generate_uniform_column("A", rows=100, seed=9)
    b = generate_uniform_column("A", rows=100, seed=9)
    assert np.array_equal(a.values, b.values)


def test_uniform_column_roughly_uniform():
    column = generate_uniform_column("A", rows=50_000, seed=2)
    # Median of U[1, 1e8] should be near the middle.
    median = float(np.median(column.values))
    assert 4e7 < median < 6e7


def test_uniform_rejects_bad_parameters():
    with pytest.raises(WorkloadError):
        generate_uniform_column("A", rows=-1)
    with pytest.raises(WorkloadError):
        generate_uniform_column("A", rows=10, low=5, high=4)


def test_zipf_column_is_skewed():
    column = generate_zipf_column("A", rows=20_000, seed=3)
    values = column.values
    # Zipf(1.2): value 1 draws ~1/zeta(1.2) ~ 18% of the mass, far
    # more than any uniform distribution over the domain would give.
    ones = int(np.count_nonzero(values == 1))
    assert ones > len(values) * 0.1
    counts = np.bincount(values[values < 100].astype(np.int64))
    assert int(np.argmax(counts)) == 1


def test_zipf_rejects_bad_exponent():
    with pytest.raises(WorkloadError):
        generate_zipf_column("A", rows=10, exponent=1.0)


def test_clustered_column_concentrates_values():
    column = generate_clustered_column(
        "A", rows=10_000, clusters=3, cluster_width=100, seed=4
    )
    unique = np.unique(column.values)
    # 3 clusters of width ~200 -> far fewer distinct values than rows.
    assert len(unique) < 1_000


def test_build_paper_table_schema():
    table = build_paper_table(rows=1_000, columns=4, seed=5)
    assert table.name == "R"
    assert table.column_names == ["A1", "A2", "A3", "A4"]
    assert table.row_count == 1_000
    # Independent streams per attribute.
    assert not np.array_equal(
        table.column("A1").values, table.column("A2").values
    )


def test_build_paper_table_rejects_zero_columns():
    with pytest.raises(WorkloadError):
        build_paper_table(rows=10, columns=0)


def test_load_csv_roundtrip(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\n1,2.5\n3,4.5\n")
    table = load_csv(path, "T", column_types={"b": "float64"})
    assert table.column("a").values.tolist() == [1, 3]
    assert table.column("b").values.tolist() == [2.5, 4.5]


def test_load_csv_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        load_csv(path, "T")


def test_load_csv_rejects_ragged_rows(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b\n1,2\n3\n")
    with pytest.raises(SchemaError, match="ragged"):
        load_csv(path, "T")


def test_load_csv_rejects_unparsable_values(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a\nnot_a_number\n")
    with pytest.raises(SchemaError):
        load_csv(path, "T")


def test_infer_int_type():
    assert infer_int_type(0, 1_000).name == "int32"
    assert infer_int_type(0, 2**40).name == "int64"
