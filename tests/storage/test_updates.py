"""Unit tests for pending-update delta stores."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.dtypes import INT64
from repro.storage.updates import PendingUpdates


@pytest.fixture
def pending() -> PendingUpdates:
    return PendingUpdates(INT64)


def test_fresh_delta_is_empty(pending):
    assert not pending.has_pending()
    assert pending.pending_insert_count == 0
    assert pending.pending_delete_count == 0


def test_stage_inserts_keeps_values_sorted(pending):
    pending.stage_inserts([5, 1, 9])
    pending.stage_inserts([3])
    assert pending.pending_insert_count == 4
    assert pending.inserts_in_range(0, 100).tolist() == [1, 3, 5, 9]


def test_inserts_in_range_is_half_open(pending):
    pending.stage_inserts([1, 5, 9])
    assert pending.inserts_in_range(1, 9).tolist() == [1, 5]
    assert pending.inserts_in_range(2, 5).tolist() == []


def test_take_inserts_consumes_only_range(pending):
    pending.stage_inserts([1, 5, 9])
    taken = pending.take_inserts_in_range(4, 10)
    assert taken.tolist() == [5, 9]
    assert pending.inserts_in_range(0, 100).tolist() == [1]


def test_stage_deletes_requires_aligned_arrays(pending):
    with pytest.raises(SchemaError, match="align"):
        pending.stage_deletes([1, 2], [10])


def test_deletes_in_range(pending):
    pending.stage_deletes([0, 1, 2], [10, 20, 30])
    assert pending.deletes_in_range(15, 35).tolist() == [20, 30]


def test_take_deletes_consumes_range(pending):
    pending.stage_deletes([0, 1, 2], [10, 20, 30])
    taken = pending.take_deletes_in_range(5, 25)
    assert taken.tolist() == [10, 20]
    assert pending.deletes_in_range(0, 100).tolist() == [30]
    assert pending.pending_delete_count == 1


def test_clear_resets_everything(pending):
    pending.stage_inserts([1])
    pending.stage_deletes([0], [5])
    pending.clear()
    assert not pending.has_pending()


def test_duplicate_values_kept_as_multiset(pending):
    pending.stage_inserts([7, 7, 7])
    assert pending.inserts_in_range(7, 8).tolist() == [7, 7, 7]
    taken = pending.take_inserts_in_range(7, 8)
    assert len(taken) == 3


def test_insert_dtype_coercion(pending):
    pending.stage_inserts(np.array([1.0, 2.0]))
    assert pending.inserts_in_range(0, 10).dtype == np.int64


# -- incremental staging (ISSUE 4) ---------------------------------------


def test_stage_inserts_stays_sorted_across_many_batches():
    import numpy as np

    from repro.storage.dtypes import INT64
    from repro.storage.updates import PendingUpdates

    pending = PendingUpdates(INT64)
    rng = np.random.default_rng(5)
    staged = []
    for _ in range(12):
        batch = rng.integers(0, 1000, size=int(rng.integers(0, 9)))
        pending.stage_inserts(batch)
        staged.extend(batch.tolist())
    assert pending.insert_values.tolist() == sorted(staged)


def test_stage_deletes_keeps_positions_aligned_across_batches():
    """Interleaved delete batches must keep (position, value) pairs
    aligned under the sorted-by-value order, so range consumption
    removes matching pairs (regression: the old full re-sort appended
    positions out of order)."""
    import numpy as np

    from repro.storage.dtypes import INT64
    from repro.storage.updates import PendingUpdates

    pending = PendingUpdates(INT64)
    pending.stage_deletes([10, 11], [500, 100])
    pending.stage_deletes([12, 13], [300, 50])
    assert pending.deleted_values.tolist() == [50, 100, 300, 500]
    assert pending._delete_positions.tolist() == [13, 11, 12, 10]
    taken = pending.take_deletes_in_range(90, 310)
    assert taken.tolist() == [100, 300]
    assert pending._delete_positions.tolist() == [13, 10]


def test_stage_deletes_dedupes_double_staged_positions():
    """Regression: staging the same base position twice before any
    merge used to double-count the removal during range consumption."""
    import numpy as np

    from repro.storage.dtypes import INT64
    from repro.storage.updates import PendingUpdates

    pending = PendingUpdates(INT64)
    # Duplicate inside one batch.
    assert pending.stage_deletes([7, 7], [40, 40]) == 1
    # Duplicate across batches (plus one genuinely fresh position).
    assert pending.stage_deletes([7, 8], [40, 60]) == 1
    assert pending.pending_delete_count == 2
    assert pending.deleted_values.tolist() == [40, 60]
    assert pending._delete_positions.tolist() == [7, 8]
    taken = pending.take_deletes_in_range(0, 100)
    assert taken.tolist() == [40, 60]
    assert pending.pending_delete_count == 0
