"""Unit tests for the column type system."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.dtypes import (
    FLOAT64,
    INT32,
    INT64,
    coerce_array,
    type_by_name,
    type_for_array,
)


def test_type_by_name_resolves_all_supported():
    assert type_by_name("int32") is INT32
    assert type_by_name("int64") is INT64
    assert type_by_name("float64") is FLOAT64


def test_type_by_name_rejects_unknown():
    with pytest.raises(SchemaError, match="unsupported column type"):
        type_by_name("varchar")


def test_type_for_array_infers_from_dtype():
    assert type_for_array(np.array([1, 2], dtype=np.int64)) is INT64
    assert type_for_array(np.array([1.5])) is FLOAT64


def test_type_for_array_rejects_unsupported_dtype():
    with pytest.raises(SchemaError):
        type_for_array(np.array(["a", "b"]))


def test_coerce_accepts_matching_dtype():
    data = np.array([3, 1, 2], dtype=np.int64)
    out = coerce_array(data, INT64)
    assert out.dtype == np.int64
    assert np.array_equal(out, data)


def test_coerce_int_from_whole_floats():
    out = coerce_array(np.array([1.0, 2.0]), INT64)
    assert out.dtype == np.int64
    assert np.array_equal(out, [1, 2])


def test_coerce_rejects_fractional_floats_into_int():
    with pytest.raises(SchemaError, match="fractional"):
        coerce_array(np.array([1.5, 2.0]), INT64)


def test_coerce_rejects_multidimensional():
    with pytest.raises(SchemaError, match="1-D"):
        coerce_array(np.zeros((2, 2)), INT64)


def test_coerce_int32_roundtrip():
    out = coerce_array(np.array([1, 2, 3], dtype=np.int64), INT32)
    assert out.dtype == np.int32


def test_element_bytes_match_dtype():
    assert INT32.element_bytes == 4
    assert INT64.element_bytes == 8
    assert FLOAT64.element_bytes == 8
