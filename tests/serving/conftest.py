"""Shared fixtures and helpers for the serving front-end tests."""

from __future__ import annotations

import numpy as np

from repro.simtime.clock import SimClock
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

ROWS = 8_000
COLUMNS = 2
DOMAIN_LOW = 1
DOMAIN_HIGH = 100_000_000


def fresh_db(seed: int = 42, pending: bool = False) -> Database:
    """A deterministic two-column database, optionally with a staged
    trickle-update delta store (the steady-state every query consults)."""
    db = Database(clock=SimClock())
    db.add_table(build_paper_table(rows=ROWS, columns=COLUMNS, seed=seed))
    if pending:
        rng = np.random.default_rng(seed + 2)
        table = db.table("R")
        for c in range(1, COLUMNS + 1):
            column = f"A{c}"
            store = table.updates_for(column)
            store.stage_inserts(
                rng.integers(DOMAIN_LOW, DOMAIN_HIGH + 1, size=30)
            )
            values = db.column("R", column).values
            positions = rng.integers(0, ROWS, size=15)
            store.stage_deletes(positions, values[positions])
    return db


def solo_baseline(
    strategy: str,
    queries,
    seed: int = 42,
    pending: bool = False,
    **options,
):
    """Run one client's stream alone against a fresh kernel.

    Returns the quantities the serving front-end promises to keep
    bit-identical per client: per-query response times and result
    counts, the final clock reading, sorted result values, and the
    per-column piece-map trajectory.
    """
    db = fresh_db(seed=seed, pending=pending)
    session = db.session(strategy, **options)
    results = [session.run_query(query) for query in queries]
    indexes = getattr(session.strategy, "indexes", {})
    return {
        "responses": [r.response_s for r in session.report.queries],
        "counts": [r.result_count for r in session.report.queries],
        "clock_now": db.clock.now(),
        "values": [sorted(res.values().tolist()) for res in results],
        "piece_maps": {
            (ref.table, ref.column): (
                index.piece_map.pivots(),
                index.piece_map.cuts(),
            )
            for ref, index in indexes.items()
        },
    }


def lane_state(lane, results):
    """The serving-side counterpart of :func:`solo_baseline`."""
    return {
        "responses": [r.response_s for r in lane.report.queries],
        "counts": [r.result_count for r in lane.report.queries],
        "clock_now": lane.clock.now(),
        "values": [sorted(res.values().tolist()) for res in results],
        "piece_maps": lane.shadow_state(),
    }
