"""Property: serving is interleaving-invariant and solo-identical.

For ANY interleaving of K clients' query streams into cross-session
windows -- any window boundaries, any per-window client mix, as long
as each client's own order is preserved -- every client's results and
response times are bit-identical to that client running alone against
a fresh kernel.  This is the multi-tenant generalization of ISSUE 4's
batch==sequential property, and it is exactly what makes the shared
physical index safe: crack positions are order independent.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.query import RangeQuery
from repro.engine.session import make_strategy
from repro.serving import ServingFrontend
from repro.serving.window import WindowEntry
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.loader import build_paper_table

ROWS = 1_500
DOMAIN_HIGH = 100_000.0
REFS = [ColumnRef("R", "A1"), ColumnRef("R", "A2")]


def _db(seed: int) -> Database:
    db = Database(clock=SimClock())
    db.add_table(build_paper_table(rows=ROWS, columns=2, seed=seed))
    return db


def _client_queries(rng: np.random.Generator, count: int):
    """A stream mixing repeated (warm) and fresh bounds over 2 columns."""
    grid = np.linspace(1.0, DOMAIN_HIGH * 0.9, 12)
    queries = []
    for _ in range(count):
        ref = REFS[int(rng.integers(0, len(REFS)))]
        if rng.random() < 0.6:
            low = float(rng.choice(grid))
        else:
            low = float(rng.uniform(1.0, DOMAIN_HIGH * 0.9))
        queries.append(RangeQuery(ref, low, low + DOMAIN_HIGH * 0.05))
    return queries


@st.composite
def interleaving_case(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    clients = draw(st.integers(min_value=2, max_value=4))
    counts = [
        draw(st.integers(min_value=1, max_value=14)) for _ in range(clients)
    ]
    # An arbitrary interleaving: a shuffled multiset of client ids,
    # split into windows at arbitrary points.
    order = [i for i, count in enumerate(counts) for _ in range(count)]
    order = draw(st.permutations(order))
    total = len(order)
    breaks = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(1, total - 1)),
            max_size=5,
            unique=True,
        )
    )
    return seed, clients, counts, list(order), sorted(breaks)


@given(interleaving_case(), st.sampled_from(["adaptive", "holistic"]))
@settings(max_examples=25, deadline=None)
def test_any_interleaving_is_solo_identical(case, strategy):
    seed, clients, counts, order, breaks = case
    rng = np.random.default_rng(seed)
    streams = [_client_queries(rng, count) for count in counts]
    # Solo baselines: each client alone on a fresh kernel.
    solo = []
    for stream in streams:
        db = _db(seed)
        session = db.session(strategy)
        results = [session.run_query(query) for query in stream]
        solo.append(
            (
                [r.response_s for r in session.report.queries],
                [sorted(res.values().tolist()) for res in results],
                db.clock.now(),
            )
        )
    # Serving: the drawn interleaving, cut into the drawn windows.
    db = _db(seed)
    frontend = ServingFrontend(db, make_strategy(strategy, db))
    lanes = [frontend.add_client(f"c{i}") for i in range(clients)]
    cursors = [0] * clients
    entries = []
    for client in order:
        sequence = cursors[client]
        cursors[client] = sequence + 1
        entries.append(
            WindowEntry(f"c{client}", sequence, streams[client][sequence])
        )
    collected: dict[str, list] = {f"c{i}": [] for i in range(clients)}
    previous = 0
    for cut in [*breaks, len(entries)]:
        window = entries[previous:cut]
        previous = cut
        for entry, result in zip(window, frontend.serve_window(window)):
            collected[entry.client].append(result)
    for i, lane in enumerate(lanes):
        responses, values, clock_now = solo[i]
        assert [r.response_s for r in lane.report.queries] == responses
        assert [
            sorted(res.values().tolist()) for res in collected[f"c{i}"]
        ] == values
        assert lane.clock.now() == clock_now
