"""The serving front-end's core guarantees, deterministically.

Each client of a shared kernel must observe exactly what it would have
observed running alone: same results, same response times, same clock
totals, same piece-map trajectory -- while the shared index does the
physical work once.
"""

from __future__ import annotations

import pytest

from repro.engine.query import RangeQuery
from repro.engine.session import make_strategy
from repro.errors import ConfigError
from repro.serving import (
    CrossSessionWindowFormer,
    OpenLoopWindowFormer,
    ServingFrontend,
)
from repro.storage.catalog import ColumnRef
from repro.workload.multiclient import (
    make_closed_loop_clients,
    make_open_loop_clients,
)
from tests.serving.conftest import (
    DOMAIN_HIGH,
    DOMAIN_LOW,
    fresh_db,
    lane_state,
    solo_baseline,
)

COLUMN_REFS = [ColumnRef("R", "A1"), ColumnRef("R", "A2")]


def _serve_collecting(frontend):
    """Drive the former to completion, collecting per-client results."""
    collected: dict[str, list] = {name: [] for name in frontend.lanes}
    while True:
        entries = frontend.former.next_window()
        if not entries:
            break
        results = frontend.serve_window(entries)
        for entry, result in zip(entries, results):
            collected[entry.client].append(result)
    return collected


@pytest.mark.parametrize("strategy", ["adaptive", "holistic"])
@pytest.mark.parametrize("pending", [False, True])
def test_every_client_matches_its_solo_run(strategy, pending):
    workloads = make_closed_loop_clients(
        COLUMN_REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=4, queries_per_client=50, seed=17,
    )
    db = fresh_db(pending=pending)
    frontend = ServingFrontend(db, make_strategy(strategy, db), depth=8)
    lanes = {
        w.client: frontend.add_client(w.client, w.queries)
        for w in workloads
    }
    collected = _serve_collecting(frontend)
    for workload in workloads:
        solo = solo_baseline(
            strategy, workload.queries, pending=pending
        )
        served = lane_state(
            lanes[workload.client], collected[workload.client]
        )
        assert served == solo


@pytest.mark.parametrize("strategy", ["adaptive", "holistic"])
def test_open_loop_arrivals_match_solo(strategy):
    workloads = make_open_loop_clients(
        COLUMN_REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=3, queries_per_client=40,
        arrival_rates=[500.0, 20.0], seed=23,
    )
    db = fresh_db()
    frontend = ServingFrontend(
        db,
        make_strategy(strategy, db),
        former=OpenLoopWindowFormer(quantum_s=0.05, max_window=64),
    )
    lanes = {
        w.client: frontend.add_client(w.client, w.queries, w.arrivals)
        for w in workloads
    }
    collected = _serve_collecting(frontend)
    for workload in workloads:
        solo = solo_baseline(strategy, workload.queries)
        served = lane_state(
            lanes[workload.client], collected[workload.client]
        )
        assert served == solo


def test_run_reports_windows_and_latencies():
    workloads = make_closed_loop_clients(
        COLUMN_REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=3, queries_per_client=20, seed=5,
    )
    db = fresh_db()
    frontend = ServingFrontend(db, make_strategy("adaptive", db), depth=4)
    for workload in workloads:
        frontend.add_client(workload.client, workload.queries)
    report = frontend.run()
    assert report.total_queries == 60
    assert report.windows == len(report.window_sizes) == len(
        report.window_wall_s
    )
    assert sum(report.window_sizes) == 60
    latencies = report.query_latencies_s()
    assert len(latencies) == 60
    assert all(latency >= 0 for latency in latencies)
    # Every record is tagged with its lane's client.
    for name, session_report in report.clients.items():
        assert session_report.client == name
        assert all(r.client == name for r in session_report.queries)


def test_shared_index_does_the_union_of_physical_work_once():
    workloads = make_closed_loop_clients(
        COLUMN_REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=4, queries_per_client=30, seed=3,
    )
    db = fresh_db()
    kernel = make_strategy("adaptive", db)
    frontend = ServingFrontend(db, kernel, depth=8)
    lanes = [
        frontend.add_client(w.client, w.queries) for w in workloads
    ]
    frontend.run()
    for ref, index in kernel.indexes.items():
        index.check_invariants()
        key = (ref.table, ref.column)
        shared_pivots = set(index.piece_map.pivots())
        client_pivots = set()
        for lane in lanes:
            replay = lane.replays.get(key)
            if replay is not None:
                client_pivots.update(replay.sim.pivots)
        # The shared index holds exactly the union of every client's
        # cracks -- each distinct bound cracked once, not once per
        # client.
        assert shared_pivots == client_pivots


def test_mid_run_submission_extends_a_lane():
    db = fresh_db()
    frontend = ServingFrontend(db, make_strategy("adaptive", db), depth=8)
    queries = make_closed_loop_clients(
        COLUMN_REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=1, queries_per_client=20, seed=8,
    )[0].queries
    lane = frontend.add_client("c", queries[:10])
    frontend.run()
    frontend.submit("c", queries[10:])
    frontend.run()
    solo = solo_baseline("adaptive", queries)
    assert [r.response_s for r in lane.report.queries] == solo["responses"]
    assert lane.clock.now() == solo["clock_now"]


def test_unknown_client_and_duplicates_are_rejected():
    db = fresh_db()
    frontend = ServingFrontend(db, make_strategy("adaptive", db))
    frontend.add_client("c")
    with pytest.raises(ConfigError):
        frontend.add_client("c")
    with pytest.raises(ConfigError):
        frontend.submit("ghost", [])


def test_ineligible_strategies_are_rejected():
    db = fresh_db()
    with pytest.raises(ConfigError):
        ServingFrontend(db, make_strategy("scan", db))
    with pytest.raises(ConfigError):
        ServingFrontend(db, make_strategy("adaptive", db, variant="ddc"))
    with pytest.raises(ConfigError):
        ServingFrontend(
            db, make_strategy("holistic", db, hot_column_threshold=2)
        )


def test_bad_window_entry_fails_before_any_physical_work():
    db = fresh_db()
    kernel = make_strategy("adaptive", db)
    frontend = ServingFrontend(db, kernel, depth=8)
    frontend.add_client("good", [RangeQuery(COLUMN_REFS[0], 10.0, 20.0)])
    frontend.add_client(
        "bad", [RangeQuery(ColumnRef("R", "NOPE"), 5.0, 30.0)]
    )
    with pytest.raises(Exception):
        frontend.run()
    # Nothing was cracked: the good client's bounds never reached the
    # shared index either (all-or-nothing window admission).
    assert not kernel.indexes or all(
        index.crack_count == 0 for index in kernel.indexes.values()
    )


def test_window_entries_from_unregistered_clients_are_rejected():
    db = fresh_db()
    frontend = ServingFrontend(db, make_strategy("adaptive", db))
    former = CrossSessionWindowFormer()
    former.admit("ghost", [RangeQuery(COLUMN_REFS[0], 1.0, 2.0)])
    with pytest.raises(ConfigError):
        frontend.serve_window(former.next_window())
