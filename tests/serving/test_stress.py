"""Threaded stress: serving windows racing a TuningWorkerPool.

The holistic kernel's background workers crack the shared index from
real threads while the serving loop executes cross-session windows.
Worker cracks are order independent and the front-end holds the
columns' table latches for the duration of each window, so per-client
accounting must stay bit-identical to solo runs no matter how the
threads interleave -- the paper's idle-core claim carried into the
multi-tenant scenario.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.session import make_strategy
from repro.serving import ServingFrontend
from repro.storage.catalog import ColumnRef
from repro.workload.multiclient import make_closed_loop_clients
from tests.serving.conftest import (
    DOMAIN_HIGH,
    DOMAIN_LOW,
    fresh_db,
    solo_baseline,
)

REFS = [ColumnRef("R", "A1"), ColumnRef("R", "A2")]


def _workloads(seed=31, clients=3, queries=40):
    return make_closed_loop_clients(
        REFS, DOMAIN_LOW, DOMAIN_HIGH,
        clients=clients, queries_per_client=queries, seed=seed,
    )


def test_serving_windows_race_tuning_workers():
    workloads = _workloads()
    solo = {
        w.client: solo_baseline(
            "holistic", w.queries, cache_target_elements=64
        )
        for w in workloads
    }
    db = fresh_db()
    kernel = make_strategy(
        "holistic", db, num_workers=2, cache_target_elements=64
    )
    frontend = ServingFrontend(db, kernel, depth=4)
    lanes = {
        w.client: frontend.add_client(w.client, w.queries)
        for w in workloads
    }
    kernel.start_workers()
    kernel.submit_tuning(400)
    report = frontend.run()
    kernel.drain_workers()
    kernel.stop_workers()
    assert report.total_queries == sum(w.query_count for w in workloads)
    effective = sum(
        stats.actions_effective
        for stats in kernel.worker_pool.worker_stats()
    )
    # The workers really did crack the shared index mid-serving.
    assert effective > 0
    for workload in workloads:
        lane = lanes[workload.client]
        baseline = solo[workload.client]
        assert [
            r.response_s for r in lane.report.queries
        ] == baseline["responses"]
        assert [
            r.result_count for r in lane.report.queries
        ] == baseline["counts"]
        assert lane.clock.now() == baseline["clock_now"]
        # Each client's shadow trajectory is its solo piece map even
        # though the shared index took everyone's (and the workers')
        # cracks.
        assert lane.shadow_state() == baseline["piece_maps"]
    for index in kernel.indexes.values():
        index.check_invariants()


def test_concurrent_submission_threads_feed_the_serving_loop():
    """Producer threads admit queries while the main thread serves."""
    workloads = _workloads(seed=47, clients=4, queries=30)
    solo = {
        w.client: solo_baseline("adaptive", w.queries)
        for w in workloads
    }
    db = fresh_db()
    frontend = ServingFrontend(db, make_strategy("adaptive", db), depth=4)
    lanes = {
        w.client: frontend.add_client(w.client) for w in workloads
    }
    started = threading.Barrier(len(workloads) + 1)

    def feed(workload):
        started.wait()
        # Trickle the stream in small chunks to interleave with serving.
        for i in range(0, workload.query_count, 5):
            frontend.submit(workload.client, workload.queries[i : i + 5])

    threads = [
        threading.Thread(target=feed, args=(w,)) for w in workloads
    ]
    for thread in threads:
        thread.start()
    started.wait()
    # Serve until the producers are done and every queue is drained.
    while any(thread.is_alive() for thread in threads) or (
        frontend.former.pending_count
    ):
        entries = frontend.former.next_window()
        if entries:
            frontend.serve_window(entries)
    for thread in threads:
        thread.join()
    for workload in workloads:
        lane = lanes[workload.client]
        baseline = solo[workload.client]
        assert [
            r.response_s for r in lane.report.queries
        ] == baseline["responses"]
        assert lane.clock.now() == baseline["clock_now"]


@pytest.mark.parametrize("depth", [1, 3, 16])
def test_window_depth_never_changes_per_client_accounting(depth):
    workloads = _workloads(seed=13, clients=2, queries=25)
    db = fresh_db()
    frontend = ServingFrontend(
        db, make_strategy("holistic", db), depth=depth
    )
    lanes = {
        w.client: frontend.add_client(w.client, w.queries)
        for w in workloads
    }
    frontend.run()
    for workload in workloads:
        baseline = solo_baseline("holistic", workload.queries)
        lane = lanes[workload.client]
        assert [
            r.response_s for r in lane.report.queries
        ] == baseline["responses"]
        assert lane.shadow_state() == baseline["piece_maps"]
