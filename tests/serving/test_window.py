"""Unit tests for the cross-session window formers."""

import pytest

from repro.engine.query import RangeQuery
from repro.errors import ConfigError
from repro.serving.window import (
    CrossSessionWindowFormer,
    OpenLoopWindowFormer,
)
from repro.storage.catalog import ColumnRef

A1 = ColumnRef("R", "A1")


def _queries(n, base=0.0):
    return [RangeQuery(A1, base + i, base + i + 0.5) for i in range(n)]


def test_closed_loop_takes_depth_per_client_round_robin():
    former = CrossSessionWindowFormer(depth=2)
    former.admit("a", _queries(5))
    former.admit("b", _queries(3, base=100))
    window = former.next_window()
    assert [(e.client, e.sequence) for e in window] == [
        ("a", 0), ("a", 1), ("b", 0), ("b", 1),
    ]
    window = former.next_window()
    assert [(e.client, e.sequence) for e in window] == [
        ("a", 2), ("a", 3), ("b", 2),
    ]
    window = former.next_window()
    assert [(e.client, e.sequence) for e in window] == [("a", 4)]
    assert former.next_window() == []
    assert former.pending_count == 0


def test_closed_loop_max_window_caps_total():
    former = CrossSessionWindowFormer(depth=4, max_window=5)
    former.admit("a", _queries(4))
    former.admit("b", _queries(4, base=50))
    former.admit("c", _queries(4, base=90))
    window = former.next_window()
    assert len(window) == 5
    assert [e.client for e in window] == ["a", "a", "a", "a", "b"]


def test_closed_loop_preserves_per_client_order():
    former = CrossSessionWindowFormer(depth=3)
    queries = _queries(7)
    former.admit("a", queries)
    served = []
    while True:
        window = former.next_window()
        if not window:
            break
        served.extend(e.query for e in window)
    assert served == queries


def test_closed_loop_bounded_windows_rotate_fairly():
    """Regression: with max_window set, every window used to restart
    from the first-admitted client, starving later ones while earlier
    queues stayed non-empty."""
    former = CrossSessionWindowFormer(depth=4, max_window=4)
    former.admit("a", _queries(8))
    former.admit("b", _queries(8, base=50))
    former.admit("c", _queries(8, base=90))
    served_by = [
        {e.client for e in former.next_window()} for _ in range(3)
    ]
    # Three bounded windows must reach all three clients.
    assert set().union(*served_by) == {"a", "b", "c"}
    # And per-client order is still intact after the rotation.
    drained = []
    while True:
        window = former.next_window()
        if not window:
            break
        drained.extend(window)
    sequences: dict[str, list[int]] = {}
    for entry in drained:
        sequences.setdefault(entry.client, []).append(entry.sequence)
    for client, seen in sequences.items():
        assert seen == sorted(seen)


def test_closed_loop_validates_depth():
    with pytest.raises(ConfigError):
        CrossSessionWindowFormer(depth=0)
    with pytest.raises(ConfigError):
        CrossSessionWindowFormer(max_window=0)


def test_open_loop_windows_follow_arrival_quanta():
    former = OpenLoopWindowFormer(quantum_s=1.0)
    former.admit("a", _queries(3), arrivals=[0.0, 0.5, 5.0])
    former.admit("b", _queries(2, base=10), arrivals=[0.2, 0.7])
    first = former.next_window()
    # Everything arriving in [0.0, 1.0), in arrival order.
    assert [(e.client, e.sequence) for e in first] == [
        ("a", 0), ("b", 0), ("a", 1), ("b", 1),
    ]
    second = former.next_window()
    assert [(e.client, e.sequence) for e in second] == [("a", 2)]
    assert former.next_window() == []


def test_open_loop_requires_aligned_monotone_arrivals():
    former = OpenLoopWindowFormer()
    with pytest.raises(ConfigError):
        former.admit("a", _queries(2), arrivals=None)
    with pytest.raises(ConfigError):
        former.admit("a", _queries(2), arrivals=[1.0])
    with pytest.raises(ConfigError):
        former.admit("a", _queries(2), arrivals=[2.0, 1.0])


def test_open_loop_rejects_out_of_order_cross_batch_arrivals():
    """Regression: a later admission batch arriving before the
    client's last admitted query would serve its stream out of order,
    silently breaking the solo-identical accounting invariant."""
    former = OpenLoopWindowFormer()
    former.admit("a", _queries(1), arrivals=[5.0])
    with pytest.raises(ConfigError, match="arrive in order"):
        former.admit("a", _queries(1, base=10), arrivals=[1.0])
    # Equal or later arrivals are fine, and other clients are
    # unaffected.
    former.admit("a", _queries(1, base=20), arrivals=[5.0])
    former.admit("b", _queries(1, base=30), arrivals=[0.5])


def test_open_loop_max_window_bounds_burst():
    former = OpenLoopWindowFormer(quantum_s=10.0, max_window=3)
    former.admit("a", _queries(5), arrivals=[0.0] * 5)
    assert len(former.next_window()) == 3
    assert len(former.next_window()) == 2
