"""Degraded-mode serving: client faults isolated, healthy lanes exact.

The front-end's fault ladder (ISSUE 8): a malformed query is rejected
per entry without touching the shared index; a poison replay is
retried once solo and, if the retry also dies, answered by a base-
column scan.  In every case only the faulting client's accounting may
deviate -- other clients in the same window stay bit-identical to
their solo runs -- and an injected fault is credited as recovered
while a genuine error is not.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.engine.query import RangeQuery
from repro.engine.session import make_strategy
from repro.faults import FaultPlan, engaged
from repro.serving import ServingFrontend
from repro.storage.catalog import ColumnRef
from repro.serving.window import WindowEntry
from tests.conftest import ground_truth_count
from tests.serving.conftest import fresh_db, lane_state, solo_baseline

REF = ColumnRef("R", "A1")


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def _malformed(ref: ColumnRef = REF) -> RangeQuery:
    """An inverted range smuggled past RangeQuery validation."""
    query = RangeQuery.__new__(RangeQuery)
    object.__setattr__(query, "ref", ref)
    object.__setattr__(query, "low", 9.0)
    object.__setattr__(query, "high", 1.0)
    return query


def _queries(count: int, low: float = 5e6, step: float = 7e6):
    return [
        RangeQuery(REF, low + i * step, low + i * step + 4e6)
        for i in range(count)
    ]


def _frontend(db) -> ServingFrontend:
    return ServingFrontend(db, make_strategy("holistic", db), depth=8)


def _serve_collecting(frontend):
    collected: dict[str, list] = {name: [] for name in frontend.lanes}
    while True:
        entries = frontend.former.next_window()
        if not entries:
            break
        results = frontend.serve_window(entries)
        for entry, result in zip(entries, results):
            collected[entry.client].append(result)
    return collected


# -- malformed entries ---------------------------------------------------


def test_malformed_entry_is_rejected_without_touching_the_window():
    db = fresh_db()
    frontend = _frontend(db)
    healthy = _queries(4)
    frontend.add_client("good", healthy)
    frontend.add_client("chaos")
    entries = frontend.former.next_window()
    entries.append(WindowEntry(client="chaos", sequence=1, query=_malformed()))
    results = frontend.serve_window(entries)
    assert results[-1].count == 0
    assert len(results[-1].values()) == 0
    assert [f.kind for f in frontend.faults] == ["malformed"]
    assert frontend.faults[0].action == "rejected"
    assert frontend.faults[0].client == "chaos"
    assert "range inverted" in frontend.faults[0].error
    # The rejected entry produced no accounting on the chaos lane.
    assert frontend.lanes["chaos"].query_count == 0
    # Healthy client: bit-identical to its solo run.
    collected = {"good": [r for e, r in zip(entries, results) if e.client == "good"]}
    assert lane_state(frontend.lanes["good"], collected["good"]) == (
        solo_baseline("holistic", healthy)
    )


def test_malformed_entries_never_mark_the_run_failed():
    db = fresh_db()
    frontend = _frontend(db)
    frontend.add_client("chaos")
    report = frontend.serve_window(
        [WindowEntry(client="chaos", sequence=1, query=_malformed())]
    )
    assert [r.count for r in report] == [0]
    assert frontend.windows_served == 1


# -- poison replays ------------------------------------------------------


def test_poison_replay_is_retried_solo():
    db = fresh_db()
    column = db.column("R", "A1")
    frontend = _frontend(db)
    frontend.add_client("a", _queries(2))
    frontend.add_client("b", _queries(2, low=6e6))
    plan = FaultPlan()
    # Replay order of the single window is a0, a1, b0, b1: hit 2 is
    # b's first query; its solo retry (hit 3's counter slot) is clean.
    plan.arm("serving.replay", at=2)
    with engaged(plan):
        collected = _serve_collecting(frontend)
    assert plan.injected == 1
    assert plan.unrecovered() == []
    assert [f.action for f in frontend.faults] == ["retried_solo"]
    assert frontend.faults[0].client == "b"
    assert frontend.faults[0].kind == "poison"
    # The retried query still answered correctly.
    for lane in ("a", "b"):
        for query, result in zip(
            [e for e in (_queries(2) if lane == "a" else _queries(2, low=6e6))],
            collected[lane],
        ):
            assert result.count == ground_truth_count(
                column, query.low, query.high
            )


def test_poison_retry_failure_falls_back_to_a_scan():
    db = fresh_db()
    column = db.column("R", "A1")
    frontend = _frontend(db)
    frontend.add_client("a", _queries(2))
    frontend.add_client("b", _queries(2, low=6e6))
    plan = FaultPlan()
    # Consecutive hits: the solo retry fails too, forcing the base-
    # column scan of last resort.
    plan.arm("serving.replay", at=[2, 3])
    with engaged(plan):
        collected = _serve_collecting(frontend)
    assert plan.injected == 2
    assert plan.unrecovered() == []
    assert [f.action for f in frontend.faults] == ["scan_fallback"]
    queries = {"a": _queries(2), "b": _queries(2, low=6e6)}
    for lane, lane_queries in queries.items():
        for query, result in zip(lane_queries, collected[lane]):
            assert result.count == ground_truth_count(
                column, query.low, query.high
            )


def test_healthy_clients_stay_solo_identical_under_poison():
    healthy = _queries(6)
    db = fresh_db()
    frontend = _frontend(db)
    frontend.add_client("good", healthy)
    frontend.add_client("victim", _queries(6, low=3e6))
    plan = FaultPlan()
    # Replay order serves all of "good" (hits 0-5) before "victim"
    # (hits 6-11); both armed hits land on victim queries.
    plan.arm("serving.replay", at=[6, 9])
    with engaged(plan):
        collected = _serve_collecting(frontend)
    victims = {f.client for f in frontend.faults}
    assert victims and "good" not in victims
    assert lane_state(frontend.lanes["good"], collected["good"]) == (
        solo_baseline("holistic", healthy)
    )


def test_genuine_replay_errors_are_not_credited_as_recovered():
    db = fresh_db()
    column = db.column("R", "A1")
    frontend = _frontend(db)
    queries = _queries(2)
    frontend.add_client("a", queries)
    calls = {"n": 0}
    real_replay = ServingFrontend._replay_once

    def flaky(replay, query, holistic):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("genuine replay bug")
        return real_replay(replay, query, holistic)

    frontend._replay_once = flaky
    plan = FaultPlan()  # engaged, but nothing armed
    with engaged(plan):
        collected = _serve_collecting(frontend)
    assert [f.action for f in frontend.faults] == ["retried_solo"]
    # Nothing was injected, so nothing may be claimed as recovered.
    assert plan.injected == 0
    assert plan.summary()["recovered"] == 0
    for query, result in zip(queries, collected["a"]):
        assert result.count == ground_truth_count(column, query.low, query.high)
