"""Unit tests for interval sets."""

import pytest

from repro.errors import QueryError
from repro.util.intervals import IntervalSet


def test_empty_set():
    iset = IntervalSet()
    assert len(iset) == 0
    assert iset.total_span() == 0
    assert not iset.covers(0, 1)
    assert iset.covers(5, 5)  # empty query is trivially covered
    assert not iset.contains_point(0)


def test_add_and_covers():
    iset = IntervalSet()
    iset.add(10, 20)
    assert iset.covers(10, 20)
    assert iset.covers(12, 18)
    assert not iset.covers(5, 15)
    assert not iset.covers(15, 25)


def test_half_open_semantics():
    iset = IntervalSet()
    iset.add(10, 20)
    assert iset.contains_point(10)
    assert iset.contains_point(19.999)
    assert not iset.contains_point(20)


def test_adjacent_intervals_coalesce():
    iset = IntervalSet()
    iset.add(10, 20)
    iset.add(20, 30)
    assert len(iset) == 1
    assert iset.covers(10, 30)


def test_overlapping_intervals_coalesce():
    iset = IntervalSet()
    iset.add(10, 20)
    iset.add(15, 25)
    iset.add(5, 12)
    assert iset.intervals() == [(5, 25)]


def test_disjoint_intervals_stay_separate():
    iset = IntervalSet()
    iset.add(10, 20)
    iset.add(30, 40)
    assert len(iset) == 2
    assert not iset.covers(15, 35)


def test_bridge_interval_merges_neighbours():
    iset = IntervalSet()
    iset.add(10, 20)
    iset.add(30, 40)
    iset.add(18, 32)
    assert iset.intervals() == [(10, 40)]


def test_empty_interval_ignored():
    iset = IntervalSet()
    iset.add(10, 10)
    assert len(iset) == 0


def test_inverted_interval_rejected():
    iset = IntervalSet()
    with pytest.raises(QueryError):
        iset.add(10, 5)
    with pytest.raises(QueryError):
        iset.covers(10, 5)
    with pytest.raises(QueryError):
        iset.uncovered_parts(10, 5)


def test_uncovered_parts_full_gap():
    iset = IntervalSet()
    assert iset.uncovered_parts(0, 10) == [(0, 10)]


def test_uncovered_parts_with_holes():
    iset = IntervalSet()
    iset.add(10, 20)
    iset.add(30, 40)
    gaps = iset.uncovered_parts(5, 45)
    assert gaps == [(5, 10), (20, 30), (40, 45)]


def test_uncovered_parts_fully_covered():
    iset = IntervalSet()
    iset.add(0, 100)
    assert iset.uncovered_parts(10, 90) == []


def test_total_span_sums_widths():
    iset = IntervalSet()
    iset.add(0, 10)
    iset.add(20, 25)
    assert iset.total_span() == 15


def test_add_many_equals_sequential_adds():
    import numpy as np

    from repro.util.intervals import IntervalSet

    rng = np.random.default_rng(3)
    for _ in range(40):
        ranges = []
        for _ in range(int(rng.integers(0, 12))):
            low = float(rng.uniform(0, 100))
            ranges.append((low, low + float(rng.uniform(0, 20))))
        one_by_one = IntervalSet()
        batched = IntervalSet()
        base = [
            (float(low), float(low + 5))
            for low in rng.uniform(0, 100, size=3)
        ]
        for low, high in base:
            one_by_one.add(low, high)
            batched.add(low, high)
        for low, high in ranges:
            one_by_one.add(low, high)
        batched.add_many(ranges)
        assert batched.intervals() == one_by_one.intervals()


def test_add_many_rejects_inverted_and_skips_empty():
    import pytest

    from repro.errors import QueryError
    from repro.util.intervals import IntervalSet

    intervals = IntervalSet()
    intervals.add_many([(1.0, 1.0), (2.0, 2.0)])
    assert intervals.intervals() == []
    with pytest.raises(QueryError):
        intervals.add_many([(3.0, 2.0)])
