"""Test-facing oracle helpers.

``NaivePending`` is a pure-Python, exact-arithmetic model of
:class:`repro.storage.updates.PendingUpdates`: values live as Python
scalars and range predicates are evaluated with Python's exact
int/float comparisons, so there is no searchsorted, no dtype promotion,
and nothing clever to get wrong.  The hypothesis property suite replays
arbitrary stage/peek/take interleavings against it.

The bench-side differential oracle is re-exported here so tests import
every oracle piece from one place (``from util.oracle import ...``).
"""

from __future__ import annotations

import numpy as np

from repro.bench.oracle import (  # noqa: F401  (re-exports for tests)
    OracleError,
    OracleRun,
    ReferenceEngine,
    TraceFingerprint,
    reference_results,
    replay_batched,
    replay_maintained,
    replay_sequential,
    replay_serving,
)
from repro.storage.dtypes import ColumnType, coerce_array


class NaivePending:
    """Exact reference model of one column's ``PendingUpdates``.

    Mirrors the real semantics observed through the public API:

    * staged values are coerced to the column dtype, like the real
      store's ``coerce_array`` call;
    * delete positions dedup against the first occurrence within a
      batch and against *currently staged* positions only -- a position
      whose pair was consumed by a ``take_*`` may be staged again;
    * every ``*_in_range`` uses exact ``low <= v < high`` on Python
      scalars (int/float comparison in Python is exact at any
      magnitude, unlike a float64-promoting searchsorted).
    """

    def __init__(self, ctype: ColumnType) -> None:
        self._ctype = ctype
        self._inserts: list = []
        self._deletes: list[tuple[int, object]] = []

    def _coerce(self, values: object) -> list:
        array = coerce_array(np.asarray(values), self._ctype)
        return [value.item() for value in array]

    # -- staging -------------------------------------------------------

    def stage_inserts(self, values: object) -> int:
        fresh = self._coerce(values)
        self._inserts.extend(fresh)
        return len(fresh)

    def stage_deletes(self, positions: object, values: object) -> int:
        pos = [int(p) for p in np.asarray(positions, dtype=np.int64)]
        vals = self._coerce(values)
        staged_now = {p for p, _ in self._deletes}
        seen_in_batch: set[int] = set()
        staged = 0
        for p, v in zip(pos, vals):
            if p in staged_now or p in seen_in_batch:
                continue
            seen_in_batch.add(p)
            self._deletes.append((p, v))
            staged += 1
        return staged

    # -- inspection ----------------------------------------------------

    @property
    def pending_insert_count(self) -> int:
        return len(self._inserts)

    @property
    def pending_delete_count(self) -> int:
        return len(self._deletes)

    def inserts_in_range(self, low: float, high: float) -> list:
        return sorted(v for v in self._inserts if low <= v < high)

    def deletes_in_range(self, low: float, high: float) -> list:
        return sorted(v for _, v in self._deletes if low <= v < high)

    def delete_positions_in_range(self, low: float, high: float) -> set[int]:
        return {p for p, v in self._deletes if low <= v < high}

    # -- consumption ---------------------------------------------------

    def take_inserts_in_range(self, low: float, high: float) -> list:
        taken = self.inserts_in_range(low, high)
        keep = [v for v in self._inserts if not low <= v < high]
        self._inserts = keep
        return taken

    def take_deletes_in_range(self, low: float, high: float) -> list:
        taken = self.deletes_in_range(low, high)
        self._deletes = [
            (p, v) for p, v in self._deletes if not low <= v < high
        ]
        return taken

    def clear(self) -> None:
        """Drop all pending entries (mirrors ``PendingUpdates.clear``).

        Every staged position becomes restageable again: dedup is
        against *currently staged* positions only.
        """
        self._inserts = []
        self._deletes = []
