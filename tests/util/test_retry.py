"""Unit tests for the deterministic capped-exponential retry helper."""

import pytest

from repro.errors import ConfigError
from repro.util.retry import BackoffPolicy, retry_call


# -- the policy ----------------------------------------------------------


def test_delays_are_capped_exponential():
    policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=0.5, max_attempts=6)
    assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_single_attempt_policy_has_no_delays():
    assert BackoffPolicy(max_attempts=1).delays() == []


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base_s": -0.1},
        {"factor": 0.5},
        {"cap_s": -1.0},
        {"max_attempts": 0},
    ],
)
def test_policy_validates_fields(kwargs):
    with pytest.raises(ConfigError):
        BackoffPolicy(**kwargs)


def test_delay_s_rejects_negative_retry():
    with pytest.raises(ConfigError):
        BackoffPolicy().delay_s(-1)


# -- the loop ------------------------------------------------------------


def _flaky(failures: int, error=ValueError):
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise error(f"failure #{calls['n']}")
        return calls["n"]

    return fn, calls


def test_retries_until_success_and_sleeps_the_schedule():
    fn, calls = _flaky(2)
    slept: list[float] = []
    result = retry_call(
        fn,
        policy=BackoffPolicy(base_s=0.1, factor=2.0, cap_s=1.0, max_attempts=4),
        sleep=slept.append,
    )
    assert result == 3
    assert calls["n"] == 3
    assert slept == [0.1, 0.2]


def test_first_try_success_never_sleeps():
    slept: list[float] = []
    assert retry_call(lambda: "ok", sleep=slept.append) == "ok"
    assert slept == []


def test_exhausted_attempts_raise_the_last_error():
    fn, calls = _flaky(10)
    with pytest.raises(ValueError, match="failure #3"):
        retry_call(
            fn,
            policy=BackoffPolicy(base_s=0.0, max_attempts=3),
            sleep=lambda _s: None,
        )
    assert calls["n"] == 3


def test_unmatched_error_propagates_immediately():
    fn, calls = _flaky(1, error=KeyError)
    with pytest.raises(KeyError):
        retry_call(fn, retry_on=ValueError, sleep=lambda _s: None)
    assert calls["n"] == 1


def test_on_retry_observes_each_failure():
    fn, _calls = _flaky(2)
    seen: list[tuple[int, str]] = []
    retry_call(
        fn,
        policy=BackoffPolicy(base_s=0.0, max_attempts=4),
        sleep=lambda _s: None,
        on_retry=lambda attempt, error: seen.append((attempt, str(error))),
    )
    assert seen == [(0, "failure #1"), (1, "failure #2")]


def test_zero_delay_skips_sleep_entirely():
    fn, _calls = _flaky(1)
    slept: list[float] = []
    retry_call(
        fn,
        policy=BackoffPolicy(base_s=0.0, max_attempts=2),
        sleep=slept.append,
    )
    assert slept == []
