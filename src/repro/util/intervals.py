"""Half-open interval sets.

Used by the hybrid crack-sort index to track which value ranges have
already been merged into its final store, and by the workload monitor
to summarize queried ranges.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.errors import QueryError


class IntervalSet:
    """A set of disjoint, sorted, half-open intervals ``[low, high)``.

    Adjacent/overlapping intervals are coalesced on insertion, so the
    internal lists stay minimal and lookups are O(log k).
    """

    def __init__(self) -> None:
        self._lows: list[float] = []
        self._highs: list[float] = []

    def __len__(self) -> int:
        return len(self._lows)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._lows, self._highs))

    def intervals(self) -> list[tuple[float, float]]:
        """All intervals as ``(low, high)`` pairs (copy)."""
        return list(zip(self._lows, self._highs))

    def total_span(self) -> float:
        """Sum of interval widths."""
        return sum(h - l for l, h in zip(self._lows, self._highs))

    def add(self, low: float, high: float) -> None:
        """Insert ``[low, high)``, coalescing with existing intervals.

        Empty intervals are ignored.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"interval inverted: [{low}, {high})")
        if low == high:
            return
        # Find every existing interval that touches [low, high).
        first = bisect_left(self._highs, low)
        last = bisect_right(self._lows, high)
        if first < last:
            low = min(low, self._lows[first])
            high = max(high, self._highs[last - 1])
        del self._lows[first:last]
        del self._highs[first:last]
        self._lows.insert(first, low)
        self._highs.insert(first, high)

    def add_many(self, ranges: list[tuple[float, float]]) -> None:
        """Insert many intervals in one merge sweep.

        Equivalent to calling :meth:`add` per range (set union is
        order-independent and the representation is canonical), but a
        batch of k ranges costs one sort plus one linear sweep instead
        of k list splices.

        Raises:
            QueryError: if any range is inverted.
        """
        for low, high in ranges:
            if low > high:
                raise QueryError(f"interval inverted: [{low}, {high})")
        fresh = [r for r in ranges if r[0] < r[1]]
        if not fresh:
            return
        merged = sorted(
            [*zip(self._lows, self._highs), *fresh]
        )
        lows: list[float] = []
        highs: list[float] = []
        current_low, current_high = merged[0]
        for low, high in merged[1:]:
            if low <= current_high:
                if high > current_high:
                    current_high = high
            else:
                lows.append(current_low)
                highs.append(current_high)
                current_low, current_high = low, high
        lows.append(current_low)
        highs.append(current_high)
        self._lows = lows
        self._highs = highs

    def covers(self, low: float, high: float) -> bool:
        """Whether one stored interval fully contains ``[low, high)``.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"interval inverted: [{low}, {high})")
        if low == high:
            return True
        i = bisect_right(self._lows, low) - 1
        return i >= 0 and self._highs[i] >= high

    def contains_point(self, value: float) -> bool:
        """Whether ``value`` lies inside any stored interval."""
        i = bisect_right(self._lows, value) - 1
        return i >= 0 and value < self._highs[i]

    def uncovered_parts(
        self, low: float, high: float
    ) -> list[tuple[float, float]]:
        """The sub-intervals of ``[low, high)`` not yet covered.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"interval inverted: [{low}, {high})")
        gaps: list[tuple[float, float]] = []
        cursor = low
        start = max(0, bisect_left(self._highs, low))
        for i in range(start, len(self._lows)):
            iv_low, iv_high = self._lows[i], self._highs[i]
            if iv_low >= high:
                break
            if iv_low > cursor:
                gaps.append((cursor, iv_low))
            cursor = max(cursor, iv_high)
            if cursor >= high:
                break
        if cursor < high:
            gaps.append((cursor, high))
        return gaps

    def __repr__(self) -> str:
        inner = ", ".join(f"[{l}, {h})" for l, h in self)
        return f"IntervalSet({inner})"
