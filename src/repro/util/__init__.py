"""Shared utilities (interval sets, retry/backoff, misc helpers)."""

from repro.util.intervals import IntervalSet
from repro.util.retry import BackoffPolicy, retry_call

__all__ = ["BackoffPolicy", "IntervalSet", "retry_call"]
