"""Shared utilities (interval sets, misc helpers)."""

from repro.util.intervals import IntervalSet

__all__ = ["IntervalSet"]
