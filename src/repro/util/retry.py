"""Deterministic capped-exponential retry/backoff.

The self-healing paths (worker supervisor restarts, snapshot restore
re-reads) all need the same shape of loop: try, back off a bounded
exponential amount, try again, give up after N attempts.  This module
provides it once, with the two properties those callers need:

* **deterministic** -- no jitter; delay ``i`` is exactly
  ``min(base_s * factor**i, cap_s)``, so tests and the chaos bench can
  predict schedules;
* **injectable time** -- ``sleep`` is a parameter, so unit tests and
  the supervisor (which must not stall a drain on real wall-clock
  sleeps during simulated-time runs) can substitute their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.simtime.clock import wall_sleep


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """A capped exponential backoff schedule.

    Args:
        base_s: delay before the first retry.
        factor: multiplier per subsequent retry (>= 1).
        cap_s: upper bound on any single delay.
        max_attempts: total attempts including the first (>= 1).
    """

    base_s: float = 0.001
    factor: float = 2.0
    cap_s: float = 0.25
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ConfigError(f"base_s must be >= 0, got {self.base_s}")
        if self.factor < 1:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")
        if self.cap_s < 0:
            raise ConfigError(f"cap_s must be >= 0, got {self.cap_s}")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def delay_s(self, retry: int) -> float:
        """Delay before retry number ``retry`` (0-based)."""
        if retry < 0:
            raise ConfigError(f"retry must be >= 0, got {retry}")
        return min(self.base_s * self.factor**retry, self.cap_s)

    def delays(self) -> list[float]:
        """The full schedule: one delay per retry this policy allows."""
        return [self.delay_s(i) for i in range(self.max_attempts - 1)]


def retry_call(
    fn: Callable[[], object],
    *,
    policy: BackoffPolicy | None = None,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = Exception,
    sleep: Callable[[float], None] = wall_sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
):
    """Call ``fn`` under ``policy``, retrying on ``retry_on``.

    Args:
        fn: zero-arg callable; its return value is passed through.
        policy: backoff schedule (defaults to :class:`BackoffPolicy`).
        retry_on: exception type(s) that trigger a retry; anything
            else propagates immediately.
        sleep: delay function, injectable for tests.
        on_retry: called as ``on_retry(retry_index, error)`` before
            each backoff sleep.

    Raises:
        The last ``retry_on`` error, once attempts are exhausted.
    """
    policy = policy if policy is not None else BackoffPolicy()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as error:  # noqa: PERF203 - the loop is the point
            last = error
            if attempt + 1 >= policy.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, error)
            delay = policy.delay_s(attempt)
            if delay > 0:
                sleep(delay)
    assert last is not None
    raise last
