"""Durable index lifecycle: versioned snapshots and memmap restore.

Everything the engine *learned* -- cracked columns, piece maps,
pending-update stores, workload statistics, virtual-clock totals --
can be checkpointed into a versioned, checksummed generation directory
and restored after a crash with ``np.memmap`` in O(metadata), so a
restarted kernel resumes convergence instead of re-cracking from
scratch.  See :mod:`repro.persist.format` for the on-disk protocol and
:mod:`repro.persist.manager` for the lifecycle API.
"""

from repro.persist.format import (
    FORMAT_VERSION,
    current_generation,
    list_generations,
    prune,
    quick_verify_manifest,
    read_current_manifest,
    read_manifest,
    verify_manifest,
    write_generation,
)
from repro.persist.manager import (
    CheckpointResult,
    IncrementalCheckpointer,
    SnapshotManager,
    restore_snapshot,
)
from repro.persist.snapshot import RestoredState, capture_state
from repro.persist.verify import BackgroundVerifier

__all__ = [
    "FORMAT_VERSION",
    "BackgroundVerifier",
    "CheckpointResult",
    "IncrementalCheckpointer",
    "RestoredState",
    "SnapshotManager",
    "capture_state",
    "current_generation",
    "list_generations",
    "prune",
    "quick_verify_manifest",
    "read_current_manifest",
    "read_manifest",
    "restore_snapshot",
    "verify_manifest",
    "write_generation",
]
