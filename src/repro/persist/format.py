"""The on-disk snapshot format: generations, manifests, atomic publish.

A snapshot *root* directory holds numbered generation directories plus
a ``CURRENT`` pointer file::

    root/
      CURRENT              # "gen-000003\n" -- the last good generation
      gen-000001/
        manifest.json
        column__R__A1.npy
        ...
      gen-000003/
        manifest.json      # may reference arrays back in gen-000001
        index__R__A1__values.npy

Each generation is *self-describing*: its ``manifest.json`` records,
for every logical array, the root-relative file it lives in, its dtype,
shape and sha256 -- so a manifest can carry unchanged arrays forward by
referencing files of older generations instead of rewriting them
(incremental checkpointing).

Crash consistency follows the classic write-new-then-rename protocol:

1. arrays and the manifest are written into a hidden ``.tmp-*`` dir,
2. every file and the dir are fsynced,
3. the tmp dir is renamed to ``gen-NNNNNN`` (atomic on POSIX),
4. ``CURRENT`` is republished via ``os.replace``.

A crash at any step leaves the previous ``CURRENT`` generation -- and
every older generation it references -- untouched; leftover tmp dirs
and unpublished generations are garbage collected on the next write.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from pathlib import Path

import numpy as np

from repro import faults
from repro.errors import PersistError

#: Bump on any incompatible manifest/layout change.
FORMAT_VERSION = 1

CURRENT_FILE = "CURRENT"
MANIFEST_FILE = "manifest.json"

_GEN_RE = re.compile(r"^gen-(\d{6})$")
_TMP_PREFIX = ".tmp-"


def generation_name(generation: int) -> str:
    """The directory name of generation ``generation``."""
    if generation < 1:
        raise PersistError(f"generation must be >= 1, got {generation}")
    return f"gen-{generation:06d}"


def _sanitize(name: str) -> str:
    """Map a logical array name to a flat, filesystem-safe file stem."""
    return name.replace("/", "__")


def sha256_of_array(array: np.ndarray) -> str:
    """Content hash of an array's raw little-endian bytes."""
    contiguous = np.ascontiguousarray(array)
    return hashlib.sha256(memoryview(contiguous).cast("B")).hexdigest()


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def list_generations(root: Path) -> list[int]:
    """Published generation numbers under ``root``, ascending."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = []
    for entry in root.iterdir():
        match = _GEN_RE.match(entry.name)
        if match and entry.is_dir():
            found.append(int(match.group(1)))
    return sorted(found)


def current_generation(root: Path) -> int | None:
    """The generation ``CURRENT`` points at, or ``None`` if unwritten.

    Raises:
        PersistError: when the pointer is malformed or dangling.
    """
    root = Path(root)
    pointer = root / CURRENT_FILE
    if not pointer.exists():
        return None
    text = pointer.read_text().strip()
    match = _GEN_RE.match(text)
    if not match:
        raise PersistError(
            f"corrupt CURRENT pointer in {root}: {text!r}"
        )
    generation = int(match.group(1))
    if not (root / text / MANIFEST_FILE).exists():
        raise PersistError(
            f"CURRENT points at {text} but its manifest is missing"
        )
    return generation


def read_manifest(root: Path, generation: int) -> dict:
    """Load and validate the manifest of ``generation``.

    Raises:
        PersistError: on a missing, unparsable or wrong-version
            manifest.
    """
    root = Path(root)
    path = root / generation_name(generation) / MANIFEST_FILE
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise PersistError(f"no manifest at {path}") from None
    except json.JSONDecodeError as error:
        raise PersistError(f"corrupt manifest at {path}: {error}") from None
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistError(
            f"snapshot format {version!r} is not supported "
            f"(expected {FORMAT_VERSION})"
        )
    if manifest.get("generation") != generation:
        raise PersistError(
            f"manifest at {path} claims generation "
            f"{manifest.get('generation')!r}"
        )
    return manifest


def read_current_manifest(root: Path) -> tuple[int, dict]:
    """The last published generation and its manifest.

    Raises:
        PersistError: when no generation was ever published, or the
            pointer/manifest is corrupt.
    """
    generation = current_generation(root)
    if generation is None:
        raise PersistError(f"no snapshot published under {Path(root)}")
    return generation, read_manifest(root, generation)


def write_generation(
    root: Path,
    arrays: dict[str, np.ndarray],
    meta: dict,
    carry: dict[str, dict] | None = None,
) -> int:
    """Publish a new generation; returns its number.

    Args:
        root: snapshot root directory (created if missing).
        arrays: logical name to array -- written fresh into the new
            generation directory.
        meta: JSON-serializable snapshot metadata, stored verbatim
            under the manifest's ``meta`` key.
        carry: manifest array entries (from an older manifest) adopted
            unchanged -- their files are *referenced*, not rewritten.

    Raises:
        PersistError: on sanitized-name collisions or a carried entry
            whose file does not exist.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    _collect_garbage(root)
    carry = dict(carry or {})

    stems: dict[str, str] = {}
    for name in arrays:
        stem = _sanitize(name)
        if stem in stems.values():
            raise PersistError(
                f"array names {name!r} and another entry collide on "
                f"file stem {stem!r}"
            )
        stems[name] = stem
    overlap = set(arrays) & set(carry)
    if overlap:
        raise PersistError(
            f"arrays both written and carried: {sorted(overlap)}"
        )
    for name, entry in carry.items():
        if not (root / entry["file"]).exists():
            raise PersistError(
                f"carried array {name!r} references missing file "
                f"{entry['file']!r}"
            )

    previous = current_generation(root)
    generation = (previous or 0) + 1
    gen_name = generation_name(generation)
    tmp = root / f"{_TMP_PREFIX}{gen_name}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()

    entries: dict[str, dict] = {}
    try:
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            file_name = f"{stems[name]}.npy"
            np.save(tmp / file_name, array)
            _fsync_path(tmp / file_name)
            entries[name] = {
                "file": f"{gen_name}/{file_name}",
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "nbytes": int(array.nbytes),
                "sha256": sha256_of_array(array),
                "generation": generation,
            }
        entries.update(carry)
        manifest = {
            "format_version": FORMAT_VERSION,
            "generation": generation,
            "previous_generation": previous,
            "arrays": entries,
            "meta": meta,
        }
        manifest_path = tmp / MANIFEST_FILE
        manifest_path.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        _fsync_path(manifest_path)
        _fsync_path(tmp)
        os.rename(tmp, root / gen_name)
    except Exception:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _fsync_path(root)

    pointer_tmp = root / f"{CURRENT_FILE}.tmp"
    pointer_tmp.write_text(gen_name + "\n")
    _fsync_path(pointer_tmp)
    os.replace(pointer_tmp, root / CURRENT_FILE)
    _fsync_path(root)
    _tamper_published(root, generation, entries)
    return generation


def _tamper_published(root: Path, generation: int, entries: dict) -> None:
    """Apply armed corruption faults to the just-published generation.

    Simulates media failures *after* the write path reported success --
    torn/bit-flipped array files and a garbage ``CURRENT`` pointer --
    which is exactly the corruption class the restore walk-back must
    survive.  No plan armed: zero work.
    """
    if faults.active() is None:
        return
    if faults.tamper("persist.publish.pointer") is not None:
        (root / CURRENT_FILE).write_text("gen-garbage\n")
    fresh = [
        entry
        for entry in entries.values()
        if int(entry["generation"]) == generation
    ]
    if not fresh:
        return
    # The largest freshly-written file: tearing it is visible to the
    # structural quick check, flipping a bit lands in the data region
    # where only a checksum can see it.
    target = max(fresh, key=lambda e: (int(e["nbytes"]), e["file"]))["file"]
    if faults.tamper("persist.publish.torn") is not None:
        faults.tear_file(root / target)
    if faults.tamper("persist.publish.bitflip") is not None:
        faults.flip_bit(root / target)


def load_array(
    root: Path, entry: dict, mmap_mode: str | None = None
) -> np.ndarray:
    """Load one manifest array entry, validating dtype and shape.

    Raises:
        PersistError: on a missing file or metadata mismatch.
    """
    root = Path(root)
    path = root / entry["file"]
    try:
        array = np.load(path, mmap_mode=mmap_mode)
    except FileNotFoundError:
        raise PersistError(f"snapshot array missing: {path}") from None
    except ValueError as error:
        raise PersistError(f"corrupt snapshot array {path}: {error}") from None
    if str(array.dtype) != entry["dtype"] or list(array.shape) != list(
        entry["shape"]
    ):
        raise PersistError(
            f"snapshot array {path} is {array.dtype}{array.shape}, "
            f"manifest says {entry['dtype']}{tuple(entry['shape'])}"
        )
    return array


def quick_verify_manifest(root: Path, manifest: dict) -> None:
    """Structural integrity check, O(metadata): every referenced file
    exists and holds at least its array's payload bytes.

    Catches torn (truncated) and missing files without hashing a byte,
    so it can sit on the restore critical path; bit flips need the
    full :func:`verify_manifest`.

    Raises:
        PersistError: on a missing or truncated array file.
    """
    root = Path(root)
    for name, entry in manifest["arrays"].items():
        path = root / entry["file"]
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            raise PersistError(f"snapshot array missing: {path}") from None
        if size < int(entry["nbytes"]):
            raise PersistError(
                f"snapshot array {name!r} ({entry['file']}) is torn: "
                f"{size} bytes on disk < {entry['nbytes']} payload bytes"
            )


def verify_manifest(root: Path, manifest: dict) -> None:
    """Recompute every array checksum against the manifest.

    Raises:
        PersistError: on the first mismatch.
    """
    for name, entry in manifest["arrays"].items():
        array = load_array(root, entry, mmap_mode="r")
        digest = sha256_of_array(array)
        if digest != entry["sha256"]:
            raise PersistError(
                f"checksum mismatch for array {name!r} "
                f"({entry['file']}): stored {entry['sha256'][:12]}..., "
                f"recomputed {digest[:12]}..."
            )


def referenced_generations(manifest: dict) -> set[int]:
    """Generations whose files the manifest references (incl. itself)."""
    generations = {int(manifest["generation"])}
    for entry in manifest["arrays"].values():
        generations.add(int(entry["generation"]))
    return generations


def prune(root: Path) -> list[str]:
    """Drop generations not reachable from ``CURRENT``; returns names.

    Never touches the current generation or any older generation it
    carries arrays from.  A root with no ``CURRENT`` is left alone
    (there is nothing proven safe to delete).
    """
    root = Path(root)
    generation = current_generation(root)
    if generation is None:
        return []
    keep = referenced_generations(read_manifest(root, generation))
    removed = []
    for number in list_generations(root):
        if number not in keep and number < generation:
            name = generation_name(number)
            shutil.rmtree(root / name)
            removed.append(name)
    return removed


def _collect_garbage(root: Path) -> None:
    """Remove crash leftovers: tmp dirs and unpublished generations."""
    published = current_generation(root)
    for entry in root.iterdir():
        if entry.name.startswith(_TMP_PREFIX) and entry.is_dir():
            shutil.rmtree(entry)
            continue
        match = _GEN_RE.match(entry.name)
        if (
            match
            and entry.is_dir()
            and (published is None or int(match.group(1)) > published)
        ):
            # Renamed into place but CURRENT was never republished:
            # the generation is unreachable, treat it as garbage.
            shutil.rmtree(entry)
