"""Capture and restore of the full adaptive state of an engine.

The *capture* half walks a :class:`~repro.storage.database.Database`
plus (optionally) its indexing strategy and session and flattens
everything the engine learned into

* a dict of named numpy arrays -- base columns, pending-update stores,
  cracker columns / cracker maps (in their narrowed dtypes), piece-map
  pivot/cut/sorted-flag buffers, crack-tape record columns -- and
* a JSON-serializable ``meta`` dict -- catalog schema and statistics,
  clock totals, monitor/ranking/session counters, strategy config.

The *restore* half rebuilds the same objects around ``np.memmap`` views
of the snapshot files: base columns open read-only (``mmap_mode='r'``;
their catalog statistics come from the manifest, so nothing scans
them), cracker columns and maps open copy-on-write (``mmap_mode='c'``;
later cracks fault pages in lazily and never touch the snapshot).
Restart cost is therefore O(metadata), and no crack ever re-runs: the
piece maps come back exactly as refined as they were at checkpoint.

Supported strategies: the holistic kernel and standard adaptive
cracking.  Anything else raises :class:`~repro.errors.PersistError` --
better loud than a snapshot that silently drops learned state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro import faults
from repro.cracking.index import CrackerIndex
from repro.cracking.piecemap import PieceMap
from repro.errors import PersistError
from repro.persist.format import load_array
from repro.simtime.clock import SimClock
from repro.storage.catalog import ColumnRef
from repro.storage.column import Column, ColumnStats
from repro.storage.database import Database
from repro.storage.dtypes import type_by_name
from repro.storage.table import Table

#: Typed columns a crack tape flattens into (origins ride separately
#: as a unicode array).
_TAPE_NUMERIC = (
    ("timestamps", np.float64),
    ("pivots", np.float64),
    ("positions", np.int64),
    ("piece_sizes", np.int64),
    ("workers", np.int64),
)

#: Tape scope name for the holistic kernel's shared tape.
SHARED_TAPE = "__shared__"


def _tape_to_arrays(
    state: dict, prefix: str, arrays: dict[str, np.ndarray]
) -> dict:
    """Pack one tape's exported record lists; returns its meta part."""
    for key, dtype in _TAPE_NUMERIC:
        arrays[f"{prefix}/{key}"] = np.asarray(state[key], dtype=dtype)
    arrays[f"{prefix}/origins"] = np.asarray(state["origins"], dtype=str)
    return {
        "counts": state["counts"],
        "seen": state["seen"],
        "stalls": state["stalls"],
    }


def _tape_from_arrays(
    root, manifest: dict, prefix: str, tape_meta: dict
) -> dict:
    """Reassemble a tape state dict from snapshot arrays + meta."""
    entries = manifest["arrays"]
    state = {
        key: load_array(root, entries[f"{prefix}/{key}"]).tolist()
        for key, _ in _TAPE_NUMERIC
    }
    state["origins"] = [
        str(o) for o in load_array(root, entries[f"{prefix}/origins"])
    ]
    state["counts"] = tape_meta["counts"]
    state["seen"] = tape_meta["seen"]
    state["stalls"] = tape_meta["stalls"]
    return state


def _strategy_meta(strategy) -> dict:
    name = getattr(strategy, "name", None)
    if name == "holistic":
        return {
            "name": "holistic",
            "config": dataclasses.asdict(strategy.config),
        }
    if name == "adaptive":
        if strategy.variant != "standard":
            raise PersistError(
                f"adaptive variant {strategy.variant!r} is not "
                "snapshot-supported (stochastic/hybrid refinement "
                "state is not serializable); use 'standard'"
            )
        return {
            "name": "adaptive",
            "config": {
                "variant": strategy.variant,
                "track_rowids": strategy.track_rowids,
                "seed": strategy.seed,
                "stop_piece_size": strategy.stop_piece_size,
            },
        }
    raise PersistError(
        f"strategy {name!r} is not snapshot-supported "
        "(supported: holistic, adaptive[standard])"
    )


def capture_state(
    db: Database,
    strategy=None,
    session=None,
    extra: dict | None = None,
) -> tuple[dict[str, np.ndarray], dict, dict[str, object]]:
    """Flatten the engine into (arrays, meta, dirtiness tokens).

    ``tokens`` maps each array name to a cheap hashable fingerprint of
    the live object backing it; :class:`~repro.persist.manager.
    SnapshotManager` compares tokens across checkpoints to carry
    unchanged arrays forward instead of rewriting them.  ``None``
    means "always rewrite" (used for the small pending stores, which
    have no version counter).

    Raises:
        PersistError: on an unsupported strategy or a running tuning
            worker pool (snapshots need settled index state).
    """
    pool = getattr(strategy, "worker_pool", None)
    if pool is not None and pool.is_running:
        raise PersistError(
            "cannot capture a snapshot while tuning workers are "
            "running; drain and stop them first"
        )
    arrays: dict[str, np.ndarray] = {}
    tokens: dict[str, object] = {}
    tables_meta = []
    for table in db.catalog:
        columns_meta = []
        for column in table:
            name = f"column/{table.name}/{column.name}"
            arrays[name] = column.values
            tokens[name] = ("col", id(column.values))
            stats = column.stats
            columns_meta.append(
                {
                    "name": column.name,
                    "ctype": column.ctype.name,
                    "row_count": stats.row_count,
                    "min_value": stats.min_value,
                    "max_value": stats.max_value,
                }
            )
            pending = table.updates_for(column.name)
            base = f"pending/{table.name}/{column.name}"
            arrays[f"{base}/ins"] = pending.insert_values
            arrays[f"{base}/delpos"] = pending.delete_positions
            arrays[f"{base}/delval"] = pending.deleted_values
            for suffix in ("ins", "delpos", "delval"):
                tokens[f"{base}/{suffix}"] = None
        tables_meta.append({"name": table.name, "columns": columns_meta})

    meta: dict = {
        "clock": db.clock.state_dict()
        if isinstance(db.clock, SimClock)
        else None,
        "tables": tables_meta,
        "strategy": None,
        "session": session.export_state() if session is not None else None,
        "indexes": [],
        "monitor": None,
        "ranking": None,
        "kernel": None,
        "tapes": {},
        "extra": extra,
    }

    if strategy is not None:
        meta["strategy"] = _strategy_meta(strategy)
        indexes = strategy.indexes
        for ref, index in indexes.items():
            if not isinstance(index, CrackerIndex):
                raise PersistError(
                    f"index on {ref} is {type(index).__name__}, not "
                    "snapshot-supported"
                )
            base = f"index/{ref.table}/{ref.column}"
            piece_map = index.piece_map
            with index.lock:
                arrays[f"{base}/values"] = index.values
                rowids = index.rowids
                if rowids is not None:
                    arrays[f"{base}/rowids"] = rowids
                arrays[f"{base}/pivots"] = np.asarray(
                    piece_map.pivots(), dtype=np.float64
                )
                arrays[f"{base}/cuts"] = np.asarray(
                    piece_map.cuts(), dtype=np.int64
                )
                arrays[f"{base}/flags"] = np.asarray(
                    piece_map.sorted_flags(), dtype=np.bool_
                )
                token = (
                    "idx",
                    piece_map.version,
                    id(index.values),
                    id(rowids),
                )
                for suffix in ("values", "rowids", "pivots", "cuts", "flags"):
                    key = f"{base}/{suffix}"
                    if key in arrays:
                        tokens[key] = token
                meta["indexes"].append(
                    {
                        "table": ref.table,
                        "column": ref.column,
                        "has_rowids": rowids is not None,
                        "copy_charged": index._copy_charged,
                    }
                )
        if meta["strategy"]["name"] == "holistic":
            meta["monitor"] = strategy.monitor.export_state()
            meta["ranking"] = strategy.ranking.export_state()
            meta["kernel"] = {
                "idle_windows": strategy.idle_windows,
                "boost_cracks_applied": strategy.boost_cracks_applied,
            }
            tape_state = strategy.tape.export_state()
            meta["tapes"][SHARED_TAPE] = _tape_to_arrays(
                tape_state, f"tape/{SHARED_TAPE}", arrays
            )
            token = ("tape", tape_state["seen"])
            for key in arrays:
                if key.startswith(f"tape/{SHARED_TAPE}/"):
                    tokens[key] = token
        else:
            for ref, index in indexes.items():
                scope = f"{ref.table}/{ref.column}"
                tape_state = index.tape.export_state()
                meta["tapes"][scope] = _tape_to_arrays(
                    tape_state, f"tape/{scope}", arrays
                )
                token = ("tape", tape_state["seen"])
                for key in arrays:
                    if key.startswith(f"tape/{scope}/"):
                        tokens[key] = token
    return arrays, meta, tokens


@dataclass(slots=True)
class RestoredState:
    """Everything :func:`restore_state` rebuilt from a snapshot."""

    db: Database
    strategy: object | None
    session: object | None
    generation: int
    manifest: dict
    #: How checksums were verified: ``"eager"`` (before trusting the
    #: snapshot), ``"lazy"`` (a :class:`~repro.persist.verify.
    #: BackgroundVerifier` is running -- see :attr:`verifier`) or
    #: ``"none"``.
    verification: str = "none"
    #: Generations that failed validation and were skipped before this
    #: one restored (the corruption walk-back trail).
    fallback_generations: list[int] = field(default_factory=list)
    #: The background checksum verifier when ``verification == "lazy"``.
    verifier: object | None = None

    @property
    def extra(self) -> dict | None:
        """The caller-supplied ``extra`` dict stored at checkpoint."""
        return self.manifest["meta"].get("extra")


def restore_state(
    root,
    generation: int,
    manifest: dict,
    mmap_mode: str = "c",
    cost_model=None,
) -> RestoredState:
    """Rebuild the engine from a loaded manifest.

    Args:
        root: snapshot root directory.
        generation: the manifest's generation (recorded on the result).
        manifest: output of :func:`repro.persist.format.
            read_current_manifest`.
        mmap_mode: how cracker columns/maps are opened; the default
            ``'c'`` (copy-on-write) lets future cracks mutate the
            in-memory view without writing back.  Base columns are
            always opened ``'r'``.
        cost_model: optional :class:`~repro.simtime.model.CostModel`
            for the rebuilt clock (must match the one used when the
            snapshot was written for virtual time to stay coherent).

    Raises:
        PersistError: on structural corruption (missing arrays,
            mismatched lengths, unknown strategy).
    """
    # Transient IO failures surface here, before any state is built;
    # repro.persist.manager.restore_snapshot retries this whole call.
    faults.trip("persist.restore")
    meta = manifest["meta"]
    entries = manifest["arrays"]

    clock_state = meta.get("clock")
    clock = SimClock(cost_model)
    if clock_state is not None:
        clock.restore_state(clock_state)
    db = Database(clock=clock, cost_model=cost_model)

    for table_meta in meta["tables"]:
        table = Table(table_meta["name"])
        for column_meta in table_meta["columns"]:
            name = column_meta["name"]
            key = f"column/{table.name}/{name}"
            try:
                values = load_array(root, entries[key], mmap_mode="r")
            except KeyError:
                raise PersistError(f"snapshot lacks array {key!r}") from None
            column = Column(
                name,
                values,
                ctype=type_by_name(column_meta["ctype"]),
                stats=ColumnStats(
                    row_count=int(column_meta["row_count"]),
                    min_value=float(column_meta["min_value"]),
                    max_value=float(column_meta["max_value"]),
                ),
            )
            table.add_column(column)
            base = f"pending/{table.name}/{name}"
            table.updates_for(name).restore_state(
                load_array(root, entries[f"{base}/ins"]),
                load_array(root, entries[f"{base}/delpos"]),
                load_array(root, entries[f"{base}/delval"]),
            )
        db.add_table(table)

    strategy = None
    strategy_meta = meta.get("strategy")
    if strategy_meta is not None:
        strategy = _restore_strategy(
            root, manifest, db, strategy_meta, mmap_mode
        )

    session = None
    if meta.get("session") is not None:
        if strategy is None:
            raise PersistError(
                "snapshot has session state but no strategy"
            )
        from repro.engine.session import Session

        session = Session(database=db, strategy=strategy)
        session.restore_state(meta["session"])

    return RestoredState(
        db=db,
        strategy=strategy,
        session=session,
        generation=generation,
        manifest=manifest,
    )


def _restore_index(
    root,
    manifest: dict,
    db: Database,
    index_meta: dict,
    mmap_mode: str,
    tape,
) -> tuple[ColumnRef, CrackerIndex]:
    entries = manifest["arrays"]
    ref = ColumnRef(index_meta["table"], index_meta["column"])
    column = db.catalog.column(ref)
    base = f"index/{ref.table}/{ref.column}"
    values = load_array(root, entries[f"{base}/values"], mmap_mode=mmap_mode)
    rowids = None
    if index_meta["has_rowids"]:
        rowids = load_array(
            root, entries[f"{base}/rowids"], mmap_mode=mmap_mode
        )
    piece_map = PieceMap.from_state(
        len(values),
        load_array(root, entries[f"{base}/pivots"]),
        load_array(root, entries[f"{base}/cuts"]),
        load_array(root, entries[f"{base}/flags"]),
    )
    index = CrackerIndex.from_state(
        column,
        values,
        rowids,
        piece_map,
        clock=db.clock,
        tape=tape,
        copy_charged=bool(index_meta["copy_charged"]),
    )
    return ref, index


def _restore_strategy(
    root, manifest: dict, db: Database, strategy_meta: dict, mmap_mode: str
):
    meta = manifest["meta"]
    name = strategy_meta["name"]
    config = strategy_meta["config"]
    if name == "holistic":
        from repro.holistic.kernel import HolisticConfig, HolisticKernel

        kernel = HolisticKernel(db, HolisticConfig(**config))
        kernel.tape.restore_state(
            _tape_from_arrays(
                root,
                manifest,
                f"tape/{SHARED_TAPE}",
                meta["tapes"][SHARED_TAPE],
            )
        )
        for index_meta in meta["indexes"]:
            ref, index = _restore_index(
                root, manifest, db, index_meta, mmap_mode, kernel.tape
            )
            kernel.indexes[ref] = index
            kernel.ranking.register(ref, index)
            if kernel.worker_pool is not None:
                kernel.worker_pool.register_index(ref, index)
        kernel.monitor.restore_state(meta["monitor"])
        kernel.ranking.restore_state(meta["ranking"])
        kernel.idle_windows = int(meta["kernel"]["idle_windows"])
        kernel.boost_cracks_applied = int(
            meta["kernel"]["boost_cracks_applied"]
        )
        return kernel
    if name == "adaptive":
        from repro.cracking.tape import CrackTape
        from repro.engine.strategies import AdaptiveStrategy

        strategy = AdaptiveStrategy(
            db,
            variant=config["variant"],
            track_rowids=config["track_rowids"],
            seed=config["seed"],
            stop_piece_size=config["stop_piece_size"],
        )
        for index_meta in meta["indexes"]:
            scope = f"{index_meta['table']}/{index_meta['column']}"
            tape = CrackTape()
            tape.restore_state(
                _tape_from_arrays(
                    root, manifest, f"tape/{scope}", meta["tapes"][scope]
                )
            )
            ref, index = _restore_index(
                root, manifest, db, index_meta, mmap_mode, tape
            )
            strategy.indexes[ref] = index
        return strategy
    raise PersistError(f"snapshot names unknown strategy {name!r}")
