"""Background snapshot verification -- checksums off the critical path.

Eager restore verification (:func:`~repro.persist.format.
verify_manifest`) re-hashes every array before the engine comes up,
which costs a full data scan and defeats the O(metadata) memmap
restart.  :class:`BackgroundVerifier` moves that scan onto a daemon
thread: the engine starts serving immediately off the structurally
validated snapshot (:func:`~repro.persist.format.
quick_verify_manifest` has already ruled out torn and missing files),
and silent bit rot is reported asynchronously.  Callers that need a
hard guarantee -- the chaos bench's bit-flip scenario -- :meth:`wait`
for the verdict and re-restore with the bad generation excluded.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.errors import ConcurrencyError, PersistError
from repro.persist.format import verify_manifest


class BackgroundVerifier:
    """Re-hashes one restored generation's arrays on a daemon thread.

    Args:
        root: snapshot root directory.
        manifest: the restored generation's manifest.
        generation: its number (for reporting only).
    """

    def __init__(self, root, manifest: dict, generation: int) -> None:
        self.root = Path(root)
        self.manifest = manifest
        self.generation = generation
        self.failures: list[PersistError] = []
        self._thread = threading.Thread(
            target=self._run,
            name=f"snapshot-verify-gen-{generation}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            verify_manifest(self.root, self.manifest)
        except PersistError as error:
            self.failures.append(error)

    @property
    def done(self) -> bool:
        """Whether the scan has finished (pass or fail)."""
        return not self._thread.is_alive()

    @property
    def ok(self) -> bool:
        """Whether the scan finished and every checksum matched."""
        return self.done and not self.failures

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the scan finishes; returns whether it passed.

        Raises:
            ConcurrencyError: if the scan is still running after
                ``timeout_s`` seconds.
        """
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise ConcurrencyError(
                f"snapshot verification of generation {self.generation} "
                f"still running after {timeout_s}s"
            )
        return not self.failures
