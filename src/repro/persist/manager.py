"""Snapshot lifecycle: incremental checkpoints and one-call restore.

:class:`SnapshotManager` owns one snapshot root for one live engine.
Every :meth:`~SnapshotManager.checkpoint` publishes a new generation,
but only *dirty* arrays are rewritten: the capture layer fingerprints
each array's backing object (piece-map versions, array identities,
tape counters) and unchanged files are carried forward by manifest
reference.  A steady-state checkpoint of a converged index therefore
writes kilobytes, not the data set.

:class:`IncrementalCheckpointer` adapts a manager to the holistic
scheduler's auxiliary-action interface (``due``/``perform``): durable
progress competes with index refinement for idle cycles, exactly like
the paper's random cracks, and its cost is charged to the simulated
clock like any other action.

:func:`restore_snapshot` is the restart path::

    restored = restore_snapshot("snapdir")
    session = restored.session          # counters, clock, indexes back
    session.run_query(...)              # zero re-cracking
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro import faults
from repro.errors import ConfigError, InjectedFault, PersistError
from repro.persist.format import (
    CURRENT_FILE,
    current_generation,
    generation_name,
    list_generations,
    prune,
    quick_verify_manifest,
    read_current_manifest,
    read_manifest,
    verify_manifest,
    write_generation,
)
from repro.persist.snapshot import (
    RestoredState,
    capture_state,
    restore_state,
)
from repro.persist.verify import BackgroundVerifier
from repro.simtime.charge import CostCharge
from repro.util.retry import retry_call


@dataclass(slots=True)
class CheckpointResult:
    """What one checkpoint wrote."""

    generation: int
    arrays_written: int
    arrays_carried: int
    bytes_written: int


class SnapshotManager:
    """Writes incremental, crash-consistent snapshots of one engine.

    Args:
        root: snapshot directory (created on first checkpoint).
        db: the live database.
        strategy: the indexing strategy whose learned state rides
            along (holistic kernel or standard adaptive cracking);
            ``None`` snapshots storage only.
        session: optional session whose timing counters ride along.
        verify: re-hash every array after publishing (paranoia mode
            for tests; defaults off -- checksums are still *recorded*
            either way and checked on demand at restore).
        keep_history: retain superseded generations; by default they
            are pruned once unreferenced, keeping disk usage
            proportional to one snapshot plus the last delta.
    """

    def __init__(
        self,
        root,
        db,
        strategy=None,
        session=None,
        verify: bool = False,
        keep_history: bool = False,
    ) -> None:
        self.root = Path(root)
        self.db = db
        self.strategy = strategy
        self.session = session
        self.verify = verify
        self.keep_history = keep_history
        self._last_tokens: dict[str, object] = {}
        self._last_entries: dict[str, dict] = {}
        self.last_result: CheckpointResult | None = None

    def checkpoint(self, extra: dict | None = None) -> CheckpointResult:
        """Publish a new generation; returns what was written.

        Args:
            extra: JSON-serializable payload stored in the manifest
                (e.g. a workload cursor + result digest so a restarted
                driver can resume its trace mid-stream).

        Raises:
            PersistError: on capture or write failure; the previous
                generation stays intact either way.
        """
        arrays, meta, tokens = capture_state(
            self.db, self.strategy, self.session, extra=extra
        )
        fresh: dict = {}
        carry: dict = {}
        for name, array in arrays.items():
            token = tokens.get(name)
            entry = self._last_entries.get(name)
            if (
                token is not None
                and entry is not None
                and self._last_tokens.get(name) == token
            ):
                carry[name] = entry
            else:
                fresh[name] = array
        generation = write_generation(self.root, fresh, meta, carry)
        manifest_generation, manifest = read_current_manifest(self.root)
        if manifest_generation != generation:  # pragma: no cover
            raise PersistError(
                f"published generation {generation} but CURRENT reads "
                f"{manifest_generation}"
            )
        if self.verify:
            verify_manifest(self.root, manifest)
        if not self.keep_history:
            prune(self.root)
        self._last_entries = dict(manifest["arrays"])
        self._last_tokens = dict(tokens)
        result = CheckpointResult(
            generation=generation,
            arrays_written=len(fresh),
            arrays_carried=len(carry),
            bytes_written=sum(
                int(a.nbytes) for a in fresh.values()
            ),
        )
        self.last_result = result
        return result


def restore_snapshot(
    root,
    mmap_mode: str = "c",
    cost_model=None,
    verify: bool | str = False,
    fallback: bool = True,
    exclude: Iterable[int] = (),
) -> RestoredState:
    """Rebuild a database (+ strategy + session) from ``root``.

    The restart path is self-healing: every candidate generation is
    structurally validated (:func:`~repro.persist.format.
    quick_verify_manifest` -- catches torn and missing files in
    O(metadata)), transient restore failures are retried with capped
    backoff, and when the current generation is corrupt -- a torn
    array, a garbage ``CURRENT`` pointer, a broken manifest -- the
    restore *walks back* to the newest older generation that still
    validates.  A corrupt pointer is repaired in place once a
    generation restores, so subsequent checkpoints land normally.

    Args:
        root: snapshot root directory.
        mmap_mode: how cracker arrays are opened (default
            copy-on-write; pass ``None`` to load everything eagerly).
        cost_model: cost model for the rebuilt clock; must match the
            writing side's for virtual time to stay coherent.
        verify: ``True``/``"eager"`` recomputes every array checksum
            before trusting the snapshot (a full data scan; corrupt
            generations join the walk-back); ``"lazy"`` starts a
            :class:`~repro.persist.verify.BackgroundVerifier` instead
            and keeps restore O(metadata) -- check
            ``restored.verifier`` and, on failure, re-restore with the
            bad generation in ``exclude``.
        fallback: walk back to older generations when the newest is
            corrupt; ``False`` restores ``CURRENT`` or dies.
        exclude: generation numbers to skip (e.g. one a lazy verifier
            has since proven bit-rotted).

    Raises:
        PersistError: when no generation was ever published, or every
            candidate generation fails validation.
    """
    root = Path(root)
    excluded = frozenset(int(g) for g in exclude)
    pointer_error: PersistError | None = None
    try:
        current = current_generation(root)
    except PersistError as error:
        pointer_error = error
        current = None
    candidates: list[int] = []
    if current is not None and current not in excluded:
        candidates.append(current)
    if fallback:
        for generation in reversed(list_generations(root)):
            if generation not in candidates and generation not in excluded:
                candidates.append(generation)
    if not candidates:
        if pointer_error is not None and not fallback:
            raise pointer_error
        raise PersistError(
            f"no restorable snapshot under {root} "
            f"(excluded: {sorted(excluded) or 'none'})"
        )

    eager = verify is True or verify == "eager"
    failed: list[int] = []
    errors: list[str] = []
    for generation in candidates:
        try:
            manifest = read_manifest(root, generation)
            quick_verify_manifest(root, manifest)
            if eager:
                verify_manifest(root, manifest)
            retried: list[Exception] = []
            restored = retry_call(
                lambda: restore_state(
                    root,
                    generation,
                    manifest,
                    mmap_mode=mmap_mode,
                    cost_model=cost_model,
                ),
                retry_on=(InjectedFault, OSError),
                on_retry=lambda attempt, error: retried.append(error),
            )
        except (PersistError, InjectedFault, OSError) as error:
            failed.append(generation)
            errors.append(f"{generation_name(generation)}: {error}")
            continue
        for _ in retried:
            faults.recovered(
                "persist.restore",
                f"restore of {generation_name(generation)} retried",
            )
        restored.verification = "eager" if eager else (
            "lazy" if verify == "lazy" else "none"
        )
        restored.fallback_generations = failed
        if verify == "lazy":
            restored.verifier = BackgroundVerifier(root, manifest, generation)
        if pointer_error is not None:
            # Heal the broken pointer so the next checkpoint publishes
            # normally (and garbage-collects anything newer).
            pointer_tmp = root / f"{CURRENT_FILE}.tmp"
            pointer_tmp.write_text(generation_name(generation) + "\n")
            os.replace(pointer_tmp, root / CURRENT_FILE)
        if failed or excluded or pointer_error is not None:
            faults.recovered_matching(
                "persist.",
                f"restored {generation_name(generation)} "
                f"(skipped: {failed + sorted(excluded) or 'none'})",
            )
        return restored
    raise PersistError(
        f"every candidate generation under {root} failed to restore: "
        + "; ".join(errors)
    )


class IncrementalCheckpointer:
    """Checkpointing as a rankable auxiliary action (paper idle loop).

    Attached to the holistic scheduler
    (:meth:`repro.holistic.kernel.HolisticKernel.attach_checkpointer`),
    it is consulted before every serial idle action:

    * nothing new happened since the last generation -> never due;
    * work accumulated but candidates still rank -> due once every
      ``interval_actions`` units of observed progress (queries plus
      tuning actions), so durability takes a bounded slice of idle
      time;
    * every candidate is refined -> due immediately (idle cycles are
      otherwise wasted, paper §3's "nothing better to do" case).

    Each performed checkpoint charges the simulated clock for the
    bytes it physically wrote, so durability shows up in virtual time
    like any other kernel work.

    Args:
        manager: the snapshot manager to drive.
        interval_actions: progress units between due checkpoints.
        extra_provider: optional zero-arg callable whose result is
            stored as the generation's ``extra`` payload.
    """

    def __init__(
        self,
        manager: SnapshotManager,
        interval_actions: int = 256,
        extra_provider=None,
    ) -> None:
        if interval_actions < 1:
            raise ConfigError(
                f"interval_actions must be >= 1, got {interval_actions}"
            )
        self.manager = manager
        self.interval_actions = interval_actions
        self.extra_provider = extra_provider
        self.generations_written = 0
        self._progress_at_last = self._progress()

    def _progress(self) -> int:
        """Monotone count of engine work since the manager was born."""
        strategy = self.manager.strategy
        total = 0
        ranking = getattr(strategy, "ranking", None)
        if ranking is not None:
            for state in ranking.states():
                total += state.queries_seen + state.tuning_actions
        tape = getattr(strategy, "tape", None)
        if tape is not None:
            total += tape.count()
        return total

    def due(self, ranking) -> bool:
        """Whether the next idle action should be a checkpoint."""
        progress = self._progress()
        delta = progress - self._progress_at_last
        if delta <= 0:
            return False
        if ranking.best() is None:
            return True
        return delta >= self.interval_actions

    def perform(self, clock) -> bool:
        """Write one incremental generation and charge its cost."""
        extra = self.extra_provider() if self.extra_provider else None
        result = self.manager.checkpoint(extra=extra)
        self._progress_at_last = self._progress()
        self.generations_written += 1
        # Durability work is priced like a materialization of the
        # bytes that actually hit disk (carried arrays are free).
        written_elements = result.bytes_written // 8
        if written_elements:
            clock.charge(
                CostCharge(elements_materialized=written_elements)
            )
        return True
