"""The concurrent multi-client serving front-end (ISSUE 5).

N clients submit range queries against **one** shared kernel; a window
former coalesces their in-flight queries into cross-session windows;
each window runs one silent physical cracking pass per column
(:meth:`CrackerIndex.crack_bounds_batch`) and then replays every
client's accounting on that client's own *lane* -- a private
:class:`~repro.simtime.clock.SimClock` fork plus a detached shadow
replay per column (:class:`~repro.cracking.batch.DetachedCrackReplay`).

The core invariant, the multi-tenant generalization of ISSUE 4's
batch==sequential guarantee:

    **per-client accounting is bit-for-bit what that client would have
    measured running alone against a fresh kernel**, no matter how the
    former interleaves clients, how deep the windows are, or what
    background tuning workers do to the shared index in the meantime.

It holds because a crack's position is order independent (the cut for
``v`` always lands at the number of elements ``< v``), so the shared
physical index -- which accumulates the *union* of everyone's cracks --
can serve every client's solo piece boundaries, while each client's
shadow map evolves exactly as its solo piece map would.  The physical
work is paid once; the per-client replays are pure accounting.

Concurrency: the front-end itself is a serial loop (one window at a
time -- concurrency between clients is *logical*, expressed by window
coalescing), but it coexists with a running
:class:`~repro.holistic.workers.TuningWorkerPool`: while workers are
racing, each window holds its columns' table-level latches so worker
cracks interleave *between* windows, never mid-replay.

Shared mutable state the serving loop does not own -- pending-update
delta stores in particular -- must stay unmutated for the duration of
a run; stage updates between runs, as the benchmarks do.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import faults
from repro.cracking.batch import DetachedCrackReplay
from repro.cracking.tape import CrackTape
from repro.engine.operators import PendingWindow
from repro.engine.plan import ColumnWindow, group_by_column
from repro.engine.query import RangeQuery
from repro.engine.session import QueryRecord, SessionReport
from repro.engine.strategies import AdaptiveStrategy, IndexingStrategy
from repro.errors import ConfigError
from repro.holistic.kernel import HolisticKernel
from repro.serving.window import CrossSessionWindowFormer, WindowEntry
from repro.simtime.accounting import make_accountant
from repro.simtime.clock import SimClock, wall_now
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.views import (
    MaterializedResult,
    PositionsView,
    SelectionResult,
)


class ClientLane:
    """One client's serial accounting lane.

    Owns the client's clock fork, its solo-trajectory shadow replays
    (one per column, created on first touch), its crack tape and its
    :class:`SessionReport` of client-tagged query records -- everything
    a solo session would have produced, kept bit-identical under
    serving.
    """

    __slots__ = ("name", "clock", "tape", "report", "_cumulative_s", "replays")

    def __init__(self, name: str, clock: SimClock, strategy_name: str) -> None:
        self.name = name
        self.clock = clock
        self.tape = CrackTape()
        self.report = SessionReport(strategy=strategy_name, client=name)
        self._cumulative_s = 0.0
        self.replays: dict[tuple[str, str], DetachedCrackReplay] = {}

    @property
    def query_count(self) -> int:
        return len(self.report.queries)

    def shadow_state(self) -> dict[tuple[str, str], tuple[list, list]]:
        """Per-column (pivots, cuts) of this client's shadow maps --
        the client's solo piece-map trajectory."""
        return {
            key: (list(replay.sim.pivots), list(replay.sim.cuts))
            for key, replay in sorted(self.replays.items())
        }


@dataclass(slots=True)
class ClientFault:
    """One client failure the front-end isolated and survived.

    ``kind`` is ``"malformed"`` (the query itself was invalid -- e.g.
    an inverted range smuggled past :class:`RangeQuery` validation) or
    ``"poison"`` (the query's replay blew up mid-window).  ``action``
    records the degraded-mode step that answered it: ``"rejected"``
    (empty result, no accounting), ``"retried_solo"`` (second replay
    attempt succeeded) or ``"scan_fallback"`` (answered by a direct
    base-column scan, bypassing the index entirely).
    """

    client: str
    query: RangeQuery
    kind: str
    action: str
    error: str = ""


@dataclass(slots=True)
class ServingReport:
    """Aggregate outcome of one serving run."""

    strategy: str
    clients: dict[str, SessionReport]
    windows: int = 0
    window_sizes: list[int] = field(default_factory=list)
    #: Wall seconds per window, aligned with ``window_sizes`` (only
    #: populated by :meth:`ServingFrontend.run`).
    window_wall_s: list[float] = field(default_factory=list)
    #: Client failures isolated in degraded mode (aliases the
    #: front-end's cumulative list).
    faults: list[ClientFault] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return sum(len(r.queries) for r in self.clients.values())

    def query_latencies_s(self) -> list[float]:
        """Per-query wall latency under the batch-service model: every
        query in a window waits for the whole window to complete."""
        latencies: list[float] = []
        for size, wall in zip(self.window_sizes, self.window_wall_s):
            latencies.extend([wall] * size)
        return latencies


class ServingFrontend:
    """A shared kernel serving many logical clients concurrently.

    Args:
        db: the shared database.
        strategy: the shared kernel -- standard adaptive cracking or a
            holistic kernel.  Stochastic/hybrid adaptive variants make
            order-dependent refinement decisions, and the holistic
            no-idle hot boost mutates the index mid-query from shared
            statistics; neither can keep per-client accounting
            solo-identical, so they are rejected.
        former: window former; defaults to a closed-loop
            :class:`CrossSessionWindowFormer` with ``depth``.
        depth: per-client window depth of the default former.

    Raises:
        ConfigError: for a strategy that cannot serve concurrently.
    """

    def __init__(
        self,
        db: Database,
        strategy: IndexingStrategy,
        former=None,
        depth: int = 8,
    ) -> None:
        self.db = db
        self.strategy = strategy
        self._holistic = isinstance(strategy, HolisticKernel)
        if self._holistic:
            config = strategy.config
            if (
                config.hot_column_threshold > 0
                and config.hot_boost_cracks > 0
            ):
                raise ConfigError(
                    "the holistic hot-range boost mutates the shared "
                    "index from shared statistics mid-query; disable it "
                    "(hot_column_threshold=0) to serve concurrently"
                )
        elif isinstance(strategy, AdaptiveStrategy):
            if strategy.variant != "standard":
                raise ConfigError(
                    f"adaptive variant {strategy.variant!r} makes "
                    "order-dependent refinement decisions; only "
                    "'standard' can serve concurrently"
                )
        else:
            raise ConfigError(
                f"strategy {strategy.name!r} has no concurrent serving "
                "path; use standard adaptive cracking or the holistic "
                "kernel"
            )
        self.former = (
            former if former is not None else CrossSessionWindowFormer(depth)
        )
        self.lanes: dict[str, ClientLane] = {}
        #: Per-column order-independent cut positions accumulated over
        #: every window's physical pass; each lane's replays resolve
        #: their fresh bounds here.
        self._positions: dict[tuple[str, str], dict[float, int]] = {}
        self.windows_served = 0
        #: Client failures isolated in degraded mode, across every
        #: window this front-end has served.
        self.faults: list[ClientFault] = []

    # -- clients ---------------------------------------------------------

    def add_client(
        self,
        name: str,
        queries: Sequence[RangeQuery] = (),
        arrivals: Sequence[float] | None = None,
    ) -> ClientLane:
        """Register a client lane and admit its queries.

        Raises:
            ConfigError: on a duplicate client name.
        """
        if name in self.lanes:
            raise ConfigError(f"client {name!r} already registered")
        lane = ClientLane(
            name,
            clock=self._fork_clock(),
            strategy_name=self.strategy.name,
        )
        self.lanes[name] = lane
        if len(queries) or arrivals is not None:
            self.former.admit(name, queries, arrivals)
        return lane

    def submit(
        self,
        name: str,
        queries: Sequence[RangeQuery],
        arrivals: Sequence[float] | None = None,
    ) -> None:
        """Admit more queries for an existing client.

        Raises:
            ConfigError: for an unknown client.
        """
        if name not in self.lanes:
            raise ConfigError(f"unknown client {name!r}; add_client first")
        self.former.admit(name, queries, arrivals)

    def _fork_clock(self) -> SimClock:
        clock = self.db.clock
        if isinstance(clock, SimClock):
            return clock.fork()
        return SimClock(self.db.cost_model)

    # -- the serving loop ------------------------------------------------

    def run(self) -> ServingReport:
        """Serve windows until every admitted query is answered."""
        report = ServingReport(
            strategy=self.strategy.name,
            clients={
                name: lane.report for name, lane in self.lanes.items()
            },
            faults=self.faults,
        )
        while True:
            entries = self.former.next_window()
            if not entries:
                break
            started = wall_now()
            self.serve_window(entries)
            report.window_wall_s.append(wall_now() - started)
            report.window_sizes.append(len(entries))
            report.windows += 1
        return report

    def serve_window(
        self, entries: list[WindowEntry]
    ) -> list[SelectionResult]:
        """Execute one formed window; results align with ``entries``.

        One silent physical pass per column cracks the union of every
        client's bounds (under the columns' table latches while tuning
        workers race), then each client's slice of the window replays
        on its own lane in stream order.

        Degraded mode: a malformed entry (inverted range smuggled past
        :class:`RangeQuery` validation) is rejected *per entry* -- it
        gets an empty result and a :class:`ClientFault`, and never
        touches the shared index, so every other client in the window
        is served exactly as if the bad entry had not existed.

        Raises:
            ConfigError: for an entry from an unregistered client (a
                caller bug, not a client fault).
        """
        if not entries:
            return []
        for entry in entries:
            if entry.client not in self.lanes:
                raise ConfigError(
                    f"window entry from unknown client {entry.client!r}"
                )
        results: list[SelectionResult | None] = [None] * len(entries)
        live: list[int] = []
        for i, entry in enumerate(entries):
            query = entry.query
            if query.low > query.high:
                column = self.db.catalog.column(query.ref)
                self.faults.append(
                    ClientFault(
                        client=entry.client,
                        query=query,
                        kind="malformed",
                        action="rejected",
                        error=(
                            f"range inverted: low={query.low} > "
                            f"high={query.high}"
                        ),
                    )
                )
                results[i] = MaterializedResult(
                    np.empty(0, dtype=column.values.dtype)
                )
            else:
                live.append(i)
        if live:
            served = self._serve_entries([entries[i] for i in live])
            for slot, result in zip(live, served):
                results[slot] = result
        self.windows_served += 1
        return results  # type: ignore[return-value]

    def _serve_entries(
        self, entries: list[WindowEntry]
    ) -> list[SelectionResult]:
        """The physical pass + replay for a window's valid entries."""
        queries = [entry.query for entry in entries]
        windows = group_by_column(queries)
        # Resolve every column before the first crack: an unknown
        # column must fail with the shared index untouched.
        for window in windows:
            self.db.catalog.column(window.ref)
        pool = getattr(self.strategy, "worker_pool", None)
        if pool is not None and not pool.is_running:
            pool = None
        with ExitStack() as latches:
            indexes = {}
            for window in windows:
                indexes[(window.ref.table, window.ref.column)] = (
                    self._index_for(window.ref)
                )
            if pool is not None:
                # Workers are racing: exclude them from every one of
                # this window's columns for the whole window, so their
                # cracks land between windows, never mid-replay.  The
                # table latches stack in sorted column order -- the
                # deterministic order the latch witness enforces.
                for key in sorted(indexes):
                    access = pool.register_index(
                        ColumnRef(*key), indexes[key]
                    )
                    latches.enter_context(access.exclusive())
            for window in windows:
                key = (window.ref.table, window.ref.column)
                fresh = indexes[key].crack_bounds_batch(
                    window.lows, window.highs
                )
                self._positions.setdefault(key, {}).update(fresh)
            results = self._replay_window(entries, windows, indexes)
        return results

    def _index_for(self, ref: ColumnRef):
        if self._holistic:
            return self.strategy.index_for(ref)
        return self.strategy._index_for(ref)

    # -- degraded mode ---------------------------------------------------

    @staticmethod
    def _replay_once(
        replay: DetachedCrackReplay, query: RangeQuery, holistic: bool
    ) -> SelectionResult:
        faults.trip("serving.replay")
        if holistic:
            return replay.replay(query.low, query.high)
        return replay.replay_query(query.low, query.high)

    def _replay_entry(
        self,
        client: str,
        key: tuple[str, str],
        query: RangeQuery,
        replay: DetachedCrackReplay,
        holistic: bool,
    ) -> SelectionResult:
        """Replay one entry, surviving a poison query.

        A failed replay is retried once solo; if the retry also blows
        up, the query is answered by :meth:`_scan_fallback` off the
        base column.  Either way the incident is recorded as a
        :class:`ClientFault` and only this client's accounting can
        deviate -- the injected trip fires *before* the replay touches
        any state, so healthy clients (and the clean path) stay
        bit-identical to solo.
        """
        try:
            return self._replay_once(replay, query, holistic)
        except Exception as exc:
            error = exc
        try:
            result = self._replay_once(replay, query, holistic)
            action = "retried_solo"
        except Exception as exc:
            result = self._scan_fallback(key, query)
            action = "scan_fallback"
            error = exc
        self.faults.append(
            ClientFault(
                client=client,
                query=query,
                kind="poison",
                action=action,
                error=str(error),
            )
        )
        faults.recovered_matching(
            "serving.replay", f"client {client!r}: {action}"
        )
        return result

    def _scan_fallback(
        self, key: tuple[str, str], query: RangeQuery
    ) -> SelectionResult:
        """Answer a query straight off the base column, bypassing the
        index -- the degraded-mode path of last resort.  Pending
        updates are merged by the caller exactly as for a crack
        result."""
        column = self.db.catalog.column(ColumnRef(key[0], key[1]))
        values = column.values
        mask = (values >= query.low) & (values < query.high)
        return PositionsView(values, np.flatnonzero(mask))

    def _replay_window(
        self,
        entries: list[WindowEntry],
        windows: list[ColumnWindow],
        indexes: dict[tuple[str, str], object],
    ) -> list[SelectionResult]:
        # One pending-updates consultation per column, shared across
        # clients; charges are emitted per query on the owning lane.
        pending_slots: list[tuple[PendingWindow, int] | None] = (
            [None] * len(entries)
        )
        ref_of: list[tuple[str, str]] = [None] * len(entries)  # type: ignore[list-item]
        for window in windows:
            key = (window.ref.table, window.ref.column)
            pending = self.db.catalog.table(window.ref.table).updates_for(
                window.ref.column
            )
            pending_window = PendingWindow(pending, window.lows, window.highs)
            overlaps = (
                pending_window.overlapping_slots()
                if pending_window.active
                else None
            )
            for slot, i in enumerate(window.indices):
                ref_of[i] = key
                if overlaps is not None and overlaps[slot]:
                    pending_slots[i] = (pending_window, slot)
        by_client: dict[str, list[int]] = {}
        for i, entry in enumerate(entries):
            by_client.setdefault(entry.client, []).append(i)
        results: list[SelectionResult | None] = [None] * len(entries)
        holistic = self._holistic
        # Deferred shared-kernel statistics: (lows, highs, timestamps)
        # per column, applied once at window end like the one-session
        # batch path does.
        observations: dict[tuple[str, str], tuple[list, list, list]] = {}
        for name, slots in by_client.items():
            lane = self.lanes[name]
            accountant = make_accountant(lane.clock)
            bound: set[tuple[str, str]] = set()
            records = lane.report.queries
            cumulative = lane._cumulative_s
            for i in slots:
                entry = entries[i]
                query = entry.query
                key = ref_of[i]
                replay = lane.replays.get(key)
                if replay is None:
                    replay = DetachedCrackReplay.solo(
                        indexes[key], self._positions[key], lane.tape
                    )
                    lane.replays[key] = replay
                if key not in bound:
                    replay.bind(accountant)
                    bound.add(key)
                started = accountant.now
                if holistic:
                    accountant.charge_query()
                    noted = observations.get(key)
                    if noted is None:
                        noted = observations[key] = ([], [], [])
                    noted[0].append(query.low)
                    noted[1].append(query.high)
                    noted[2].append(accountant.now)
                result = self._replay_entry(
                    name, key, query, replay, holistic
                )
                slotted = pending_slots[i]
                if slotted is not None:
                    result = slotted[0].apply(slotted[1], result, accountant)
                finished = accountant.now
                response = finished - started
                cumulative += response
                records.append(
                    QueryRecord(
                        sequence=len(records) + 1,
                        query=query,
                        response_s=response,
                        wait_s=0.0,
                        result_count=result.count,
                        cumulative_response_s=cumulative,
                        finished_at=finished,
                        client=name,
                    )
                )
                results[i] = result
            lane._cumulative_s = cumulative
            accountant.finish()
        if holistic:
            kernel: HolisticKernel = self.strategy  # type: ignore[assignment]
            for (table, column), noted in observations.items():
                ref = ColumnRef(table, column)
                kernel.monitor.note_many(
                    ref,
                    np.asarray(noted[0], dtype=np.float64),
                    np.asarray(noted[1], dtype=np.float64),
                    noted[2],
                )
                kernel.ranking.note_queries(ref, len(noted[2]))
        return results  # type: ignore[return-value]
