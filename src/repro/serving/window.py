"""Cross-session window forming: coalescing in-flight client queries.

The serving front-end's leverage over one-session batching (ISSUE 4)
is that concurrent clients' in-flight queries can share one physical
cracking pass.  A *window former* decides which submitted queries are
in flight together; the front-end then executes the formed window
through the shared-work path and replays each client's accounting on
its own lane.

Two formers model the two classic traffic shapes:

* :class:`CrossSessionWindowFormer` -- closed loop: every client with
  pending work contributes up to ``depth`` queries per window (a
  connection pool issuing back-to-back requests);
* :class:`OpenLoopWindowFormer` -- open loop: queries carry virtual
  arrival times and a window takes everything that arrived within one
  ``quantum_s`` of the earliest pending arrival (Poisson traffic
  coalescing in the server's accept queue).

Both are deterministic given the admission order, and both are
thread-safe on admit/next_window so producer threads can feed a
serving loop.  Per-client query order is always preserved -- only the
interleaving *across* clients is the former's choice, and per-client
accounting is interleaving-independent (the serving front-end's core
invariant).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.query import RangeQuery
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class WindowEntry:
    """One in-flight query: which client, which position in its stream."""

    client: str
    sequence: int
    query: RangeQuery


class CrossSessionWindowFormer:
    """Closed-loop former: round-robin, up to ``depth`` per client.

    Each window starts from the client after the last one served, so a
    bounded window (``max_window``) rotates fairly over the clients
    instead of draining early-admitted ones first -- no client starves
    while producers keep other queues non-empty.
    """

    def __init__(self, depth: int = 8, max_window: int | None = None) -> None:
        if depth < 1:
            raise ConfigError(f"window depth must be >= 1, got {depth}")
        if max_window is not None and max_window < 1:
            raise ConfigError(f"max_window must be >= 1, got {max_window}")
        self.depth = depth
        self.max_window = max_window
        self._queues: dict[str, deque[RangeQuery]] = {}
        self._taken: dict[str, int] = {}
        #: Client to start the next window from (fair rotation).
        self._resume_from: str | None = None
        self._lock = threading.Lock()

    def admit(
        self,
        client: str,
        queries: Iterable[RangeQuery],
        arrivals: Sequence[float] | None = None,
    ) -> None:
        """Append ``queries`` to ``client``'s stream (arrivals ignored)."""
        with self._lock:
            queue = self._queues.get(client)
            if queue is None:
                queue = self._queues[client] = deque()
                self._taken[client] = 0
            queue.extend(queries)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    def next_window(self) -> list[WindowEntry]:
        """The next in-flight set; empty when every stream is drained."""
        with self._lock:
            clients = list(self._queues)
            if not clients:
                return []
            start = 0
            if self._resume_from in self._queues:
                start = clients.index(self._resume_from)
            entries: list[WindowEntry] = []
            budget = self.max_window
            last_served: str | None = None
            for offset in range(len(clients)):
                client = clients[(start + offset) % len(clients)]
                queue = self._queues[client]
                take = min(self.depth, len(queue))
                if budget is not None:
                    take = min(take, budget - len(entries))
                if take > 0:
                    last_served = client
                for _ in range(take):
                    sequence = self._taken[client]
                    self._taken[client] = sequence + 1
                    entries.append(
                        WindowEntry(client, sequence, queue.popleft())
                    )
                if budget is not None and len(entries) >= budget:
                    break
            if last_served is not None:
                index = clients.index(last_served)
                self._resume_from = clients[(index + 1) % len(clients)]
            return entries


class OpenLoopWindowFormer:
    """Open-loop former: arrival-ordered windows of one time quantum."""

    def __init__(
        self, quantum_s: float = 0.01, max_window: int | None = None
    ) -> None:
        if quantum_s <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum_s}")
        if max_window is not None and max_window < 1:
            raise ConfigError(f"max_window must be >= 1, got {max_window}")
        self.quantum_s = quantum_s
        self.max_window = max_window
        #: (arrival, admission tiebreak, entry) min-heap.
        self._heap: list[tuple[float, int, WindowEntry]] = []
        self._tiebreak = itertools.count()
        self._taken: dict[str, int] = {}
        #: Last admitted arrival per client: a later batch must not
        #: arrive before it, or the heap would serve the client's
        #: stream out of order.
        self._last_arrival: dict[str, float] = {}
        self._lock = threading.Lock()

    def admit(
        self,
        client: str,
        queries: Iterable[RangeQuery],
        arrivals: Sequence[float] | None = None,
    ) -> None:
        """Admit ``queries`` with their virtual ``arrivals``.

        Raises:
            ConfigError: if arrivals are missing, misaligned, or not
                non-decreasing per client -- including across admission
                batches (a client's stream order is its arrival order,
                and serving replays streams in served order).
        """
        queries = list(queries)
        if arrivals is None or len(arrivals) != len(queries):
            raise ConfigError(
                "open-loop admission needs one arrival time per query"
            )
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ConfigError(
                f"client {client!r} arrivals must be non-decreasing"
            )
        with self._lock:
            if queries:
                floor = self._last_arrival.get(client)
                if floor is not None and arrivals[0] < floor:
                    raise ConfigError(
                        f"client {client!r} admitted an arrival "
                        f"({arrivals[0]}) earlier than its last one "
                        f"({floor}); streams must arrive in order"
                    )
                self._last_arrival[client] = float(arrivals[-1])
            sequence = self._taken.get(client, 0)
            for query, arrival in zip(queries, arrivals):
                heapq.heappush(
                    self._heap,
                    (
                        float(arrival),
                        next(self._tiebreak),
                        WindowEntry(client, sequence, query),
                    ),
                )
                sequence += 1
            self._taken[client] = sequence

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._heap)

    def next_window(self) -> list[WindowEntry]:
        """Everything that arrived within one quantum of the earliest
        pending query, in arrival order."""
        with self._lock:
            if not self._heap:
                return []
            horizon = self._heap[0][0] + self.quantum_s
            entries: list[WindowEntry] = []
            while self._heap and self._heap[0][0] < horizon:
                entries.append(heapq.heappop(self._heap)[2])
                if (
                    self.max_window is not None
                    and len(entries) >= self.max_window
                ):
                    break
            return entries
