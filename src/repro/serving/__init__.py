"""Concurrent multi-client serving on one shared holistic kernel.

The first genuinely multi-tenant scenario of the reproduction
(ISSUE 5): a :class:`ServingFrontend` serves N concurrent clients from
one shared kernel, coalescing in-flight queries from *different*
clients into shared cracking work while keeping every client's
response-time accounting bit-for-bit identical to running alone.
"""

from repro.serving.frontend import (
    ClientFault,
    ClientLane,
    ServingFrontend,
    ServingReport,
)
from repro.serving.window import (
    CrossSessionWindowFormer,
    OpenLoopWindowFormer,
    WindowEntry,
)

__all__ = [
    "ClientFault",
    "ClientLane",
    "CrossSessionWindowFormer",
    "OpenLoopWindowFormer",
    "ServingFrontend",
    "ServingReport",
    "WindowEntry",
]
