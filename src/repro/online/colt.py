"""COLT-style online index tuning.

Reproduces the control loop of COLT (Schnaitter et al., SIGMOD 2006 --
the paper's [16]): the workload is monitored continuously; at every
epoch boundary the tuner re-evaluates candidate indexes with
optimizer-style estimates, builds the most promising one if its
amortized benefit over a planning horizon beats its build cost, and
drops indexes that have gone cold.

Builds normally happen *inline*, delaying in-flight queries -- the
online-indexing overhead the paper's Section 2 criticizes.  When the
host strategy receives idle time it can drain the pending-build queue
there instead (see ``OnlineStrategy``), which is the "reorganized
on-the-fly or during idle time" behaviour of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.offline.builder import IndexBuilder
from repro.offline.fullindex import FullIndex
from repro.offline.whatif import WhatIfOptimizer
from repro.online.monitor import WorkloadMonitor
from repro.storage.catalog import ColumnRef


@dataclass(slots=True)
class ColtConfig:
    """Tuning knobs of the online tuner.

    Attributes:
        horizon_queries: how many future queries an index is assumed to
            serve when amortizing its build cost (COLT's planning
            horizon).
        max_indexes: hard cap on concurrently materialized indexes
            (a storage budget stand-in).
        drop_after_epochs: drop an index untouched for this many
            epochs.
        defer_builds: queue builds for idle time instead of building
            inline at the epoch boundary.
    """

    horizon_queries: int = 1_000
    max_indexes: int = 8
    drop_after_epochs: int = 10
    defer_builds: bool = False

    def __post_init__(self) -> None:
        if self.horizon_queries <= 0:
            raise ConfigError(
                f"horizon_queries must be positive: {self.horizon_queries}"
            )
        if self.max_indexes <= 0:
            raise ConfigError(
                f"max_indexes must be positive: {self.max_indexes}"
            )
        if self.drop_after_epochs <= 0:
            raise ConfigError(
                f"drop_after_epochs must be positive: "
                f"{self.drop_after_epochs}"
            )


@dataclass(slots=True)
class EpochDecision:
    """What the tuner decided at one epoch boundary."""

    epoch: int
    built: list[ColumnRef] = field(default_factory=list)
    queued: list[ColumnRef] = field(default_factory=list)
    dropped: list[ColumnRef] = field(default_factory=list)


class ColtTuner:
    """Epoch-driven online index selection."""

    def __init__(
        self,
        monitor: WorkloadMonitor,
        optimizer: WhatIfOptimizer,
        builder: IndexBuilder,
        config: ColtConfig | None = None,
    ) -> None:
        self.monitor = monitor
        self.optimizer = optimizer
        self.builder = builder
        self.config = config if config is not None else ColtConfig()
        self.pending_builds: list[ColumnRef] = []
        self.decisions: list[EpochDecision] = []
        self._last_used_epoch: dict[ColumnRef, int] = {}
        self._dropped: set[ColumnRef] = set()
        self._last_eval_time = 0.0

    # -- index access ----------------------------------------------------

    def index_for(self, ref: ColumnRef) -> FullIndex | None:
        """A usable index on ``ref``, or None."""
        if ref in self._dropped:
            return None
        return self.builder.index_for(ref)

    def note_index_use(self, ref: ColumnRef) -> None:
        """Mark ``ref``'s index as used in the current epoch."""
        self._last_used_epoch[ref] = len(self.decisions)

    # -- the epoch loop ----------------------------------------------------

    def reevaluate(self, epoch: int, now: float) -> EpochDecision:
        """Run one COLT reevaluation; returns the decision record."""
        decision = EpochDecision(epoch=epoch)
        self._drop_cold_indexes(epoch, decision)
        # Decisions follow activity *within the closing epoch*, not
        # lifetime counts -- otherwise a just-dropped index would be
        # rebuilt from stale popularity forever.
        fresh_counts = self.monitor.epoch_counts(
            since=self._last_eval_time
        )
        self._last_eval_time = now
        candidate = self._best_candidate(fresh_counts)
        if candidate is not None:
            if self.config.defer_builds:
                if candidate not in self.pending_builds:
                    self.pending_builds.append(candidate)
                    decision.queued.append(candidate)
            else:
                self.builder.build_now(candidate)
                self._dropped.discard(candidate)
                decision.built.append(candidate)
        self.decisions.append(decision)
        return decision

    def drain_pending(self, budget_s: float | None = None) -> list[ColumnRef]:
        """Build queued indexes (idle-time path); returns what was built."""
        built: list[ColumnRef] = []
        remaining = float("inf") if budget_s is None else float(budget_s)
        while self.pending_builds:
            ref = self.pending_builds[0]
            estimate = self.optimizer.build_cost(ref)
            if estimate > remaining:
                break
            self.pending_builds.pop(0)
            self.builder.build_now(ref)
            self._dropped.discard(ref)
            built.append(ref)
            remaining -= estimate
        return built

    def _built_count(self) -> int:
        return sum(
            1
            for ref, index in self.builder.indexes.items()
            if index.is_built and ref not in self._dropped
        )

    def _drop_cold_indexes(self, epoch: int, decision: EpochDecision) -> None:
        for ref, index in self.builder.indexes.items():
            if not index.is_built or ref in self._dropped:
                continue
            last_used = self._last_used_epoch.get(ref, 0)
            if epoch - last_used >= self.config.drop_after_epochs:
                self._dropped.add(ref)
                decision.dropped.append(ref)

    def _best_candidate(
        self, fresh_counts: dict[ColumnRef, int]
    ) -> ColumnRef | None:
        """The hottest un-indexed column whose index pays for itself."""
        if self._built_count() >= self.config.max_indexes:
            return None
        epoch_total = sum(fresh_counts.values())
        if epoch_total == 0:
            return None
        best_ref: ColumnRef | None = None
        best_gain = 0.0
        for ref, count in fresh_counts.items():
            if self.index_for(ref) is not None:
                continue
            if ref in self.pending_builds:
                continue
            rows = self.optimizer.catalog.column(ref).row_count
            per_query_gain = self.optimizer.model.scan_seconds(
                rows
            ) - self.optimizer.model.indexed_query_seconds(rows)
            expected_queries = (
                count / epoch_total
            ) * self.config.horizon_queries
            gain = per_query_gain * expected_queries
            gain -= self.optimizer.build_cost(ref)
            if gain > best_gain:
                best_gain = gain
                best_ref = ref
        return best_ref
