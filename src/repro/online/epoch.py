"""Epochs: the reevaluation cadence of online tuning.

COLT [16] reconsiders the physical design every N queries.  The epoch
manager counts observed queries and fires registered callbacks when an
epoch boundary is crossed.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError

EpochCallback = Callable[[int, float], None]


class EpochManager:
    """Fires callbacks every ``epoch_queries`` observed queries."""

    def __init__(self, epoch_queries: int = 100) -> None:
        if epoch_queries <= 0:
            raise ConfigError(
                f"epoch_queries must be positive: {epoch_queries}"
            )
        self.epoch_queries = epoch_queries
        self.queries_seen = 0
        self.epochs_completed = 0
        self.last_epoch_at = 0.0
        self._callbacks: list[EpochCallback] = []

    def on_epoch(self, callback: EpochCallback) -> None:
        """Register a callback ``(epoch_index, timestamp) -> None``."""
        self._callbacks.append(callback)

    def observe_query(self, timestamp: float) -> bool:
        """Count one query; returns True if an epoch just completed."""
        self.queries_seen += 1
        if self.queries_seen % self.epoch_queries != 0:
            return False
        self.epochs_completed += 1
        self.last_epoch_at = timestamp
        for callback in self._callbacks:
            callback(self.epochs_completed, timestamp)
        return True

    @property
    def queries_into_epoch(self) -> int:
        """Queries observed since the last boundary."""
        return self.queries_seen % self.epoch_queries

    def __repr__(self) -> str:
        return (
            f"EpochManager(every={self.epoch_queries}, "
            f"seen={self.queries_seen}, epochs={self.epochs_completed})"
        )
