"""Online indexing substrate: monitoring, epochs, COLT, soft indexes.

Reproduces the online auto-tuning stack the paper contrasts with
([4, 15, 16]): a continuous workload monitor, epoch-based design
reevaluation, benefit-amortized index creation/dropping, and
scan-shared (soft) index builds.
"""

from repro.online.colt import ColtConfig, ColtTuner, EpochDecision
from repro.online.epoch import EpochManager
from repro.online.monitor import (
    ColumnActivity,
    QueryObservation,
    WorkloadMonitor,
)
from repro.online.soft_index import SoftCandidate, SoftIndexManager

__all__ = [
    "ColtConfig",
    "ColtTuner",
    "ColumnActivity",
    "EpochDecision",
    "EpochManager",
    "QueryObservation",
    "SoftCandidate",
    "SoftIndexManager",
    "WorkloadMonitor",
]
