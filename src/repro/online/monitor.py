"""Continuous workload monitoring.

Online indexing's defining feature (COLT [16]) is that statistics are
collected *while the workload runs*.  The monitor records every range
query with its virtual timestamp and maintains, per column:

* total and recent query counts (frequency estimation);
* an equi-width histogram of requested value ranges (hot-range
  detection for the holistic "no idle time" boost);
* the union of queried intervals (coverage of the explored region).

Holistic indexing reuses this exact monitor -- the paper's point is
that monitoring, idle-time exploitation and adaptive refinement live
in one kernel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.storage.catalog import Catalog, ColumnRef
from repro.util.intervals import IntervalSet


@dataclass(frozen=True, slots=True)
class QueryObservation:
    """One observed range query."""

    ref: ColumnRef
    low: float
    high: float
    timestamp: float


@dataclass(slots=True)
class ColumnActivity:
    """Per-column monitoring state."""

    ref: ColumnRef
    query_count: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    recent: deque[float] = field(default_factory=lambda: deque(maxlen=256))
    coverage: IntervalSet = field(default_factory=IntervalSet)
    histogram: np.ndarray | None = None
    histogram_low: float = 0.0
    histogram_width: float = 1.0


class WorkloadMonitor:
    """Collects continuous workload statistics per column.

    Args:
        catalog: used to initialize histogram domains from column stats.
        histogram_bins: resolution of the per-column range histograms.
        recent_window: how many recent timestamps to keep per column
            for frequency estimation.
    """

    def __init__(
        self,
        catalog: Catalog,
        histogram_bins: int = 64,
        recent_window: int = 256,
    ) -> None:
        if histogram_bins <= 0:
            raise ConfigError(
                f"histogram_bins must be positive: {histogram_bins}"
            )
        if recent_window <= 0:
            raise ConfigError(
                f"recent_window must be positive: {recent_window}"
            )
        self.catalog = catalog
        self.histogram_bins = histogram_bins
        self.recent_window = recent_window
        self._activity: dict[ColumnRef, ColumnActivity] = {}
        self.total_queries = 0

    # -- recording -------------------------------------------------------

    def _activity_for(self, ref: ColumnRef, timestamp: float) -> ColumnActivity:
        activity = self._activity.get(ref)
        if activity is None:
            column = self.catalog.column(ref)
            stats = column.stats
            width = max(stats.value_span, 1.0) / self.histogram_bins
            activity = ColumnActivity(
                ref=ref,
                first_seen=timestamp,
                recent=deque(maxlen=self.recent_window),
                histogram=np.zeros(self.histogram_bins, dtype=np.int64),
                histogram_low=stats.min_value,
                histogram_width=width,
            )
            self._activity[ref] = activity
        return activity

    def record(
        self, ref: ColumnRef, low: float, high: float, timestamp: float
    ) -> QueryObservation:
        """Record one range query and return its observation."""
        activity = self._activity_for(ref, timestamp)
        activity.query_count += 1
        activity.last_seen = timestamp
        activity.recent.append(timestamp)
        activity.coverage.add(low, high)
        if activity.histogram is not None and high > low:
            first_bin = int(
                (low - activity.histogram_low) // activity.histogram_width
            )
            last_bin = int(
                (high - activity.histogram_low) // activity.histogram_width
            )
            first_bin = min(max(first_bin, 0), self.histogram_bins - 1)
            last_bin = min(max(last_bin, 0), self.histogram_bins - 1)
            activity.histogram[first_bin : last_bin + 1] += 1
        self.total_queries += 1
        return QueryObservation(ref, low, high, timestamp)

    def note_many(
        self,
        ref: ColumnRef,
        lows: np.ndarray,
        highs: np.ndarray,
        timestamps: list[float],
    ) -> None:
        """Record a window of observations on one column at once.

        ``lows``/``highs`` are the window's predicate bounds aligned
        with ``timestamps``.  The batched form of :meth:`record`
        (ISSUE 4): counters, the recency window and coverage are
        updated in order, and all histogram range increments land in
        one vectorized difference-array pass instead of one slice add
        per query.  The resulting monitor state is identical to
        ``len(timestamps)`` sequential :meth:`record` calls.
        """
        if not len(timestamps):
            return
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        activity = self._activity_for(ref, timestamps[0])
        activity.query_count += len(timestamps)
        activity.last_seen = timestamps[-1]
        activity.recent.extend(timestamps)
        activity.coverage.add_many(
            list(zip(lows.tolist(), highs.tolist()))
        )
        if activity.histogram is not None:
            mask = highs > lows
            if np.any(mask):
                bins = self.histogram_bins
                first = (
                    (lows[mask] - activity.histogram_low)
                    // activity.histogram_width
                ).astype(np.int64)
                last = (
                    (highs[mask] - activity.histogram_low)
                    // activity.histogram_width
                ).astype(np.int64)
                np.clip(first, 0, bins - 1, out=first)
                np.clip(last, 0, bins - 1, out=last)
                deltas = np.zeros(bins + 1, dtype=np.int64)
                np.add.at(deltas, first, 1)
                np.add.at(deltas, last + 1, -1)
                activity.histogram += np.cumsum(deltas[:-1])
        self.total_queries += len(timestamps)

    # -- statistics ------------------------------------------------------

    def query_count(self, ref: ColumnRef) -> int:
        activity = self._activity.get(ref)
        return activity.query_count if activity else 0

    def observed_columns(self) -> list[ColumnRef]:
        """Columns seen so far, most-queried first."""
        return sorted(
            self._activity,
            key=lambda ref: self._activity[ref].query_count,
            reverse=True,
        )

    def frequency(self, ref: ColumnRef, now: float) -> float:
        """Recent queries per second on ``ref`` (0.0 when unseen).

        A window that has not advanced yet (``now`` equal to -- or,
        with an out-of-order clock, before -- the first observation's
        timestamp) has no elapsed time to divide by; the recent count
        itself is returned as the rate, as if the degenerate window
        were one second wide.  The old ``max(elapsed, 1e-9)`` clamp
        turned such windows into absurd ~1e11 rates that drowned every
        real column in a frequency comparison.
        """
        activity = self._activity.get(ref)
        if activity is None or not activity.recent:
            return 0.0
        window_start = activity.recent[0]
        elapsed = now - window_start
        if elapsed <= 0.0:
            return float(len(activity.recent))
        return len(activity.recent) / elapsed

    def relative_weight(self, ref: ColumnRef) -> float:
        """Fraction of all observed queries that hit ``ref``."""
        if self.total_queries == 0:
            return 0.0
        return self.query_count(ref) / self.total_queries

    def coverage(self, ref: ColumnRef) -> IntervalSet:
        """Union of value ranges queried on ``ref``."""
        activity = self._activity.get(ref)
        return activity.coverage if activity else IntervalSet()

    def hot_ranges(
        self, ref: ColumnRef, min_queries: int
    ) -> list[tuple[float, float, int]]:
        """Value ranges requested at least ``min_queries`` times.

        Returns ``(low, high, count)`` triples from the histogram, with
        adjacent hot bins coalesced.  This implements the paper's "more
        than n queries cracked this column/range" trigger.
        """
        activity = self._activity.get(ref)
        if activity is None or activity.histogram is None:
            return []
        hot = activity.histogram >= min_queries
        ranges: list[tuple[float, float, int]] = []
        start: int | None = None
        for i, flag in enumerate(hot):
            if flag and start is None:
                start = i
            elif not flag and start is not None:
                ranges.append(self._bins_to_range(activity, start, i))
                start = None
        if start is not None:
            ranges.append(
                self._bins_to_range(activity, start, len(hot))
            )
        return ranges

    @staticmethod
    def _bins_to_range(
        activity: ColumnActivity, first: int, last: int
    ) -> tuple[float, float, int]:
        low = activity.histogram_low + first * activity.histogram_width
        high = activity.histogram_low + last * activity.histogram_width
        count = int(activity.histogram[first:last].max())
        return (low, high, count)

    def is_column_hot(self, ref: ColumnRef, min_queries: int) -> bool:
        """Whether ``ref`` has absorbed at least ``min_queries`` queries."""
        return self.query_count(ref) >= min_queries

    def epoch_counts(self, since: float) -> dict[ColumnRef, int]:
        """Per-column query counts with timestamps after ``since``."""
        counts: dict[ColumnRef, int] = {}
        for ref, activity in self._activity.items():
            fresh = sum(1 for t in activity.recent if t > since)
            if fresh:
                counts[ref] = fresh
        return counts

    # -- persistence -----------------------------------------------------

    def export_state(self) -> dict:
        """Plain-structure dump of all monitoring state (snapshots)."""
        columns = []
        for ref, activity in self._activity.items():
            columns.append(
                {
                    "table": ref.table,
                    "column": ref.column,
                    "query_count": activity.query_count,
                    "first_seen": activity.first_seen,
                    "last_seen": activity.last_seen,
                    "recent": [float(t) for t in activity.recent],
                    "coverage": [
                        [float(lo), float(hi)]
                        for lo, hi in activity.coverage.intervals()
                    ],
                    "histogram": (
                        activity.histogram.tolist()
                        if activity.histogram is not None
                        else None
                    ),
                    "histogram_low": activity.histogram_low,
                    "histogram_width": activity.histogram_width,
                }
            )
        return {"total_queries": self.total_queries, "columns": columns}

    def restore_state(self, state: dict) -> None:
        """Adopt a previously-exported monitor state (snapshot restore)."""
        self._activity = {}
        self.total_queries = int(state["total_queries"])
        for entry in state["columns"]:
            ref = ColumnRef(entry["table"], entry["column"])
            coverage = IntervalSet()
            if entry["coverage"]:
                coverage.add_many(
                    [(lo, hi) for lo, hi in entry["coverage"]]
                )
            recent: deque[float] = deque(maxlen=self.recent_window)
            recent.extend(entry["recent"])
            histogram = (
                np.asarray(entry["histogram"], dtype=np.int64)
                if entry["histogram"] is not None
                else None
            )
            self._activity[ref] = ColumnActivity(
                ref=ref,
                query_count=int(entry["query_count"]),
                first_seen=float(entry["first_seen"]),
                last_seen=float(entry["last_seen"]),
                recent=recent,
                coverage=coverage,
                histogram=histogram,
                histogram_low=float(entry["histogram_low"]),
                histogram_width=float(entry["histogram_width"]),
            )
