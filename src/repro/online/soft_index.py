"""Soft indexes: building online indexes on the back of query scans.

Soft indexes (Luehring et al., ICDE Workshops 2007 -- the paper's
[15]) reduce the cost of online index creation by sharing the column
scan of a concurrent query: if a query is about to scan column A and A
is an index candidate, the scan's output feeds the index build, so
only the sort remains to be paid.

:class:`SoftIndexManager` tracks candidates, observes scans, and
promotes a candidate to a full index once enough scans were shared.
The saved scan pass is reported so benches can quantify the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.offline.fullindex import FullIndex
from repro.simtime.clock import Clock
from repro.storage.catalog import Catalog, ColumnRef


@dataclass(slots=True)
class SoftCandidate:
    """A column nominated for soft (scan-shared) index construction."""

    ref: ColumnRef
    scans_observed: int = 0
    promoted: bool = False


class SoftIndexManager:
    """Piggybacks index construction on query scans.

    Args:
        catalog: resolves columns.
        clock: shared time source; the promotion charges a sort (the
            scan pass was shared with the triggering query).
        scans_to_promote: how many shared scans a candidate needs
            before promotion (1 reproduces the published behaviour for
            full-column scans).
    """

    def __init__(
        self,
        catalog: Catalog,
        clock: Clock,
        scans_to_promote: int = 1,
    ) -> None:
        if scans_to_promote <= 0:
            raise ConfigError(
                f"scans_to_promote must be positive: {scans_to_promote}"
            )
        self.catalog = catalog
        self.clock = clock
        self.scans_to_promote = scans_to_promote
        self._candidates: dict[ColumnRef, SoftCandidate] = {}
        self._indexes: dict[ColumnRef, FullIndex] = {}
        self.scan_passes_saved = 0

    def nominate(self, ref: ColumnRef) -> SoftCandidate:
        """Add ``ref`` to the candidate set (idempotent)."""
        candidate = self._candidates.get(ref)
        if candidate is None:
            candidate = SoftCandidate(ref)
            self._candidates[ref] = candidate
        return candidate

    def is_candidate(self, ref: ColumnRef) -> bool:
        return ref in self._candidates

    def index_for(self, ref: ColumnRef) -> FullIndex | None:
        """A promoted index on ``ref``, or None."""
        index = self._indexes.get(ref)
        if index is not None and index.is_built:
            return index
        return None

    def note_scan(self, ref: ColumnRef) -> FullIndex | None:
        """Tell the manager a full scan of ``ref`` just happened.

        When the scan count reaches the promotion threshold the index
        is built immediately, charging only the sort (the scan pass
        rode along with the query).  Returns the fresh index when a
        promotion happened, else None.
        """
        candidate = self._candidates.get(ref)
        if candidate is None or candidate.promoted:
            return None
        candidate.scans_observed += 1
        if candidate.scans_observed < self.scans_to_promote:
            return None
        candidate.promoted = True
        column = self.catalog.column(ref)
        index = FullIndex(column, self.clock)
        index.build()
        self._indexes[ref] = index
        self.scan_passes_saved += 1
        return index

    def promoted_refs(self) -> list[ColumnRef]:
        return [
            ref
            for ref, cand in self._candidates.items()
            if cand.promoted
        ]
