"""Experiment scales and shared run configuration.

The paper runs at 10^8 rows per column; pure Python cannot do that
interactively, so experiments run at a reduced ``rows`` while the
virtual clock projects costs back to paper scale (``paper_rows``).
DESIGN.md §6 documents why the projection is sound for uniform data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simtime.costs import PAPER_COLUMN_ROWS, PAPER_QUERY_COUNT
from repro.simtime.model import CostModel, projection_scale


@dataclass(frozen=True, slots=True)
class ScaleSpec:
    """One experiment scale.

    Attributes:
        name: scale label.
        rows: physical rows per column in this run.
        query_count: queries per experiment.
        paper_rows: the scale costs are projected to.
    """

    name: str
    rows: int
    query_count: int
    paper_rows: int = PAPER_COLUMN_ROWS

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.query_count <= 0:
            raise ConfigError(
                f"scale {self.name!r}: rows and query_count must be "
                "positive"
            )

    @property
    def projection(self) -> float:
        """Cost-model scale factor projecting this run to paper scale."""
        return projection_scale(self.rows, self.paper_rows)

    def cost_model(self) -> CostModel:
        """A paper-calibrated cost model projecting from this scale."""
        return CostModel(scale=self.projection)


TINY = ScaleSpec("tiny", rows=10_000, query_count=200)
SMALL = ScaleSpec("small", rows=100_000, query_count=1_000)
MEDIUM = ScaleSpec("medium", rows=1_000_000, query_count=10_000)
PAPER = ScaleSpec(
    "paper", rows=PAPER_COLUMN_ROWS, query_count=PAPER_QUERY_COUNT
)

_SCALES = {spec.name: spec for spec in (TINY, SMALL, MEDIUM, PAPER)}


def scale_by_name(name: str) -> ScaleSpec:
    """Look up a scale by name.

    Raises:
        ConfigError: on an unknown scale name.
    """
    try:
        return _SCALES[name.lower()]
    except KeyError:
        supported = ", ".join(sorted(_SCALES))
        raise ConfigError(
            f"unknown scale {name!r}; supported: {supported}"
        ) from None


def available_scales() -> list[str]:
    return sorted(_SCALES)
