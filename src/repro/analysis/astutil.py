"""Shared AST plumbing for the lint rules and the lock-order analyzer."""

from __future__ import annotations

import ast
from typing import Iterator


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent map for the whole tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted origin, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only
    top-of-tree imports matter for the rules (function-local imports
    are walked too -- ast.walk sees them).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                    if alias.asname
                    else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_name(
    func: ast.AST, aliases: dict[str, str]
) -> str | None:
    """Fully dotted origin of a call target, through import aliases.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; unresolvable shapes (calls on call
    results, subscripts) return ``None``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def statement_blocks(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every list of statements in the tree (bodies, orelse, finally)."""
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if (
                isinstance(block, list)
                and block
                and isinstance(block[0], ast.stmt)
            ):
                yield block


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest function definition containing ``node``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def call_has_no_side_effects(stmt: ast.stmt) -> bool:
    """Whether a statement is safe to sit between acquire and try.

    Safe means it cannot raise on the acquire-protection path: plain
    assignments and annotations whose right side contains no calls,
    awaits, subscripts or comprehensions, plus docstring expressions.
    """
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = stmt.value
        if value is None:
            return True
        return not any(
            isinstance(
                inner,
                (
                    ast.Call,
                    ast.Await,
                    ast.Subscript,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            )
            for inner in ast.walk(value)
        )
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True
    return isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal))
