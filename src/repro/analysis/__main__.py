"""CLI: ``python -m repro.analysis`` -- the repo's static-analysis gate.

Runs, in order: the AST lint rules (latch discipline, determinism,
dtype promotion, fault-point coverage, waiver hygiene), the static
lock-order analysis, and -- when available or ``--require-mypy`` --
the strict mypy gate.  ``--check`` exits nonzero on any finding, which
is what CI calls; ``--json`` emits the full machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import lockorder
from repro.analysis.lint import run_lint
from repro.analysis.mypy_gate import run_mypy
from repro.analysis.source import repo_python_files


def _default_root() -> Path:
    return Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="lint, lock-order and typing gate for the repro tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files to analyse (default: the whole repro package)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on any finding (the CI gate)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--no-mypy",
        action="store_true",
        help="skip the mypy gate even when mypy is installed",
    )
    parser.add_argument(
        "--require-mypy",
        action="store_true",
        help="treat an absent mypy as a failure (CI)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root holding the repro package tree",
    )
    args = parser.parse_args(argv)

    root = args.root if args.root is not None else _default_root()
    paths = (
        [p for p in args.paths] if args.paths else repo_python_files(root)
    )

    findings = run_lint(paths, root=root)
    lock_report = lockorder.analyze(paths)
    mypy_result = None
    if not args.no_mypy:
        mypy_result = run_mypy(required=args.require_mypy)

    failed = bool(findings) or not lock_report["ok"]
    if mypy_result is not None and mypy_result.failed:
        failed = True

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "lock_order": lock_report,
                    "mypy": (
                        None
                        if mypy_result is None
                        else {
                            "status": mypy_result.status,
                            "output": mypy_result.output,
                        }
                    ),
                    "ok": not failed,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        edges = lock_report["edges"]
        print(
            f"lock-order: {len(lock_report['lock_classes'])} lock classes, "
            f"{len(edges)} order edges, "
            f"{lock_report['unresolved_sites']} unresolved sites"
        )
        if lock_report["cycle"] is not None:
            print(
                "lock-order CYCLE: " + " -> ".join(lock_report["cycle"])
            )
        for nesting in lock_report["same_class_nestings"]:
            print(
                f"lock-order: same-class nesting on {nesting['lock']} "
                f"(via {nesting['via']}); ordered at runtime by the "
                "latch witness"
            )
        if mypy_result is not None:
            print(f"mypy: {mypy_result.status}")
            if mypy_result.output and mypy_result.status != "ok":
                print(mypy_result.output)
        verdict = "FAIL" if failed else "OK"
        print(f"static-analysis: {verdict} ({len(findings)} findings)")

    if args.check:
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
