"""latch-discipline: every latch acquisition must be release-protected.

A call to ``acquire_read``/``acquire_write`` (or a ``try_acquire``
variant) is a leak waiting to happen unless a matching release is
structurally guaranteed to run.  The rule accepts an acquisition when,
at some enclosing statement level inside the same function, either

* the statement sits in the body of a ``try`` whose ``finally`` block
  contains a matching release, or
* the statement is followed in its block -- with only provably
  side-effect-free statements in between -- by such a ``try``.

``try_acquire*`` calls are conditional (the caller may not hold
anything afterwards), so for those the rule only requires that the
enclosing function has a matching release inside *some* ``finally``:
the cooperative scheduler's grant/defer protocol releases via
``release_all`` at the end of each phase.

A matching release is ``release_read``/``release_write`` agreeing with
the acquisition mode, or any bulk release (a callee whose name starts
with ``release`` -- e.g. ``release_all``).  When both the acquire and
the release receivers are simple dotted expressions, they must also
name the same object.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.astutil import (
    build_parents,
    call_has_no_side_effects,
    dotted_name,
)
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import LintContext
    from repro.analysis.source import SourceFile

RULE_ID = "latch-discipline"

#: acquisition method name -> mode ("r", "w", or None for mode-agnostic)
_ACQUIRE_MODES = {
    "acquire_read": "r",
    "acquire_write": "w",
    "try_acquire": None,
    "try_acquire_read": "r",
    "try_acquire_write": "w",
}

_MODE_RELEASE = {"r": "release_read", "w": "release_write"}


def _call_method_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _receiver_text(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return dotted_name(node.func.value)
    return None


def _release_matches(
    release: ast.Call, mode: str | None, receiver: str | None
) -> bool:
    name = _call_method_name(release)
    if name is None or not name.startswith("release"):
        return False
    if name in _MODE_RELEASE.values():
        if mode is not None and name != _MODE_RELEASE[mode]:
            return False
        rel_receiver = _receiver_text(release)
        if (
            receiver is not None
            and rel_receiver is not None
            and rel_receiver != receiver
        ):
            return False
        return True
    # Bulk releases (release_all and friends) match any mode/receiver.
    return True


def _finally_releases(
    try_node: ast.Try, mode: str | None, receiver: str | None
) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _release_matches(
                node, mode, receiver
            ):
                return True
    return False


def _statement_chain(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> list[ast.stmt]:
    """Enclosing statements of ``node``, innermost first, up to the
    function boundary."""
    chain: list[ast.stmt] = []
    current: ast.AST | None = node
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(current, ast.stmt):
            chain.append(current)
        current = parents.get(current)
    return chain


def _next_relevant_sibling(
    stmt: ast.stmt, parent: ast.AST | None
) -> ast.stmt | None:
    """The first following sibling that is not provably side-effect
    free (docstrings, plain constant-only assignments)."""
    if parent is None:
        return None
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(parent, attr, None)
        if isinstance(block, list) and stmt in block:
            index = block.index(stmt)
            for follower in block[index + 1 :]:
                if call_has_no_side_effects(follower):
                    continue
                return follower
            return None
    return None


def _protected(
    call: ast.Call,
    mode: str | None,
    parents: dict[ast.AST, ast.AST],
) -> bool:
    receiver = _receiver_text(call)
    for stmt in _statement_chain(call, parents):
        parent = parents.get(stmt)
        # (a) inside a try body whose finally performs the release
        if (
            isinstance(parent, ast.Try)
            and stmt in parent.body
            and _finally_releases(parent, mode, receiver)
        ):
            return True
        # (b) immediately followed by such a try in the same block
        follower = _next_relevant_sibling(stmt, parent)
        if isinstance(follower, ast.Try) and _finally_releases(
            follower, mode, receiver
        ):
            return True
    return False


def _function_has_release(
    func: ast.AST, mode: str | None, receiver: str | None
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and _finally_releases(
            node, mode, receiver
        ):
            return True
    return False


def check(src: "SourceFile", ctx: "LintContext") -> list[Finding]:
    findings: list[Finding] = []
    parents = build_parents(src.tree)
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_method_name(node)
        mode = _ACQUIRE_MODES.get(name or "")
        if name not in _ACQUIRE_MODES:
            continue
        if name.startswith("try_"):
            # Conditional grant: require a finally-release anywhere in
            # the enclosing function (the grant/defer protocol).
            func: ast.AST | None = None
            for stmt in _statement_chain(node, parents):
                func = parents.get(stmt)
            if func is not None and _function_has_release(func, mode, None):
                continue
        elif _protected(node, mode, parents):
            continue
        findings.append(
            Finding(
                rule=RULE_ID,
                path=str(src.path),
                line=node.lineno,
                message=(
                    f"{name}() is not paired with a matching release in "
                    "a finally block reachable from this statement; a "
                    "raise or early return here leaks the latch"
                ),
            )
        )
    return findings
