"""dtype-promotion: float needles must not probe int64 haystacks.

``np.searchsorted(int64_store, float_needle)`` silently promotes the
store to float64, which rounds integers beyond 2**53 -- range bounds
land on the wrong row.  The sanctioned pattern is
``repro.storage.updates.exact_range_cuts``, which ceils the needle to
an exact int64 key (with NaN and +/-2**63 saturation) before probing.

The rule walks each function in source order, tracking which local
names are float-typed (float parameter annotations, ``float(...)`` /
``np.ceil(...)`` results, float constants; reassignment from anything
else clears the mark), and flags:

* ``searchsorted`` calls whose needle is float-typed while the
  haystack is not provably float;
* ``numpy.less/less_equal/greater/greater_equal`` calls with exactly
  one float-typed operand;
* raw ``<``/``<=``/``>``/``>=`` comparisons where one side is
  float-typed and the other carries int64-array evidence (an
  ``.astype(int64)`` result or ``dtype=int64`` construction).

The tracking is linear and path-insensitive -- branch assignments are
treated as having happened -- which is exactly the discipline the
fixed kernels follow: ceil-to-int64 *before* the probe, on every path.
``exact_range_cuts`` itself is exempt by name.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.astutil import import_aliases, resolve_call_name
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import LintContext
    from repro.analysis.source import SourceFile

RULE_ID = "dtype-promotion"

#: Functions allowed to mix: the sanctioned conversion helper.
SANCTIONED_FUNCTIONS = frozenset({"exact_range_cuts", "_range_cut_pair"})

_FLOAT_RETURNING = frozenset(
    {"float", "numpy.float64", "numpy.ceil", "numpy.floor", "numpy.trunc"}
)
_FLOAT_DTYPES = frozenset({"float", "numpy.float64", "numpy.float32"})
_INT_DTYPES = frozenset({"int", "numpy.int64", "numpy.int32", "numpy.intp"})
_ARRAY_CTORS = frozenset(
    {
        "numpy.asarray",
        "numpy.array",
        "numpy.full",
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.arange",
    }
)
_COMPARE_CALLS = frozenset(
    {"numpy.less", "numpy.less_equal", "numpy.greater", "numpy.greater_equal"}
)


def _annotation_is_float(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "float"
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        # float | None and friends
        return _annotation_is_float(annotation.left) or _annotation_is_float(
            annotation.right
        )
    return False


def _dtype_keyword(node: ast.Call, aliases: dict[str, str]) -> str | None:
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            return resolve_call_name(keyword.value, aliases)
    return None


class _FunctionScan:
    """Linear, source-ordered float/int tracking for one function."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        aliases: dict[str, str],
        src: "SourceFile",
        findings: list[Finding],
    ) -> None:
        self.aliases = aliases
        self.src = src
        self.findings = findings
        self.float_names: set[str] = set()
        self.int_array_names: set[str] = set()
        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _annotation_is_float(arg.annotation):
                self.float_names.add(arg.arg)

    # -- classification ------------------------------------------------

    def is_float(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.float_names
        if isinstance(node, ast.Call):
            resolved = resolve_call_name(node.func, self.aliases)
            if resolved in _FLOAT_RETURNING:
                return True
            if resolved in _ARRAY_CTORS:
                return _dtype_keyword(node, self.aliases) in _FLOAT_DTYPES
            return False
        if isinstance(node, ast.BinOp):
            return self.is_float(node.left) or self.is_float(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_float(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_float(node.body) or self.is_float(node.orelse)
        return False

    def is_int_array(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.int_array_names
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and resolve_call_name(node.args[0], self.aliases)
                in _INT_DTYPES
            ):
                return True
            resolved = resolve_call_name(node.func, self.aliases)
            if resolved in _ARRAY_CTORS:
                return _dtype_keyword(node, self.aliases) in _INT_DTYPES
        return False

    # -- effects -------------------------------------------------------

    def assign(self, target: ast.expr, value: ast.expr | None) -> None:
        if not isinstance(target, ast.Name):
            return
        if value is not None and self.is_float(value):
            self.float_names.add(target.id)
        else:
            self.float_names.discard(target.id)
        if value is not None and self.is_int_array(value):
            self.int_array_names.add(target.id)
        else:
            self.int_array_names.discard(target.id)

    # -- flag sites ----------------------------------------------------

    def _flag(self, node: ast.expr, message: str) -> None:
        self.findings.append(
            Finding(
                rule=RULE_ID,
                path=str(self.src.path),
                line=node.lineno,
                message=message,
            )
        )

    def inspect_call(self, node: ast.Call) -> None:
        resolved = resolve_call_name(node.func, self.aliases)
        haystack: ast.expr | None = None
        needle: ast.expr | None = None
        if resolved == "numpy.searchsorted" and len(node.args) >= 2:
            haystack, needle = node.args[0], node.args[1]
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "searchsorted"
            and resolved is not None
            and not resolved.startswith("numpy.")
            and node.args
        ):
            haystack, needle = node.func.value, node.args[0]
        if needle is not None and haystack is not None:
            if self.is_float(needle) and not self.is_float(haystack):
                self._flag(
                    node,
                    "searchsorted with a float needle into a haystack "
                    "not provably float promotes int64 stores to "
                    "float64 (lossy beyond 2**53); use "
                    "storage.updates.exact_range_cuts",
                )
            return
        if resolved in _COMPARE_CALLS and len(node.args) >= 2:
            left, right = node.args[0], node.args[1]
            if self.is_float(left) != self.is_float(right):
                self._flag(
                    node,
                    f"{resolved} mixes a float operand with a "
                    "non-float one; ceil the key to an exact int64 "
                    "first (see cracking.engine._less_mask)",
                )

    def inspect_compare(self, node: ast.Compare) -> None:
        if len(node.ops) != 1 or not isinstance(
            node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        ):
            return
        left, right = node.left, node.comparators[0]
        for a, b in ((left, right), (right, left)):
            if self.is_float(a) and self.is_int_array(b):
                self._flag(
                    node,
                    "comparison between a float value and an int64 "
                    "array promotes the array to float64 (lossy beyond "
                    "2**53); ceil the key to int64 first",
                )
                return

    # -- traversal -----------------------------------------------------

    def inspect_expr(self, expr: ast.expr | None) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                self.inspect_call(node)
            elif isinstance(node, ast.Compare):
                self.inspect_compare(node)

    def run_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: ast.stmt) -> None:
        """Inspect ``stmt`` with the current name state, then apply its
        effects; compound statements recurse body-by-body in order so
        branch assignments (``pivot = math.ceil(pivot)``) are seen
        before later uses."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested functions get their own scan
        if isinstance(stmt, (ast.If, ast.While)):
            self.inspect_expr(stmt.test)
            self.run_block(stmt.body)
            self.run_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.inspect_expr(stmt.iter)
            self.assign(stmt.target, None)
            self.run_block(stmt.body)
            self.run_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.inspect_expr(item.context_expr)
            self.run_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run_block(stmt.body)
            for handler in stmt.handlers:
                self.run_block(handler.body)
            self.run_block(stmt.orelse)
            self.run_block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Match,)):
            self.inspect_expr(stmt.subject)
            for case in stmt.cases:
                self.run_block(case.body)
            return
        # Simple statement: inspect every expression in it first, then
        # apply assignment effects.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self.inspect_expr(node)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self.assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if _annotation_is_float(stmt.annotation) and isinstance(
                stmt.target, ast.Name
            ):
                self.float_names.add(stmt.target.id)
            else:
                self.assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            pass  # x += f keeps x's declared kind


def check(src: "SourceFile", ctx: "LintContext") -> list[Finding]:
    aliases = import_aliases(src.tree)
    findings: list[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in SANCTIONED_FUNCTIONS:
            continue
        scan = _FunctionScan(node, aliases, src, findings)
        scan.run_block(node.body)
    return findings
