"""fault-coverage: trip/tamper sites and the registry must agree.

The fault plane only injects at names registered in
``repro.faults.plan.FAULT_POINTS`` (tamper variants additionally in
``TAMPER_POINTS``); a typo at a call site silently never fires, and a
registered point nobody trips is dead configuration that the chaos
bench believes it is exercising.  Both directions are checked:

* every ``faults.trip(...)`` / ``faults.tamper(...)`` /
  ``faults.recovered(...)`` call must pass a string literal naming a
  registered point (non-literal names are flagged as unverifiable);
* every registered point must have at least one call site somewhere in
  the linted tree (reported against its registry line in ``plan.py``
  via :func:`finalize`).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.astutil import import_aliases, resolve_call_name
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import LintContext
    from repro.analysis.source import SourceFile

RULE_ID = "fault-coverage"

_SITE_NAMES = ("trip", "tamper", "recovered")


def parse_registry(
    plan_path: Path,
) -> tuple[dict[str, int], set[str]]:
    """(FAULT_POINTS name -> registry line, TAMPER_POINTS names) parsed
    statically from ``plan.py`` -- no import, so the rule works even on
    a tree that does not load."""
    tree = ast.parse(plan_path.read_text(encoding="utf-8"))
    points: dict[str, int] = {}
    tampers: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            names = {
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            }
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names = {node.target.id}
        else:
            continue
        if node.value is None:
            continue
        if "FAULT_POINTS" in names and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    points[key.value] = key.lineno
        if "TAMPER_POINTS" in names:
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) and isinstance(
                    inner.value, str
                ):
                    tampers.add(inner.value)
    return points, tampers


def _site_kind(resolved: str | None, node: ast.Call) -> str | None:
    """"trip"/"tamper"/"recovered" when this call is a fault-plane
    site, else None."""
    if resolved is None:
        return None
    for kind in _SITE_NAMES:
        if resolved == f"repro.faults.{kind}" or resolved.endswith(
            f"faults.{kind}"
        ):
            return kind
    return None


def check(src: "SourceFile", ctx: "LintContext") -> list[Finding]:
    if not ctx.fault_points:
        return []
    aliases = import_aliases(src.tree)
    findings: list[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _site_kind(resolve_call_name(node.func, aliases), node)
        if kind is None:
            continue
        if not node.args or not (
            isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=str(src.path),
                    line=node.lineno,
                    message=(
                        f"faults.{kind}() called with a non-literal "
                        "point name; the registry cross-check cannot "
                        "verify it"
                    ),
                )
            )
            continue
        name = node.args[0].value
        ctx.used_fault_points.add(name)
        if name not in ctx.fault_points:
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=str(src.path),
                    line=node.lineno,
                    message=(
                        f"faults.{kind}({name!r}) names a point that is "
                        "not registered in faults.plan.FAULT_POINTS; it "
                        "will never fire"
                    ),
                )
            )
        elif kind == "tamper" and name not in ctx.tamper_points:
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=str(src.path),
                    line=node.lineno,
                    message=(
                        f"faults.tamper({name!r}) targets a point not in "
                        "TAMPER_POINTS; tamper plans cannot arm it"
                    ),
                )
            )
    return findings


def finalize(ctx: "LintContext") -> list[Finding]:
    """Direction two: registered points nobody trips or tampers.

    Only meaningful when the registry itself is part of the linted
    set -- a single-file lint must not report the rest of the tree's
    call sites as missing.
    """
    if (
        ctx.plan_path is None
        or str(ctx.plan_path) not in ctx.sources_by_path
    ):
        return []
    findings: list[Finding] = []
    for name, line in sorted(ctx.fault_points.items()):
        if name in ctx.used_fault_points:
            continue
        findings.append(
            Finding(
                rule=RULE_ID,
                path=str(ctx.plan_path) if ctx.plan_path else "plan.py",
                line=line,
                message=(
                    f"fault point {name!r} is registered but has no "
                    "trip/tamper call site in the linted tree"
                ),
            )
        )
    return findings
