"""Pluggable lint rules.

A rule is a module exposing ``RULE_ID`` (the identifier waivers and
reports use) and ``check(src, ctx) -> list[Finding]``.  Register new
rules in :data:`ALL_RULES`; everything else (file discovery, waiver
filtering, CLI wiring, CI gating) picks them up automatically.  See
CONTRIBUTING.md for the recipe and tests/analysis/fixtures/ for the
one-known-bad-snippet-per-rule corpus a new rule must ship with.
"""

from __future__ import annotations

from repro.analysis.rules import determinism, dtype, faultpoints, latch

#: Every registered rule module, in report order.
ALL_RULES = (latch, determinism, dtype, faultpoints)

__all__ = ["ALL_RULES", "determinism", "dtype", "faultpoints", "latch"]
