"""determinism: no ambient wall-clock or unseeded randomness in the
reproducible core.

The cracking, simtime, holistic, engine and serving planes must be a
pure function of (dataset seed, workload seed, simulated clock) -- a
stray ``time.time()`` or ``random.random()`` silently breaks replay,
the differential fingerprint oracle and crash-restart equivalence.
Wall time is allowed only through the audited escape hatches
``repro.simtime.clock.wall_now``/``wall_sleep`` (which carry the only
waivers) and anywhere under ``bench/``, ``workload/`` and ``faults/``,
whose job is to talk to the real world.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.astutil import import_aliases, resolve_call_name
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint import LintContext
    from repro.analysis.source import SourceFile

RULE_ID = "determinism"

#: Directories (relative to the lint root) exempt from this rule.
EXEMPT_DIRS = frozenset({"bench", "workload", "faults"})

_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "random.SystemRandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)


def _banned(resolved: str, node: ast.Call) -> str | None:
    """Why ``resolved`` is banned here, or None if it is fine."""
    if resolved in _BANNED_CALLS:
        return f"{resolved}() is nondeterministic"
    if resolved.startswith("random.") and resolved != "random.Random":
        # Module-level stdlib random functions share hidden global
        # state; random.Random(seed) instances are the sanctioned form.
        tail = resolved.removeprefix("random.")
        if tail and tail[0].islower():
            return (
                f"{resolved}() uses the process-global RNG; construct a "
                "seeded random.Random / numpy Generator instead"
            )
    if resolved.startswith("numpy.random."):
        tail = resolved.removeprefix("numpy.random.")
        if tail == "default_rng":
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded and not any(k.arg == "seed" for k in node.keywords):
                return (
                    "numpy.random.default_rng() without a seed draws "
                    "entropy from the OS"
                )
            return None
        if tail and tail[0].islower():
            return (
                f"{resolved}() is the legacy global numpy RNG; use a "
                "seeded numpy.random.default_rng(seed) generator"
            )
    return None


def exempt(ctx: "LintContext", src: "SourceFile") -> bool:
    return bool(EXEMPT_DIRS.intersection(ctx.rel_parts(src.path)))


def check(src: "SourceFile", ctx: "LintContext") -> list[Finding]:
    if exempt(ctx, src):
        return []
    aliases = import_aliases(src.tree)
    findings: list[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolve_call_name(node.func, aliases)
        if resolved is None:
            continue
        reason = _banned(resolved, node)
        if reason is not None:
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=str(src.path),
                    line=node.lineno,
                    message=(
                        f"{reason}; route wall time through "
                        "simtime.clock.wall_now/wall_sleep or thread a "
                        "seeded generator from the config"
                    ),
                )
            )
    return findings
