"""Static lock-order analysis over the latch-acquisition call graph.

Deadlock freedom for the worker/serving planes rests on a global
acquisition order (table latch before piece latches, latches before
the index mutex, mutexes last).  This module recovers that order
statically:

1. every class's lock-like attributes become *lock classes*
   (``threading.Lock/RLock/Condition`` attrs are named
   ``Class.attr``; :class:`ReadWriteLatch` instances take their
   ``witness_group`` tag, so the table latch is ``latch.table`` and
   every piece latch shares the class ``latch.piece``);
2. each function is summarised as an ordered event list -- scoped
   ``with`` acquisitions, bare ``acquire_read/acquire_write`` calls
   (held to function end unless released), calls into other analysed
   functions, and ``yield`` points for ``@contextmanager`` functions
   (whose held-set-at-yield flows into their ``with`` callers);
3. a fixpoint propagates held-lock contexts through the call graph,
   recording an edge ``A -> B`` whenever ``B`` is acquired while
   ``A`` is held;
4. a cycle in the resulting order graph is a potential deadlock and
   fails the analysis.

Same-lock-class nestings (two piece latches held together) cannot be
ordered by class alone; they are reported separately and delegated to
the runtime witness (:mod:`repro.analysis.witness`), which enforces
the ascending-bucket-key protocol dynamically.  Calls the analyser
cannot resolve are counted, not ignored silently -- the count is part
of the report so the under-approximation stays visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.source import SourceFile, load_sources, repo_python_files

_LOCK_CTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": False,
}
_ACQUIRE_METHODS = {"acquire_read": "r", "acquire_write": "w"}
_RELEASE_METHODS = {"release_read", "release_write"}
_MAX_PASSES = 30


# -- events ----------------------------------------------------------------


@dataclass
class Event:
    kind: str  # with_lock | with_cm | acquire | release | call | enter_cm | yield
    token: str | None = None  # lock class, or callee qualname
    body: list["Event"] = field(default_factory=list)
    line: int = 0


@dataclass
class Func:
    qual: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    is_cm: bool = False
    cm_alias: str | None = None  # qualname whose held_at_yield we inherit
    returns_lock: str | None = None
    returns_cls: str | None = None
    synchronized_lock: str | None = None  # decorator-implied scoped lock
    events: list[Event] = field(default_factory=list)
    #: lock classes held at the yield point, in acquisition order --
    #: order matters: ``with`` callers replay these acquisitions, and
    #: a set here would fabricate reversed edges (phantom cycles).
    held_at_yield: tuple = ()
    entry: frozenset = frozenset()


@dataclass
class ClassInfo:
    name: str
    module: str
    #: attr -> ("lock", token) | ("type", class name)
    attrs: dict[str, tuple[str, str]] = field(default_factory=dict)
    reentrant: set[str] = field(default_factory=set)  # lock tokens


# -- analyser --------------------------------------------------------------


class LockOrderAnalyzer:
    def __init__(self, sources: list[SourceFile]) -> None:
        self.sources = sources
        self.classes: dict[str, ClassInfo] = {}
        self.funcs: dict[str, Func] = {}
        self.method_index: dict[tuple[str, str], str] = {}
        self.module_funcs: dict[tuple[str, str], str] = {}
        self.module_locks: dict[tuple[str, str], str] = {}
        self.reentrant: set[str] = set()
        self.edges: dict[tuple[str, str], str] = {}
        self.same_class: dict[str, str] = {}
        self.unresolved = 0

    # -- registry pass -----------------------------------------------------

    def _module_name(self, src: SourceFile) -> str:
        parts = list(Path(src.path).parts)
        if "repro" in parts:
            parts = parts[parts.index("repro") :]
        name = ".".join(parts)
        return name[:-3] if name.endswith(".py") else name

    def build_registry(self) -> None:
        for src in self.sources:
            module = self._module_name(src)
            for node in src.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._register_class(src, module, node)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._register_func(src, module, None, node)
                elif isinstance(node, ast.Assign):
                    self._register_module_lock(module, node)
        # second pass: attribute types that name other classes resolve
        # only once every class is known -- nothing to redo here since
        # attrs store names, resolved lazily.

    def _register_module_lock(self, module: str, node: ast.Assign) -> None:
        ctor = self._lock_ctor(node.value)
        if ctor is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                token = f"{module}.{target.id}"
                self.module_locks[(module, target.id)] = token
                if _LOCK_CTORS[ctor]:
                    self.reentrant.add(token)

    def _lock_ctor(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        name = _dotted(value.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        for ctor in _LOCK_CTORS:
            if name == ctor or tail == ctor.split(".")[-1]:
                return ctor
        return None

    def _register_class(
        self, src: SourceFile, module: str, node: ast.ClassDef
    ) -> None:
        info = ClassInfo(name=node.name, module=module)
        self.classes.setdefault(node.name, info)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_func(src, module, node.name, item)
                self._scan_attr_assignments(info, item)

    def _scan_attr_assignments(
        self, info: ClassInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params = {
            a.arg: _annotation_name(a.annotation)
            for a in func.args.args + func.args.kwonlyargs
        }
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                resolved = self._attr_value(info, attr, value, params)
                if resolved is not None and attr not in info.attrs:
                    info.attrs[attr] = resolved

    def _attr_value(
        self,
        info: ClassInfo,
        attr: str,
        value: ast.expr | None,
        params: dict[str, str | None],
    ) -> tuple[str, str] | None:
        if value is None:
            return None
        if isinstance(value, ast.IfExp):
            return self._attr_value(
                info, attr, value.body, params
            ) or self._attr_value(info, attr, value.orelse, params)
        ctor = self._lock_ctor(value)
        if ctor is not None:
            token = f"{info.name}.{attr}"
            if _LOCK_CTORS[ctor]:
                self.reentrant.add(token)
            return ("lock", token)
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                tail = name.split(".")[-1]
                if tail == "ReadWriteLatch":
                    group = _witness_group(value) or f"{info.name}.{attr}"
                    return ("lock", group)
                if tail and tail[0].isupper():
                    return ("type", tail)
        if isinstance(value, ast.Name) and value.id in params:
            cls = params[value.id]
            if cls is not None:
                return ("type", cls)
        return None

    def _register_func(
        self,
        src: SourceFile,
        module: str,
        cls: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        qual = f"{module}:{cls}.{node.name}" if cls else f"{module}:{node.name}"
        func = Func(
            qual=qual,
            module=module,
            cls=cls,
            node=node,
            path=str(src.path),
        )
        for dec in node.decorator_list:
            name = _dotted(dec) or _dotted(
                dec.func if isinstance(dec, ast.Call) else dec
            )
            if name is None:
                continue
            tail = name.split(".")[-1]
            if tail == "contextmanager":
                func.is_cm = True
            if tail == "_synchronized" and cls is not None:
                func.synchronized_lock = f"{cls}.lock"
                self.reentrant.add(f"{cls}.lock")
        returns = _annotation_name(node.returns)
        if returns == "ReadWriteLatch":
            func.returns_lock = (
                _constructed_group(node) or "latch.untagged"
            )
        elif returns is not None and returns[0].isupper():
            func.returns_cls = returns
        self.funcs[qual] = func
        if cls is not None:
            self.method_index.setdefault((cls, node.name), qual)
        else:
            self.module_funcs[(module, node.name)] = qual

    # -- event pass --------------------------------------------------------

    def build_events(self) -> None:
        for func in self.funcs.values():
            env: dict[str, tuple[str, str]] = {}
            for arg in func.node.args.args + func.node.args.kwonlyargs:
                cls = _annotation_name(arg.annotation)
                if cls is not None and cls in self.classes:
                    env[arg.arg] = ("type", cls)
            events = self._events_for_block(func, func.node.body, env)
            if func.synchronized_lock is not None:
                events = [
                    Event(
                        kind="with_lock",
                        token=func.synchronized_lock,
                        body=events,
                        line=func.node.lineno,
                    )
                ]
            func.events = events
            func.cm_alias = self._cm_alias(func, env)

    def _cm_alias(
        self, func: Func, env: dict[str, tuple[str, str]]
    ) -> str | None:
        if func.is_cm:
            return None
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Call
            ):
                target = self._resolve_call(func, node.value, env)
                if target is not None and self.funcs[target].is_cm:
                    return target
        return None

    def _events_for_block(
        self,
        func: Func,
        stmts: list[ast.stmt],
        env: dict[str, tuple[str, str]],
    ) -> list[Event]:
        events: list[Event] = []
        for stmt in stmts:
            events.extend(self._events_for_stmt(func, stmt, env))
        return events

    def _events_for_stmt(
        self,
        func: Func,
        stmt: ast.stmt,
        env: dict[str, tuple[str, str]],
    ) -> list[Event]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body = self._events_for_block(func, stmt.body, env)
            events: list[Event] = []
            wrapped = body
            for item in reversed(stmt.items):
                expr = item.context_expr
                resolved = self._resolve_expr(func, expr, env)
                if resolved is not None and resolved[0] == "lock":
                    wrapped = [
                        Event(
                            kind="with_lock",
                            token=resolved[1],
                            body=wrapped,
                            line=stmt.lineno,
                        )
                    ]
                elif isinstance(expr, ast.Call):
                    target = self._resolve_call(func, expr, env)
                    if target is not None and self._is_cm_like(target):
                        wrapped = [
                            Event(
                                kind="with_cm",
                                token=target,
                                body=wrapped,
                                line=stmt.lineno,
                            )
                        ]
                    elif target is not None:
                        wrapped = [
                            Event(kind="call", token=target, line=stmt.lineno)
                        ] + wrapped
                    else:
                        self.unresolved += 1
                else:
                    self.unresolved += 1
            events.extend(wrapped)
            return events
        if isinstance(stmt, (ast.If, ast.While)):
            return (
                self._expr_events(func, stmt.test, env)
                + self._events_for_block(func, stmt.body, env)
                + self._events_for_block(func, stmt.orelse, env)
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Simulate loop bodies twice: a bare acquisition repeated
            # across iterations (write_pieces latching several buckets)
            # must surface as a same-class nesting for the witness.
            body = self._events_for_block(func, stmt.body, env)
            body = body + self._events_for_block(func, stmt.body, env)
            return (
                self._expr_events(func, stmt.iter, env)
                + body
                + self._events_for_block(func, stmt.orelse, env)
            )
        if isinstance(stmt, ast.Try):
            events = self._events_for_block(func, stmt.body, env)
            for handler in stmt.handlers:
                events += self._events_for_block(func, handler.body, env)
            events += self._events_for_block(func, stmt.orelse, env)
            events += self._events_for_block(func, stmt.finalbody, env)
            return events
        # simple statement: scan expressions in evaluation order, then
        # record assignment types for later resolution
        events = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                events.extend(self._expr_events(func, child, env))
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, (ast.Call, ast.Attribute, ast.Name)
        ):
            resolved = self._resolve_expr(func, stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if resolved is not None:
                        env[target.id] = resolved
                    else:
                        env.pop(target.id, None)
        return events

    def _expr_events(
        self,
        func: Func,
        expr: ast.expr,
        env: dict[str, tuple[str, str]],
    ) -> list[Event]:
        events: list[Event] = []
        for node in ast.walk(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                events.append(Event(kind="yield", line=node.lineno))
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _ACQUIRE_METHODS or attr in _RELEASE_METHODS:
                    recv = self._resolve_expr(func, node.func.value, env)
                    if recv is not None and recv[0] == "lock":
                        # the call into the latch implementation runs
                        # before the latch is held, so its internal
                        # condvar ordering is analysed under the
                        # caller's held set
                        impl = self.method_index.get(
                            ("ReadWriteLatch", attr)
                        )
                        if impl is not None:
                            events.append(
                                Event(
                                    kind="call",
                                    token=impl,
                                    line=node.lineno,
                                )
                            )
                        kind = (
                            "acquire"
                            if attr in _ACQUIRE_METHODS
                            else "release"
                        )
                        events.append(
                            Event(
                                kind=kind, token=recv[1], line=node.lineno
                            )
                        )
                    else:
                        self.unresolved += 1
                    continue
                if attr == "enter_context" and node.args:
                    inner = node.args[0]
                    if isinstance(inner, ast.Call):
                        target = self._resolve_call(func, inner, env)
                        if target is not None and self._is_cm_like(target):
                            events.append(
                                Event(
                                    kind="enter_cm",
                                    token=target,
                                    line=node.lineno,
                                )
                            )
                            continue
                    self.unresolved += 1
                    continue
            target = self._resolve_call(func, node, env)
            if target is not None:
                events.append(
                    Event(kind="call", token=target, line=node.lineno)
                )
        return events

    def _is_cm_like(self, qual: str) -> bool:
        func = self.funcs[qual]
        return func.is_cm or func.cm_alias is not None

    # -- resolution --------------------------------------------------------

    def _resolve_expr(
        self,
        func: Func,
        expr: ast.expr,
        env: dict[str, tuple[str, str]],
    ) -> tuple[str, str] | None:
        """("lock", token) or ("type", class) for ``expr``, else None."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.cls is not None:
                return ("type", func.cls)
            if expr.id in env:
                return env[expr.id]
            token = self.module_locks.get((func.module, expr.id))
            if token is not None:
                return ("lock", token)
            return None
        if isinstance(expr, ast.Attribute):
            base = self._resolve_expr(func, expr.value, env)
            if base is None or base[0] != "type":
                return None
            info = self.classes.get(base[1])
            if info is None:
                return None
            return info.attrs.get(expr.attr)
        if isinstance(expr, ast.Call):
            target = self._resolve_call(func, expr, env)
            if target is None:
                return None
            callee = self.funcs[target]
            if callee.returns_lock is not None:
                return ("lock", callee.returns_lock)
            if callee.returns_cls is not None:
                return ("type", callee.returns_cls)
            return None
        return None

    def _resolve_call(
        self,
        func: Func,
        call: ast.Call,
        env: dict[str, tuple[str, str]],
    ) -> str | None:
        if isinstance(call.func, ast.Name):
            qual = self.module_funcs.get((func.module, call.func.id))
            if qual is not None:
                return qual
            return None
        if isinstance(call.func, ast.Attribute):
            base = self._resolve_expr(func, call.func.value, env)
            if base is not None and base[0] == "type":
                return self.method_index.get((base[1], call.func.attr))
            if base is not None and base[0] == "lock":
                # calls on a lock object: acquire/release handled at the
                # event layer; analyse the latch class's own method so
                # the internal condition-variable order is covered
                return self.method_index.get(
                    ("ReadWriteLatch", call.func.attr)
                )
        return None

    # -- fixpoint ----------------------------------------------------------

    def propagate(self) -> None:
        for _ in range(_MAX_PASSES):
            changed = False
            for func in self.funcs.values():
                if func.cm_alias is not None:
                    inherited = self.funcs[func.cm_alias].held_at_yield
                    if inherited != func.held_at_yield:
                        func.held_at_yield = inherited
                        changed = True
            for func in self.funcs.values():
                held: dict[str, int] = {}
                for token in func.entry:
                    held[token] = held.get(token, 0) + 1
                if self._simulate(func, func.events, held):
                    changed = True
            if not changed:
                return

    def _note_acquire(self, func: Func, token: str, held: dict[str, int]) -> None:
        for holder in held:
            if holder == token:
                if token not in self.reentrant:
                    self.same_class.setdefault(token, func.qual)
                continue
            self.edges.setdefault((holder, token), func.qual)

    def _enter_callee(
        self, qual: str, held: dict[str, int]
    ) -> bool:
        callee = self.funcs[qual]
        merged = frozenset(callee.entry | set(held))
        if merged != callee.entry:
            callee.entry = merged
            return True
        return False

    def _simulate(
        self, func: Func, events: list[Event], held: dict[str, int]
    ) -> bool:
        changed = False
        for event in events:
            if event.kind == "with_lock":
                assert event.token is not None
                self._note_acquire(func, event.token, held)
                held[event.token] = held.get(event.token, 0) + 1
                changed |= self._simulate(func, event.body, held)
                held[event.token] -= 1
                if held[event.token] == 0:
                    del held[event.token]
            elif event.kind == "acquire":
                assert event.token is not None
                self._note_acquire(func, event.token, held)
                held[event.token] = held.get(event.token, 0) + 1
            elif event.kind == "release":
                assert event.token is not None
                if held.get(event.token, 0) > 0:
                    held[event.token] -= 1
                    if held[event.token] == 0:
                        del held[event.token]
            elif event.kind == "call":
                assert event.token is not None
                changed |= self._enter_callee(event.token, held)
            elif event.kind in ("with_cm", "enter_cm"):
                assert event.token is not None
                changed |= self._enter_callee(event.token, held)
                callee = self.funcs[event.token]
                yielded = callee.held_at_yield
                for token in yielded:
                    self._note_acquire(func, token, held)
                    held[token] = held.get(token, 0) + 1
                if event.kind == "with_cm":
                    changed |= self._simulate(func, event.body, held)
                    for token in yielded:
                        held[token] -= 1
                        if held[token] == 0:
                            del held[token]
                # enter_cm: held until function end (no pop)
            elif event.kind == "yield":
                # dict preserves insertion (= acquisition) order
                snapshot = tuple(held)
                if func.is_cm:
                    merged = func.held_at_yield + tuple(
                        t for t in snapshot if t not in func.held_at_yield
                    )
                    if merged != func.held_at_yield:
                        func.held_at_yield = merged
                        changed = True
        return changed

    # -- reporting ---------------------------------------------------------

    def find_cycle(self) -> list[str] | None:
        graph: dict[str, list[str]] = {}
        for a, b in self.edges:
            graph.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in graph}
        stack: list[str] = []

        def dfs(node: str) -> list[str] | None:
            colour[node] = GREY
            stack.append(node)
            for succ in graph.get(node, []):
                if colour.get(succ, WHITE) == GREY:
                    return stack[stack.index(succ) :] + [succ]
                if colour.get(succ, WHITE) == WHITE:
                    colour.setdefault(succ, WHITE)
                    found = dfs(succ)
                    if found is not None:
                        return found
            stack.pop()
            colour[node] = BLACK
            return None

        for node in list(graph):
            if colour.get(node, WHITE) == WHITE:
                found = dfs(node)
                if found is not None:
                    return found
        return None

    def report(self) -> dict[str, Any]:
        cycle = self.find_cycle()
        nodes = sorted(
            {a for a, _ in self.edges} | {b for _, b in self.edges}
        )
        return {
            "lock_classes": nodes,
            "edges": [
                {"from": a, "to": b, "via": via}
                for (a, b), via in sorted(self.edges.items())
            ],
            "same_class_nestings": [
                {"lock": token, "via": via}
                for token, via in sorted(self.same_class.items())
            ],
            "reentrant": sorted(self.reentrant),
            "unresolved_sites": self.unresolved,
            "cycle": cycle,
            "ok": cycle is None,
        }


def analyze(paths: list[Path] | None = None) -> dict[str, Any]:
    """Run the analysis over ``paths`` (default: the repro tree)."""
    if paths is None:
        root = Path(__file__).resolve().parent.parent
        paths = repo_python_files(root)
    sources, _ = load_sources(paths)
    analyzer = LockOrderAnalyzer(sources)
    analyzer.build_registry()
    analyzer.build_events()
    analyzer.propagate()
    return analyzer.report()


# -- small AST helpers -----------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Name):
        return None if annotation.id == "None" else annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        return _annotation_name(annotation.left) or _annotation_name(
            annotation.right
        )
    if isinstance(annotation, ast.Subscript):
        base = _annotation_name(annotation.value)
        if base == "Optional":
            return _annotation_name(annotation.slice)
        return None
    return None


def _witness_group(call: ast.Call) -> str | None:
    for keyword in call.keywords:
        if (
            keyword.arg == "witness_group"
            and isinstance(keyword.value, ast.Constant)
            and isinstance(keyword.value.value, str)
        ):
            return keyword.value.value
    return None


def _constructed_group(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None and name.split(".")[-1] == "ReadWriteLatch":
                group = _witness_group(node)
                if group is not None:
                    return group
    return None
