"""Lockdep-style latch witness: the runtime half of the latch checks.

The static analyses (:mod:`repro.analysis.rules.latch`,
:mod:`repro.analysis.lockorder`) prove discipline over the code that
is written; this module watches the code that actually *runs*.  When a
witness is enabled:

* every :class:`~repro.cracking.concurrency.ReadWriteLatch`
  acquisition/release is recorded on a per-thread held stack;
* acquisition *order* between latch groups is learned on the fly
  (lockdep style): the first time group B is taken while group A is
  held, the edge ``A -> B`` is recorded; a later acquisition of A
  while B is held -- or any longer inversion cycle -- is an
  :class:`OrderViolation`;
* same-group multi-acquisitions must take bucket keys in ascending
  order (the sorted-key protocol of
  :meth:`~repro.cracking.concurrency.PieceLatchTable.write_pieces`);
* :class:`~repro.cracking.index.CrackerIndex` mutation entry points
  call :func:`mutation_check`, which asserts that the calling thread
  holds the covering piece write latch (or the whole-table latch) for
  every index that has been *armed* -- armed meaning a
  :class:`~repro.holistic.workers.TuningWorkerPool` is actively racing
  it, which is exactly when an unlatched mutation is a data race.

Design constraints mirror :mod:`repro.faults`: with no witness enabled
the hooks cost one module-global read and a ``None`` check, so
production code carries them for free; everything recorded is
deterministic given the thread interleaving; and nothing is silently
swallowed -- violations are kept on the witness (``strict=True``
raises at the violation site instead, for debugging).

Typical test usage::

    with witness.enabled() as w:
        ... run the concurrency stress ...
    assert w.violations == []
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import ConcurrencyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cracking.concurrency import PieceLatchTable
    from repro.cracking.index import CrackerIndex


class WitnessError(ConcurrencyError):
    """A latch-discipline violation surfaced in strict mode."""


#: Group name of a latch that was never tagged by its owner (bare
#: ReadWriteLatch instances constructed outside PieceLatchTable).
UNTAGGED_GROUP = "latch.untagged"

#: Latch groups whose *same-group* nesting is legal provided keys are
#: taken in ascending order: piece latches follow the sorted-position
#: protocol, table latches of distinct indexes stack in sorted
#: column-name order (the serving frontend's multi-column windows).
ORDERED_GROUPS = frozenset({"latch.piece", "latch.table"})


def _keys_ascend(first: int | str, second: int | str) -> bool:
    """Whether acquiring ``second`` after ``first`` respects the
    ascending-key protocol.  Same-type keys compare natively; a mixed
    pair (one group keyed by position, another by name) compares by
    string so the check stays total."""
    if isinstance(first, int) and isinstance(second, int):
        return first <= second
    return str(first) <= str(second)


@dataclass(frozen=True, slots=True)
class Held:
    """One latch the current thread holds."""

    group: str
    key: int | str | None
    mode: str  # "r" | "w"
    obj_id: int


@dataclass(frozen=True, slots=True)
class OrderViolation:
    """One discipline violation the witness observed."""

    kind: str  # "order-inversion" | "key-order" | "unlatched-mutation"
    thread: str
    detail: str
    held: tuple[Held, ...] = ()


@dataclass(slots=True)
class _ThreadState:
    holds: list[Held] = field(default_factory=list)


class LatchWitness:
    """Records latch traffic and checks ordering as it happens."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: Learned order edges: (group_a, group_b) -> first witness
        #: note.  Group-level, not object-level: the deadlock argument
        #: is about lock *classes*, matching the static analyzer.
        self._edges: dict[tuple[str, str], str] = {}
        self.violations: list[OrderViolation] = []
        self.acquires = 0
        self.releases = 0
        self.mutation_checks = 0

    # -- per-thread state -------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState()
            self._tls.state = state
        return state

    def held_by_current_thread(self) -> tuple[Held, ...]:
        """The latches the calling thread currently holds (stack order)."""
        return tuple(self._state().holds)

    # -- violations -------------------------------------------------------

    def _violate(
        self, kind: str, detail: str, holds: Sequence[Held]
    ) -> None:
        violation = OrderViolation(
            kind=kind,
            thread=threading.current_thread().name,
            detail=detail,
            held=tuple(holds),
        )
        with self._lock:
            self.violations.append(violation)
        if self.strict:
            raise WitnessError(f"{kind}: {detail}")

    def _reachable(self, start: str, target: str) -> bool:
        """Whether ``target`` is reachable from ``start`` over edges.

        Caller holds ``self._lock``.
        """
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            if node == target:
                return True
            for a, b in self._edges:
                if a == node and b not in seen:
                    seen.add(b)
                    stack.append(b)
        return False

    # -- latch hooks ------------------------------------------------------

    def note_acquire(
        self, latch: object, mode: str, *, blocking_done: bool = True
    ) -> None:
        """Record a granted acquisition of ``latch`` by this thread."""
        group = getattr(latch, "witness_group", None) or UNTAGGED_GROUP
        key = getattr(latch, "witness_key", None)
        state = self._state()
        for held in state.holds:
            if held.group == group and held.obj_id != id(latch):
                if group not in ORDERED_GROUPS:
                    self._violate(
                        "order-inversion",
                        f"{group} acquired while already holding "
                        f"{group} (unordered group nests with itself)",
                        state.holds,
                    )
                elif (
                    held.key is not None
                    and key is not None
                    and not _keys_ascend(held.key, key)
                ):
                    self._violate(
                        "key-order",
                        f"{group} bucket {key} acquired while holding "
                        f"bucket {held.key} (keys must ascend)",
                        state.holds,
                    )
            elif held.group != group:
                with self._lock:
                    edge = (held.group, group)
                    if edge not in self._edges:
                        # Adding held.group -> group: an inversion
                        # exists iff group already reaches held.group.
                        if self._reachable(group, held.group):
                            detail = (
                                f"{group} acquired while holding "
                                f"{held.group}, but an earlier path "
                                f"ordered {group} before {held.group}"
                            )
                        else:
                            detail = None
                            self._edges[edge] = (
                                f"{threading.current_thread().name} "
                                f"held {held.group} -> took {group}"
                            )
                    else:
                        detail = None
                if detail is not None:
                    self._violate("order-inversion", detail, state.holds)
        state.holds.append(Held(group, key, mode, id(latch)))
        with self._lock:
            self.acquires += 1

    def note_release(self, latch: object, mode: str) -> None:
        """Record a release of ``latch`` by this thread."""
        state = self._state()
        for i in range(len(state.holds) - 1, -1, -1):
            held = state.holds[i]
            if held.obj_id == id(latch) and held.mode == mode:
                del state.holds[i]
                break
        with self._lock:
            self.releases += 1

    # -- mutation coverage ------------------------------------------------

    def check_mutation(
        self,
        table: "PieceLatchTable",
        piece_starts: Sequence[int] | None,
        what: str,
    ) -> None:
        """Assert the covering write latch is held for a mutation.

        ``piece_starts`` are the start positions of the pieces the
        mutation restructures; ``None`` means the whole index (the
        mutation needs the table-level exclusive latch).
        """
        with self._lock:
            self.mutation_checks += 1
        state = self._state()
        table_latch_id = id(table._table)
        for held in state.holds:
            if held.obj_id == table_latch_id and held.mode == "w":
                return  # whole-table exclusive covers everything
        if piece_starts is None:
            self._violate(
                "unlatched-mutation",
                f"{what} mutates the whole index without the "
                "table-level exclusive latch",
                state.holds,
            )
            return
        held_keys = {
            held.key
            for held in state.holds
            if held.group == "latch.piece"
            and held.mode == "w"
            and getattr(held, "key", None) is not None
        }
        for start in piece_starts:
            key = table.key_for(start)
            if key not in held_keys:
                self._violate(
                    "unlatched-mutation",
                    f"{what} mutates the piece at {start} (bucket "
                    f"{key}) without its write latch",
                    state.holds,
                )
                return

    # -- reporting --------------------------------------------------------

    def order_edges(self) -> dict[tuple[str, str], str]:
        """The learned group-order edges with their first witness."""
        with self._lock:
            return dict(self._edges)

    def summary(self) -> dict[str, object]:
        """JSON-ready account of what the witness saw."""
        with self._lock:
            return {
                "acquires": self.acquires,
                "releases": self.releases,
                "mutation_checks": self.mutation_checks,
                "order_edges": sorted(
                    f"{a} -> {b}" for a, b in self._edges
                ),
                "violations": [
                    f"{v.kind}: {v.detail}" for v in self.violations
                ],
            }


# -- module-global switchboard (zero overhead when disabled) -------------

_active: LatchWitness | None = None
#: Armed indexes: id(index) -> (index, table).  Ids are kept alongside
#: strong references only while armed; pools disarm on stop, so the
#: registry cannot leak across tests that stop their pools.
_armed: dict[int, tuple["CrackerIndex", "PieceLatchTable"]] = {}
_armed_lock = threading.Lock()


def active() -> LatchWitness | None:
    """The enabled witness, or ``None`` (the common, free case)."""
    return _active


def enable(strict: bool = False) -> LatchWitness:
    """Install a fresh witness; returns it.

    Raises:
        ConcurrencyError: if one is already enabled.
    """
    global _active
    if _active is not None:
        raise ConcurrencyError("a latch witness is already enabled")
    _active = LatchWitness(strict=strict)
    return _active


def disable() -> LatchWitness | None:
    """Remove the active witness (if any); returns it."""
    global _active
    witness, _active = _active, None
    with _armed_lock:
        _armed.clear()
    return witness


@contextmanager
def enabled(strict: bool = False) -> Iterator[LatchWitness]:
    """``with witness.enabled() as w:`` -- scoped witness installation."""
    w = enable(strict=strict)
    try:
        yield w
    finally:
        disable()


def arm(index: "CrackerIndex", table: "PieceLatchTable") -> None:
    """Start enforcing latched mutation on ``index``.

    Called by the worker pool when it starts racing an index; a no-op
    unless a witness is enabled.
    """
    if _active is None:
        return
    with _armed_lock:
        _armed[id(index)] = (index, table)


def disarm(index: "CrackerIndex") -> None:
    """Stop enforcing latched mutation on ``index``."""
    with _armed_lock:
        _armed.pop(id(index), None)


def disarm_all() -> None:
    """Stop enforcing latched mutation everywhere (pool shutdown)."""
    with _armed_lock:
        _armed.clear()


def mutation_check(
    index: "CrackerIndex",
    piece_starts: Sequence[int] | Callable[[], Sequence[int]] | None,
    what: str,
) -> None:
    """Hook for index mutation entry points.

    One global read when no witness is enabled.  ``piece_starts`` may
    be a callable so call sites can defer computing piece positions
    until a witness actually looks.
    """
    w = _active
    if w is None:
        return
    with _armed_lock:
        entry = _armed.get(id(index))
    if entry is None or entry[0] is not index:
        return
    starts = piece_starts() if callable(piece_starts) else piece_starts
    w.check_mutation(entry[1], starts, what)
