"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Finding:
    """One static-analysis violation.

    Attributes:
        rule: rule identifier (``latch-discipline``, ``determinism``,
            ``dtype-promotion``, ``fault-coverage``, ``waiver``).
        path: file the violation is in (repo-relative when produced by
            the CLI).
        line: 1-based line of the offending node.
        message: human-readable statement of the violation.
    """

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
