"""Strict-mode mypy gate for the annotated core modules.

mypy is not a runtime dependency of the repro package; local dev
containers may not have it.  The gate therefore *skips* (exit 0, with
a notice) when mypy is not importable, unless ``required=True`` -- CI
passes ``--require-mypy`` after installing it, so type regressions
cannot slip through where it matters while offline checkouts still
lint.  Scope and strictness live in ``mypy.ini`` at the repo root
(strict for ``repro.simtime.*``, ``repro.cracking.piecemap`` and the
witness; everything else is only imported, silently).
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

#: Module paths (relative to the source root) the gate type-checks.
CHECKED_PATHS = (
    "repro/simtime",
    "repro/cracking/piecemap.py",
    "repro/analysis/witness.py",
)


@dataclass(frozen=True, slots=True)
class MypyResult:
    status: str  # "ok" | "findings" | "skipped" | "missing-config"
    output: str

    @property
    def failed(self) -> bool:
        return self.status in ("findings", "missing-config")


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_mypy(
    src_root: Path | None = None, required: bool = False
) -> MypyResult:
    """Run mypy over :data:`CHECKED_PATHS`.

    Args:
        src_root: directory containing the ``repro`` package (defaults
            to the installed location's parent).
        required: when True, an absent mypy is a failure instead of a
            skip -- set by CI, where the install is guaranteed.
    """
    if src_root is None:
        src_root = Path(__file__).resolve().parent.parent.parent
    if not mypy_available():
        status = "missing-config" if required else "skipped"
        return MypyResult(
            status=status,
            output=(
                "mypy is not installed"
                + ("; required by this run" if required else "; skipping")
            ),
        )
    config = _find_config(src_root)
    if config is None:
        return MypyResult(
            status="missing-config",
            output="mypy.ini not found above the source root",
        )
    targets = [str(src_root / path) for path in CHECKED_PATHS]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(config),
            *targets,
        ],
        capture_output=True,
        text=True,
        cwd=str(config.parent),
        check=False,
    )
    output = (proc.stdout + proc.stderr).strip()
    return MypyResult(
        status="ok" if proc.returncode == 0 else "findings",
        output=output,
    )


def _find_config(src_root: Path) -> Path | None:
    for base in (src_root, *src_root.parents):
        candidate = base / "mypy.ini"
        if candidate.is_file():
            return candidate
    return None
