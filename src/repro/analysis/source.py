"""Parsed source files, waiver comments and repo discovery.

Waivers are per-line pragmas of the form::

    risky_call()  # repro: allow[rule-id] -- why this site is audited

The reason after ``--`` is mandatory: a waiver is an audit record, not
an off switch, and a reasonless one is itself reported as a finding
(rule ``waiver``).  A finding is suppressed when a matching waiver sits
on the line of the flagged node.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

#: ``# repro: allow[rule] -- reason`` (reason optionally missing, which
#: is itself a finding).
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[a-z0-9-]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(slots=True)
class SourceFile:
    """One parsed module plus its waiver map."""

    path: Path
    text: str
    tree: ast.Module
    #: line number -> rule ids waived on that line
    waivers: dict[int, set[str]] = field(default_factory=dict)
    #: waivers missing their mandatory reason
    reasonless: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, text: str | None = None) -> "SourceFile":
        """Parse ``path`` (or explicit ``text``) into a SourceFile.

        Raises:
            SyntaxError: on unparseable source -- callers turn this
                into a finding rather than crashing the run.
        """
        if text is None:
            text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        src = cls(path=path, text=text, tree=tree)
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _WAIVER_RE.search(line)
            if match is None:
                continue
            src.waivers.setdefault(lineno, set()).add(match.group("rule"))
            if not match.group("reason"):
                src.reasonless.append((lineno, match.group("rule")))
        return src

    def is_waived(self, rule: str, line: int) -> bool:
        return rule in self.waivers.get(line, set())

    def waiver_findings(self) -> list[Finding]:
        return [
            Finding(
                rule="waiver",
                path=str(self.path),
                line=line,
                message=(
                    f"waiver for [{rule}] is missing its mandatory "
                    "reason ('# repro: allow[...] -- why')"
                ),
            )
            for line, rule in self.reasonless
        ]


def repo_python_files(root: Path) -> list[Path]:
    """Every ``.py`` file under ``root``, sorted, caches excluded."""
    return sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def load_sources(
    paths: list[Path],
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse ``paths``; syntax errors come back as findings."""
    sources: list[SourceFile] = []
    findings: list[Finding] = []
    for path in paths:
        try:
            sources.append(SourceFile.parse(path))
        except (SyntaxError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    rule="parse",
                    path=str(path),
                    line=getattr(error, "lineno", 0) or 0,
                    message=f"could not parse: {error}",
                )
            )
    return sources, findings
