"""Repo-specific static analysis and runtime sanitizers.

The kernel's headline claims rest on invariants that ordinary tests
only sample: bit-identical fingerprints require wall-clock- and
randomness-free charged paths (SimClock determinism), the worker and
serving planes require every latch acquisition to be release-protected
on every path, the ``exact_range_cuts`` fix of ISSUE 6 exists because
one silent int64->float64 ``searchsorted`` promotion produced wrong
answers, and the fault plane's recovery audit is only as good as its
trip/tamper call-site coverage.  This package checks those invariants
mechanically:

* :mod:`repro.analysis.lint` -- an AST lint engine with pluggable
  rules (:mod:`repro.analysis.rules`) enforcing latch discipline,
  determinism, dtype-promotion hygiene and fault-point coverage;
* :mod:`repro.analysis.lockorder` -- a static lock-order analyzer
  that extracts the latch-acquisition call graph and fails on cycles
  (the deadlock-freedom argument the sharding roadmap item needs
  before per-shard latch tables multiply the lock graph);
* :mod:`repro.analysis.witness` -- a lockdep-style runtime witness:
  a debug mode where latch acquisitions are recorded per thread,
  order inversions are flagged as they happen, and
  :class:`~repro.cracking.index.CrackerIndex` mutation entry points
  assert the caller holds the covering write latch;
* :mod:`repro.analysis.mypy_gate` -- the strict-typing gate over
  ``repro/simtime``, ``repro/cracking/piecemap`` and this package.

Run everything with ``python -m repro.analysis --check`` (the CI
``static-analysis`` job's entry point).

This module stays import-light on purpose: production code
(:mod:`repro.cracking.concurrency`, :mod:`repro.cracking.index`,
:mod:`repro.holistic.workers`) imports :mod:`repro.analysis.witness`
for its zero-overhead-when-disabled hooks, and must not drag the AST
machinery in with it.
"""

from __future__ import annotations

__all__ = ["witness"]

from repro.analysis import witness
