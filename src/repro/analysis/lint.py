"""Lint driver: discover files, run every rule, apply waivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.faultpoints import parse_registry
from repro.analysis.source import SourceFile, load_sources, repo_python_files


@dataclass
class LintContext:
    """Repo-level facts shared by every rule during one lint run."""

    root: Path
    fault_points: dict[str, int] = field(default_factory=dict)
    tamper_points: set[str] = field(default_factory=set)
    plan_path: Path | None = None
    used_fault_points: set[str] = field(default_factory=set)
    sources_by_path: dict[str, SourceFile] = field(default_factory=dict)

    @classmethod
    def build(cls, root: Path) -> "LintContext":
        ctx = cls(root=root)
        plan = root / "faults" / "plan.py"
        if plan.is_file():
            ctx.plan_path = plan
            ctx.fault_points, ctx.tamper_points = parse_registry(plan)
        return ctx

    def rel_parts(self, path: Path) -> tuple[str, ...]:
        """Path components relative to the lint root (full parts when
        the file sits outside it, e.g. a test fixture)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).parts
        except ValueError:
            return path.parts


def run_lint(
    paths: list[Path] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Lint ``paths`` (default: every ``.py`` under ``root``).

    ``root`` defaults to the installed ``repro`` package directory, so
    ``run_lint()`` with no arguments checks the whole source tree.
    Waivers are applied here: a finding whose rule is waived on its
    line (with a reason) is dropped; reasonless waivers surface as
    rule ``waiver`` findings and cannot themselves be waived.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    if paths is None:
        paths = repo_python_files(root)
    sources, findings = load_sources(paths)
    ctx = LintContext.build(root)
    for src in sources:
        ctx.sources_by_path[str(src.path)] = src
    for src in sources:
        findings.extend(src.waiver_findings())
        for rule in ALL_RULES:
            for finding in rule.check(src, ctx):
                if not src.is_waived(finding.rule, finding.line):
                    findings.append(finding)
    for rule in ALL_RULES:
        finalize = getattr(rule, "finalize", None)
        if finalize is None:
            continue
        for finding in finalize(ctx):
            src = ctx.sources_by_path.get(finding.path)
            if src is not None and src.is_waived(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
