"""Holistic indexing: the paper's contribution.

A kernel-integrated tuner that monitors continuously (online), refines
partial indexes during query processing (adaptive) and spends any idle
time on statistics-driven auxiliary refinements (offline) -- plus the
no-knowledge catalog bootstrap and the no-idle hot-range boost of the
paper's Section 3.
"""

from repro.holistic.cost_model import PlannedAction, TuningCostModel
from repro.holistic.kernel import HolisticConfig, HolisticKernel
from repro.holistic.policies import (
    RankedPolicy,
    RoundRobinPolicy,
    TuningPolicy,
    WeightedRandomPolicy,
    make_policy,
)
from repro.holistic.ranking import ColumnRanking, ColumnTuningState
from repro.holistic.scheduler import IdleScheduler, TuningReport
from repro.holistic.tuner import ActionKind, AuxiliaryTuner
from repro.holistic.workers import TuningWorkerPool, WorkerStats

__all__ = [
    "ActionKind",
    "AuxiliaryTuner",
    "ColumnRanking",
    "ColumnTuningState",
    "HolisticConfig",
    "HolisticKernel",
    "IdleScheduler",
    "PlannedAction",
    "RankedPolicy",
    "RoundRobinPolicy",
    "TuningCostModel",
    "TuningPolicy",
    "TuningReport",
    "TuningWorkerPool",
    "WeightedRandomPolicy",
    "WorkerStats",
    "make_policy",
]
