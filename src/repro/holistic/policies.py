"""Resource-spreading policies for auxiliary tuning actions.

Paper §3 ("Spread Resources with Adaptive Indexes"): with partial
indexes the kernel can spread an idle window over many columns instead
of finishing one index.  How to spread is a policy:

* ``round_robin`` -- the paper's baseline: cycle through the relevant
  columns, one random crack each;
* ``ranked`` -- the paper's "more sophisticated approach": always pick
  the column the continuous ranking scheme scores highest;
* ``weighted_random`` -- sample proportionally to the ranking score
  (an exploration/exploitation middle ground, used by the ablations).

All policies skip columns that already reached the cache-fit optimum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigError
from repro.holistic.ranking import ColumnRanking, ColumnTuningState


class TuningPolicy(ABC):
    """Chooses the next column to receive an auxiliary action."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, ranking: ColumnRanking) -> ColumnTuningState | None:
        """The next column, or None when every candidate is refined."""


class RoundRobinPolicy(TuningPolicy):
    """Cycle through unrefined candidates in registration order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, ranking: ColumnRanking) -> ColumnTuningState | None:
        states = ranking.states()
        if not states:
            return None
        for offset in range(len(states)):
            state = states[(self._cursor + offset) % len(states)]
            if not ranking.is_refined(state):
                self._cursor = (self._cursor + offset + 1) % len(states)
                return state
        return None


class RankedPolicy(TuningPolicy):
    """Always pick the ranking's current best column."""

    name = "ranked"

    def choose(self, ranking: ColumnRanking) -> ColumnTuningState | None:
        return ranking.best()


class WeightedRandomPolicy(TuningPolicy):
    """Sample a column with probability proportional to its score."""

    name = "weighted_random"

    def __init__(self, seed: int | None = None) -> None:
        self._rng = np.random.default_rng(seed)

    def choose(self, ranking: ColumnRanking) -> ColumnTuningState | None:
        ranked = ranking.ranked()
        if not ranked:
            return None
        scores = np.array([score for _, score in ranked], dtype=np.float64)
        probabilities = scores / scores.sum()
        chosen = self._rng.choice(len(ranked), p=probabilities)
        return ranked[int(chosen)][0]


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    RankedPolicy.name: RankedPolicy,
    WeightedRandomPolicy.name: WeightedRandomPolicy,
}


def make_policy(name: str, seed: int | None = None) -> TuningPolicy:
    """Instantiate a policy by name.

    Raises:
        ConfigError: on an unknown policy name.
    """
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown tuning policy {name!r}; supported: "
            f"{', '.join(sorted(_POLICIES))}"
        ) from None
    if factory is WeightedRandomPolicy:
        return WeightedRandomPolicy(seed)
    return factory()
