"""Parallel idle-time tuning workers: the paper's idle-core claim.

The paper's headline argument is that modern machines have idle CPU
cores *while queries run*, and that a holistic kernel should spend
them on continuous index refinement.  This module provides that
machinery: a :class:`TuningWorkerPool` of real ``threading`` workers
that drain auxiliary refinement actions concurrently -- with each
other and with foreground query processing -- using the piece-level
read/write latches of :mod:`repro.cracking.concurrency`, following the
recipes of "Concurrency Control for Adaptive Indexing" (Graefe et al.)
and "Main Memory Adaptive Indexing for Multi-core Systems" (Alvarez et
al.).

Three layers cooperate:

* **latches** -- every structural operation latches the bucket of the
  piece(s) it restructures (:class:`LatchedCrackerAccess`), so a
  worker cracking one piece never conflicts with queries or workers
  touching other pieces of the same index; conflicting accesses wait
  and are counted as contention stalls on the crack tape;
* **lanes** -- under a :class:`~repro.simtime.clock.SimClock` the pool
  opens a *parallel phase*: each thread's charges accumulate on its
  own lane and the phase advances virtual time by the **maximum**
  lane, so N workers doing W seconds of aggregate refinement cost the
  timeline ~W/N seconds, reproducing the paper's multi-core scaling
  without needing real parallelism under the GIL;
* **attribution** -- every tape record carries the id of the worker
  that produced it, and per-worker stalls/actions are reported in the
  window's :class:`~repro.holistic.scheduler.TuningReport`.

The pool is strictly additive: a kernel with ``num_workers=0`` never
constructs one and runs the serial scheduler bit-for-bit as before.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from repro import faults
from repro.analysis import witness
from repro.cracking.concurrency import LatchedCrackerAccess, PieceLatchTable
from repro.cracking.index import CrackerIndex
from repro.cracking.tape import CrackTape
from repro.errors import ConcurrencyError, ConfigError, CrackerError
from repro.holistic.policies import TuningPolicy
from repro.holistic.ranking import ColumnRanking, ColumnTuningState
from repro.holistic.scheduler import TuningReport
from repro.holistic.tuner import ActionKind, AuxiliaryTuner
from repro.simtime.clock import Clock, wall_sleep
from repro.storage.catalog import ColumnRef
from repro.util.retry import BackoffPolicy

#: Queue sentinel that tells a worker thread to exit its loop.
_STOP = object()


@dataclass(frozen=True, slots=True)
class SupervisorPolicy:
    """How the pool reacts to worker crashes.

    Args:
        max_restarts_per_worker: restarts a single worker slot may
            consume before its next crash is fatal to the pool.
        quarantine_threshold: crashes attributed to one column before
            its refinement actions are dead-lettered.
        backoff: restart delay schedule (capped exponential, indexed
            by the worker slot's restart count).
    """

    max_restarts_per_worker: int = 8
    quarantine_threshold: int = 3
    backoff: BackoffPolicy = BackoffPolicy(
        base_s=0.001, factor=2.0, cap_s=0.05, max_attempts=64
    )


@dataclass(slots=True)
class WorkerStats:
    """Lifetime statistics of one tuning worker."""

    worker_id: int
    actions_attempted: int = 0
    actions_effective: int = 0
    stalls: int = 0
    busy_s: float = 0.0


@dataclass(slots=True)
class _Window:
    """Aggregates of the idle window currently being drained."""

    attempted: int = 0
    effective: int = 0
    per_column: dict[ColumnRef, int] = field(default_factory=dict)
    per_worker: dict[int, int] = field(default_factory=dict)
    exhausted: bool = False


class TuningWorkerPool:
    """N threads draining auxiliary refinements under piece latches.

    Args:
        clock: the shared engine clock; parallel phases are opened on
            it while the pool runs (``SimClock`` lanes make wall-clock
            the max over workers, ``WallClock`` overlaps by itself).
        tape: the kernel's crack tape; receives worker attribution and
            stall counts.
        ranking: the continuous column ranking workers pick from.
        policy: resource-spreading policy (shared, guarded by a lock).
        num_workers: worker thread count (>= 1).
        latch_granularity: rows per piece-latch bucket (>= 1; 1 gives
            one latch per piece).
        action: auxiliary action kind each worker performs.
        min_piece_size: cache-fit stopping criterion, in rows.
        seed: base seed; worker ``i`` gets an independent generator
            seeded ``seed + i + 1`` so runs are reproducible for every
            worker count.
    """

    def __init__(
        self,
        clock: Clock,
        tape: CrackTape,
        ranking: ColumnRanking,
        policy: TuningPolicy,
        num_workers: int,
        latch_granularity: int = 1,
        action: ActionKind = ActionKind.RANDOM_CRACK,
        min_piece_size: int = 2,
        seed: int | None = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigError(
                f"a worker pool needs num_workers >= 1, got {num_workers}"
            )
        if latch_granularity < 1:
            raise ConfigError(
                f"latch_granularity must be >= 1, got {latch_granularity}"
            )
        self.clock = clock
        self.tape = tape
        # Worker threads will share this tape: appends must lock.
        tape.mark_concurrent()
        self.ranking = ranking
        self.policy = policy
        self.num_workers = num_workers
        self.latch_granularity = latch_granularity
        self.action = action
        self.min_piece_size = min_piece_size
        self.stats: dict[int, WorkerStats] = {
            i: WorkerStats(worker_id=i) for i in range(num_workers)
        }
        self._tuners = [
            AuxiliaryTuner(
                kind=action,
                seed=None if seed is None else seed + i + 1,
                min_piece_size=min_piece_size,
            )
            for i in range(num_workers)
        ]
        self._accesses: dict[ColumnRef, LatchedCrackerAccess] = {}
        self._access_lock = threading.Lock()
        # One queue per worker, filled round-robin: static chunking
        # keeps the lanes balanced regardless of how the GIL schedules
        # the threads, so N workers reliably cost ~1/N the elapsed
        # virtual time (the multi-core chunking of Alvarez et al.).
        self._queues: list[queue.Queue[object]] = [
            queue.Queue() for _ in range(num_workers)
        ]
        self._next_queue = 0
        self._threads: dict[int, threading.Thread] = {}
        self._idents: dict[int, int] = {}  # clock lane id -> worker id
        self._policy_lock = threading.Lock()
        self._window_lock = threading.Lock()
        self._window = _Window()
        self._running = False
        self._failure: BaseException | None = None
        self.windows_run = 0
        #: Supervision: crashed workers are restarted with capped
        #: exponential backoff; columns whose actions repeatedly kill
        #: workers are quarantined (dead-lettered) after their piece
        #: state is verified and, if inconsistent, rebuilt.
        self.supervisor = SupervisorPolicy()
        self._sleep = wall_sleep  # injectable for deterministic tests
        self._state_lock = threading.Lock()
        self._restarts: dict[int, int] = {}
        self._crashes: dict[ColumnRef, int] = {}
        self._current: dict[int, ColumnTuningState | None] = {}
        self.dead_letter: list[ColumnRef] = []
        self.restarts_total = 0
        self.rebuilds_total = 0
        self.crash_log: list[str] = []

    # -- index registration --------------------------------------------

    def register_index(
        self, ref: ColumnRef, index: CrackerIndex
    ) -> LatchedCrackerAccess:
        """Create (or return) the latched access facade for ``ref``.

        Each index gets its own latch table: piece positions of
        different columns live in different spaces.
        """
        with self._access_lock:
            access = self._accesses.get(ref)
            if access is None:
                table = PieceLatchTable(
                    self.latch_granularity,
                    witness_key=f"{ref.table}.{ref.column}",
                )
                access = LatchedCrackerAccess(index, table)
                self._accesses[ref] = access
            if self._running:
                witness.arm(access.index, access.table)
            return access

    def access_for(self, ref: ColumnRef) -> LatchedCrackerAccess | None:
        """The latched facade for ``ref``, if registered."""
        return self._accesses.get(ref)

    # -- lifecycle ------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Spawn the worker threads and open a parallel clock phase.

        Idempotent while running.
        """
        if self._running:
            return
        self._failure = None
        if hasattr(self.clock, "begin_parallel"):
            self.clock.begin_parallel()
        self._threads = {}
        self._idents = {}
        self._restarts = {}
        self._running = True
        with self._access_lock:
            # Latch-sanitizer scope: while workers race these indexes,
            # every mutation must arrive under its covering latch.
            for access in self._accesses.values():
                witness.arm(access.index, access.table)
        for worker_id in range(self.num_workers):
            self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker_loop,
            args=(worker_id,),
            name=f"tuning-worker-{worker_id}",
            daemon=True,
        )
        self._threads[worker_id] = thread
        thread.start()
        return thread

    def submit(self, actions: int) -> None:
        """Enqueue ``actions`` refinement attempts for the workers.

        Raises:
            ConfigError: if the pool is not running or ``actions`` < 0.
        """
        if not self._running:
            raise ConfigError("worker pool is not running; call start()")
        if actions < 0:
            raise ConfigError(f"actions must be >= 0, got {actions}")
        for _ in range(actions):
            self._queues[self._next_queue].put(None)
            self._next_queue = (self._next_queue + 1) % self.num_workers

    def drain(self) -> None:
        """Block until every submitted action has been processed.

        Raises:
            ConcurrencyError: re-raising the first *fatal* worker
                failure.  Supervised crashes (restarted workers,
                quarantined columns) drain cleanly; the failure stays
                sticky once raised, so a later ``drain()`` cannot
                silently report success (clear it explicitly with
                :meth:`clear_failure`).
        """
        for worker_id, line in enumerate(self._queues):
            self._join_line(worker_id, line)
        self._check_failure()

    def _join_line(self, worker_id: int, line: queue.Queue) -> None:
        """``line.join()`` that survives an abandoned worker.

        A worker whose crash was fatal (restart budget exhausted,
        every candidate quarantined) is not replaced; its queued
        tokens would leave ``join()`` waiting forever.  Once the pool
        is failed and the worker thread is dead, the leftover tokens
        are consumed here so drains and stops still terminate -- the
        sticky failure is what reports the loss.
        """
        while True:
            with line.all_tasks_done:
                if line.unfinished_tasks == 0:
                    return
                thread = self._threads.get(worker_id)
                dead = thread is None or not thread.is_alive()
                if not (self._failure is not None and dead):
                    line.all_tasks_done.wait(0.02)
                    continue
            while True:
                try:
                    line.get_nowait()
                except queue.Empty:
                    break
                line.task_done()

    def stop(self):
        """Drain, join the threads and close the parallel clock phase.

        Returns the phase's :class:`~repro.simtime.clock.ParallelAccount`
        (or ``None`` on clocks without parallel accounting); per-worker
        ``busy_s`` statistics are updated from its lanes.

        Raises:
            ConcurrencyError: if a worker thread died.  The phase has
                already been settled by then (``end_parallel`` cannot
                be retried), so the settled account and the updated
                per-worker statistics ride on the error as
                ``error.account`` / ``error.worker_stats`` instead of
                being lost.
        """
        if not self._running:
            return None
        for worker_id, line in enumerate(self._queues):
            self._join_line(worker_id, line)
        for line in self._queues:
            line.put(_STOP)
        for thread in list(self._threads.values()):
            thread.join()
        for worker_id, line in enumerate(self._queues):
            self._join_line(worker_id, line)
        self._running = False
        with self._access_lock:
            for access in self._accesses.values():
                witness.disarm(access.index)
        account = None
        if hasattr(self.clock, "end_parallel"):
            account = self.clock.end_parallel()
            for ident, busy in account.lanes.items():
                worker_id = self._idents.get(ident)
                if worker_id is not None:
                    self.stats[worker_id].busy_s += busy
        self._check_failure(account)
        return account

    def _check_failure(self, account=None) -> None:
        # The failure stays sticky: a second drain()/stop() must keep
        # failing until clear_failure() -- silently reporting success
        # after a fatal worker death was a real bug (ISSUE 8).
        if self._failure is not None:
            failure = self._failure
            error = ConcurrencyError(f"tuning worker died: {failure!r}")
            error.account = account
            error.worker_stats = self.worker_stats()
            raise error from failure

    def clear_failure(self) -> BaseException | None:
        """Acknowledge and clear a fatal failure; returns it."""
        failure, self._failure = self._failure, None
        return failure

    # -- windows --------------------------------------------------------

    def run_window(
        self,
        actions: int | None = None,
        budget_s: float | None = None,
    ) -> TuningReport:
        """Drain one idle window through the workers.

        Mirrors the serial :class:`IdleScheduler` semantics: an action
        count is dispatched in full; a time budget is checked between
        batches, so the last batch may slightly overshoot.  The window
        report's ``consumed_s`` is the parallel elapsed time (max over
        worker lanes), and ``busy_s`` the aggregate work.

        If the pool is not already running the window owns the whole
        lifecycle (start, drain, stop); a pool started explicitly --
        e.g. to race workers against foreground queries -- stays
        running afterwards.

        Raises:
            ConfigError: if neither an action count nor a budget is
                given, or the given one is negative.
        """
        if actions is None and budget_s is None:
            raise ConfigError(
                "a worker window needs an action count or a time budget"
            )
        if actions is not None and actions < 0:
            raise ConfigError(f"actions must be >= 0, got {actions}")
        if budget_s is not None and budget_s < 0:
            raise ConfigError(f"budget must be >= 0, got {budget_s}")
        owns_lifecycle = not self._running
        self.start()
        # Clocks without parallel accounting (bare Clock protocol
        # implementations) fall back to plain now() deltas, so time
        # budgets still terminate.
        lanes = hasattr(self.clock, "parallel_elapsed")
        now_before = self.clock.now()
        elapsed_before = self._parallel_elapsed()
        busy_before = self._parallel_busy()
        stalls_before = self.tape.stall_count()

        def elapsed() -> float:
            if lanes:
                return self._parallel_elapsed() - elapsed_before
            return self.clock.now() - now_before

        with self._window_lock:
            self._window = _Window()
            window = self._window
        if actions is not None:
            self.submit(actions)
            self.drain()
        else:
            while not window.exhausted and elapsed() < budget_s:
                self.submit(self.num_workers)
                self.drain()
        consumed = elapsed()
        busy = self._parallel_busy() - busy_before if lanes else consumed
        if owns_lifecycle:
            self.stop()
        report = TuningReport(
            actions_attempted=window.attempted,
            actions_effective=window.effective,
            consumed_s=consumed,
            per_column=dict(window.per_column),
            stop_reason=(
                "all candidates refined"
                if window.exhausted
                else (
                    "action budget exhausted"
                    if actions is not None
                    else "time budget exhausted"
                )
            ),
            per_worker=dict(window.per_worker),
            stalls=self.tape.stall_count() - stalls_before,
            busy_s=busy,
            workers=self.num_workers,
        )
        self.windows_run += 1
        return report

    def _parallel_elapsed(self) -> float:
        if hasattr(self.clock, "parallel_elapsed"):
            return self.clock.parallel_elapsed()
        return 0.0

    def _parallel_busy(self) -> float:
        if hasattr(self.clock, "parallel_busy"):
            return self.clock.parallel_busy()
        return 0.0

    # -- the workers ----------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        # Register under the clock's stable lane id (thread idents are
        # recycled by the OS; see SimClock.current_lane).
        if hasattr(self.clock, "current_lane"):
            self._idents[self.clock.current_lane()] = worker_id
        else:
            self._idents[threading.get_ident()] = worker_id
        line = self._queues[worker_id]
        while True:
            token = line.get()
            try:
                if token is _STOP:
                    return
                if self._failure is None:
                    self._perform_one(worker_id)
            except BaseException as exc:  # noqa: BLE001 - supervised
                # The thread dies (its loop ends here); the supervisor
                # decides whether a replacement takes over its slot and
                # its failed token.
                self._supervise_crash(worker_id, line, exc)
                return
            finally:
                line.task_done()

    # -- supervision ----------------------------------------------------

    def _supervise_crash(
        self, worker_id: int, line: queue.Queue, error: BaseException
    ) -> None:
        """React to a worker death: repair, quarantine, restart.

        Runs on the dying thread, after its latches unwound.  The
        crashed column's piece state is re-verified (and rebuilt when
        inconsistent) under the index's exclusive latch before any
        replacement worker can touch it; repeated killers are
        dead-lettered; the slot is restarted with capped exponential
        backoff until its budget runs out, at which point the failure
        becomes fatal and sticky.
        """
        with self._state_lock:
            state = self._current.pop(worker_id, None)
        quarantined_all = False
        if state is not None:
            self._verify_and_repair(state)
            with self._state_lock:
                crashes = self._crashes.get(state.ref, 0) + 1
                self._crashes[state.ref] = crashes
                threshold = self.supervisor.quarantine_threshold
                if crashes >= threshold and state.ref not in self.dead_letter:
                    self.dead_letter.append(state.ref)
                    self.crash_log.append(
                        f"quarantined {state.ref.table}.{state.ref.column} "
                        f"after {crashes} worker crashes"
                    )
                quarantined_all = bool(self.ranking.states()) and all(
                    s.ref in self.dead_letter
                    for s in self.ranking.states()
                )
        if quarantined_all:
            self._failure = ConcurrencyError(
                "every tuning candidate is quarantined "
                f"(dead letter: {[str(r) for r in self.dead_letter]}); "
                f"last crash: {error!r}"
            )
            self._failure.__cause__ = error
            return
        with self._state_lock:
            restarts = self._restarts.get(worker_id, 0)
            if restarts >= self.supervisor.max_restarts_per_worker:
                self._failure = error
                return
            self._restarts[worker_id] = restarts + 1
            self.restarts_total += 1
        delay = self.supervisor.backoff.delay_s(restarts)
        if delay > 0:
            self._sleep(delay)
        self.crash_log.append(
            f"worker {worker_id} crashed ({type(error).__name__}: "
            f"{error}); restart #{restarts + 1}"
        )
        # The retry token is enqueued before this thread's task_done
        # (our caller's finally) so a concurrent drain never observes
        # the line transiently empty between death and retry.
        if self._running:
            self._spawn_worker(worker_id)
            line.put(None)
        # Credit whichever fault point the absorbed error came from
        # (an injected crash carries its point; genuine errors default
        # to the worker action site).
        point = getattr(error, "point", None)
        faults.recovered(  # repro: allow[fault-coverage] -- dynamic credit: the name travels on the injected error, and every value it can carry is a registered literal at its trip site

            point if isinstance(point, str) else "workers.perform",
            f"worker {worker_id} restarted",
        )

    def _verify_and_repair(self, state: ColumnTuningState) -> None:
        """Check the crashed column's invariants; rebuild on damage.

        Holds the whole-index latch so no replacement worker or query
        sees intermediate state -- the piece is verified and repaired
        *before* the latch is released, then the fault-free answer path
        resumes.
        """
        access = self.register_index(state.ref, state.index)
        with access.exclusive():
            try:
                state.index.check_invariants()
            except CrackerError:
                state.index.rebuild()
                with self._state_lock:
                    self.rebuilds_total += 1
                self.crash_log.append(
                    f"rebuilt {state.ref.table}.{state.ref.column}: "
                    "crash left the piece map inconsistent"
                )

    def _choose_state(self, worker_id: int) -> ColumnTuningState | None:
        """Pick the next non-quarantined column, or ``None`` when the
        ranking is exhausted.

        When the policy only ever offers dead-lettered columns there
        are two distinct situations.  If every *live* (non-quarantined)
        candidate is already refined, the unrefined work that remains
        is exactly the quarantined set: the pool has done everything it
        safely can, which is exhaustion, not failure.  But if a live
        unrefined candidate exists that the policy refuses to rotate to
        (the ranked policy re-offering a dead-lettered best column
        forever), submitted actions would silently become no-ops -- the
        exact bug class ISSUE 8's satellite fixed for dead workers --
        so that is a fatal, sticky failure.
        """
        with self._policy_lock:
            states = self.ranking.states()
            for _ in range(len(states) + 1):
                state = self.policy.choose(self.ranking)
                if state is None:
                    return None
                if state.ref not in self.dead_letter:
                    with self._state_lock:
                        self._current[worker_id] = state
                    return state
            stuck = any(
                s.ref not in self.dead_letter
                and not self.ranking.is_refined(s)
                for s in states
            )
        if not stuck:
            return None
        self._failure = ConcurrencyError(
            "every candidate the tuning policy offers is quarantined "
            f"(dead letter: {[str(r) for r in self.dead_letter]})"
        )
        return None

    def supervisor_summary(self) -> dict[str, object]:
        """JSON-ready account of supervision activity."""
        with self._state_lock:
            return {
                "restarts": self.restarts_total,
                "rebuilds": self.rebuilds_total,
                "dead_letter": [
                    f"{ref.table}.{ref.column}" for ref in self.dead_letter
                ],
                "crashes_per_column": {
                    f"{ref.table}.{ref.column}": count
                    for ref, count in sorted(
                        self._crashes.items(), key=lambda kv: str(kv[0])
                    )
                },
                "log": list(self.crash_log),
            }

    def _perform_one(self, worker_id: int) -> None:
        stats = self.stats[worker_id]
        state = self._choose_state(worker_id)
        if state is None:
            with self._window_lock:
                self._window.exhausted = True
            return
        access = self.register_index(state.ref, state.index)
        stalls_before = self.tape.stall_count(worker_id)
        with self.tape.attribution(worker_id):
            effective = self._perform_action(worker_id, state, access)
        stats.actions_attempted += 1
        stats.stalls += self.tape.stall_count(worker_id) - stalls_before
        if effective:
            stats.actions_effective += 1
            with self._policy_lock:
                self.ranking.note_tuning_action(state.ref)
        with self._window_lock:
            window = self._window
            window.attempted += 1
            if effective:
                window.effective += 1
                window.per_column[state.ref] = (
                    window.per_column.get(state.ref, 0) + 1
                )
                window.per_worker[worker_id] = (
                    window.per_worker.get(worker_id, 0) + 1
                )
        with self._state_lock:
            self._current[worker_id] = None

    def _perform_action(
        self,
        worker_id: int,
        state: ColumnTuningState,
        access: LatchedCrackerAccess,
    ) -> bool:
        """One auxiliary action under the appropriate latches."""
        faults.trip("workers.perform")
        return self._tuners[worker_id].perform_latched(access)

    def worker_stats(self) -> list[WorkerStats]:
        """Per-worker lifetime statistics, by worker id."""
        return [self.stats[i] for i in range(self.num_workers)]
