"""The idle-time scheduler: continuous tuning made concrete.

Given an idle window -- expressed either as a number of refinement
actions (the paper's Exp1 formulation: *"we assume as idle time the
time needed to apply X random index refinement actions"*) or as a time
budget in seconds -- the scheduler repeatedly asks the policy for a
column and the tuner for an action, until the window closes or every
candidate is refined to the cache target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.holistic.policies import TuningPolicy
from repro.holistic.ranking import ColumnRanking
from repro.holistic.tuner import AuxiliaryTuner
from repro.simtime.clock import Clock
from repro.storage.catalog import ColumnRef

#: Synthetic ref under which checkpoint actions are reported, so idle
#: windows account for durability work next to per-column refinement.
CHECKPOINT_REF = ColumnRef("__system__", "checkpoint")


@dataclass(slots=True)
class TuningReport:
    """What one idle window achieved.

    The last four fields are only populated by the parallel worker
    pool (:mod:`repro.holistic.workers`); serial windows leave them at
    their zero defaults, keeping serial reports identical to the
    single-threaded kernel's.
    """

    actions_attempted: int = 0
    actions_effective: int = 0
    consumed_s: float = 0.0
    per_column: dict[ColumnRef, int] = field(default_factory=dict)
    stop_reason: str = ""
    per_worker: dict[int, int] = field(default_factory=dict)
    stalls: int = 0
    busy_s: float = 0.0
    workers: int = 0

    def merge(self, other: "TuningReport") -> None:
        self.actions_attempted += other.actions_attempted
        self.actions_effective += other.actions_effective
        self.consumed_s += other.consumed_s
        for ref, count in other.per_column.items():
            self.per_column[ref] = self.per_column.get(ref, 0) + count
        # Keep the first non-empty stop reason: merging a report that
        # never set one (a zero-action window, a partial worker report)
        # must not erase the reason already recorded.
        if not self.stop_reason:
            self.stop_reason = other.stop_reason
        for worker, count in other.per_worker.items():
            self.per_worker[worker] = self.per_worker.get(worker, 0) + count
        self.stalls += other.stalls
        self.busy_s += other.busy_s
        self.workers = max(self.workers, other.workers)


class IdleScheduler:
    """Drives auxiliary tuning through idle windows."""

    def __init__(
        self,
        clock: Clock,
        ranking: ColumnRanking,
        policy: TuningPolicy,
        tuner: AuxiliaryTuner,
    ) -> None:
        self.clock = clock
        self.ranking = ranking
        self.policy = policy
        self.tuner = tuner
        self.lifetime = TuningReport()
        # Optional durability hook (repro.persist): when set, idle
        # cycles may be spent writing an incremental checkpoint instead
        # of a crack.  Serial windows only -- the parallel worker pool
        # never checkpoints, so snapshot writes see settled state.
        self.checkpointer = None

    def run_actions(self, actions: int) -> TuningReport:
        """Perform up to ``actions`` refinement actions.

        Raises:
            ConfigError: if ``actions`` is negative.
        """
        if actions < 0:
            raise ConfigError(f"actions must be >= 0, got {actions}")
        report = TuningReport()
        start = self.clock.now()
        for _ in range(actions):
            if not self._step(report):
                report.stop_reason = "all candidates refined"
                break
        else:
            report.stop_reason = "action budget exhausted"
        report.consumed_s = self.clock.now() - start
        self.lifetime.merge(report)
        return report

    def run_budget(self, budget_s: float) -> TuningReport:
        """Perform refinement actions until ``budget_s`` is used up.

        The budget check happens *between* actions: the last action may
        slightly overshoot, as a real kernel would only notice the
        window closing after finishing its current crack.

        Raises:
            ConfigError: if ``budget_s`` is negative.
        """
        if budget_s < 0:
            raise ConfigError(f"budget must be >= 0, got {budget_s}")
        report = TuningReport()
        start = self.clock.now()
        while self.clock.now() - start < budget_s:
            if not self._step(report):
                report.stop_reason = "all candidates refined"
                break
        else:
            report.stop_reason = "time budget exhausted"
        report.consumed_s = self.clock.now() - start
        self.lifetime.merge(report)
        return report

    def run_actions_batched(self, actions: int) -> TuningReport:
        """Perform ``actions`` refinements, batched per column.

        The action budget is split evenly over the unrefined
        candidates and each column receives its share as one
        multi-pivot crack pass -- cheaper than the same number of
        sequential cracks (paper §3, "in one go").

        Raises:
            ConfigError: if ``actions`` is negative.
        """
        if actions < 0:
            raise ConfigError(f"actions must be >= 0, got {actions}")
        report = TuningReport()
        start = self.clock.now()
        candidates = self.ranking.unrefined_states()
        if not candidates or actions == 0:
            report.stop_reason = (
                "all candidates refined" if not candidates else
                "action budget exhausted"
            )
            report.consumed_s = self.clock.now() - start
            self.lifetime.merge(report)
            return report
        share = actions // len(candidates)
        remainder = actions % len(candidates)
        for i, state in enumerate(candidates):
            quota = share + (1 if i < remainder else 0)
            if quota == 0:
                continue
            report.actions_attempted += quota
            effective = self.tuner.perform_batch(state.index, quota)
            if effective:
                report.actions_effective += effective
                self.ranking.note_tuning_action(state.ref)
                report.per_column[state.ref] = (
                    report.per_column.get(state.ref, 0) + effective
                )
        report.stop_reason = "action budget exhausted"
        report.consumed_s = self.clock.now() - start
        self.lifetime.merge(report)
        return report

    def _step(self, report: TuningReport) -> bool:
        """One policy choice + one action; False when nothing is left."""
        checkpointer = self.checkpointer
        if checkpointer is not None and checkpointer.due(self.ranking):
            if checkpointer.perform(self.clock):
                report.actions_attempted += 1
                report.actions_effective += 1
                report.per_column[CHECKPOINT_REF] = (
                    report.per_column.get(CHECKPOINT_REF, 0) + 1
                )
                return True
        state = self.policy.choose(self.ranking)
        if state is None:
            return False
        report.actions_attempted += 1
        if self.tuner.perform(state.index):
            report.actions_effective += 1
            self.ranking.note_tuning_action(state.ref)
            report.per_column[state.ref] = (
                report.per_column.get(state.ref, 0) + 1
            )
        return True
