"""Tuning economics: pricing and valuing auxiliary refinement actions.

Answers the planner-side questions of the holistic kernel:

* *what would one more crack on column C cost right now?* -- a random
  value lands in a piece of expected size ``avg_piece``, so the action
  costs roughly ``crack(avg_piece)``;
* *what is it worth?* -- the expected per-query saving times the
  column's query frequency;
* *what fits into this idle window?* -- a greedy plan of affordable
  actions ordered by the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.holistic.ranking import ColumnRanking, ColumnTuningState
from repro.simtime.model import CostModel


@dataclass(frozen=True, slots=True)
class PlannedAction:
    """One affordable tuning action with its economics."""

    state: ColumnTuningState
    estimated_cost_s: float
    estimated_benefit_s: float


class TuningCostModel:
    """Estimates cost/benefit of auxiliary cracks (paper §3, Modeling)."""

    def __init__(self, model: CostModel, ranking: ColumnRanking) -> None:
        self.model = model
        self.ranking = ranking

    def action_cost_s(self, state: ColumnTuningState) -> float:
        """Expected seconds for one random crack on this column now."""
        avg = max(1.0, state.average_piece_size())
        return self.model.crack_seconds(int(avg))

    def per_query_saving_s(self, state: ColumnTuningState) -> float:
        """Expected response-time saving per future query on the column.

        A query's crack work is proportional to the piece size its
        bounds land in; halving the average piece size via one more
        crack saves about half of that work, i.e. ``crack(avg) / 2``.
        Zero once the column is cache-refined.
        """
        if self.ranking.is_refined(state):
            return 0.0
        return self.action_cost_s(state) / 2.0

    def action_benefit_s(
        self, state: ColumnTuningState, horizon_queries: int = 100
    ) -> float:
        """Expected saving over a horizon of future queries."""
        weight = state.queries_seen + state.workload_weight
        total_weight = sum(
            s.queries_seen + s.workload_weight
            for s in self.ranking.states()
        )
        if total_weight <= 0:
            return 0.0
        expected_queries = horizon_queries * (weight / total_weight)
        return expected_queries * self.per_query_saving_s(state)

    def plan_window(
        self, budget_s: float, horizon_queries: int = 100
    ) -> list[PlannedAction]:
        """Greedy plan of actions fitting an idle window of ``budget_s``.

        Repeatedly takes the ranking's best column while its estimated
        action cost fits the remaining budget.  Piece sizes are
        *estimated* to halve per action when projecting, so the plan is
        advisory -- the scheduler re-checks the real clock as it runs.
        """
        plan: list[PlannedAction] = []
        remaining = budget_s
        # Work on a copy of (state, projected avg piece) pairs.
        projections = {
            state.ref: state.average_piece_size()
            for state in self.ranking.states()
        }
        guard = 0
        while remaining > 0 and guard < 100_000:
            guard += 1
            best_state: ColumnTuningState | None = None
            best_score = 0.0
            for state in self.ranking.states():
                projected = projections[state.ref]
                if projected <= self.ranking.cache_target_elements:
                    continue
                score = (
                    state.queries_seen + state.workload_weight
                ) * projected
                if score > best_score:
                    best_score = score
                    best_state = state
            if best_state is None:
                break
            projected = projections[best_state.ref]
            cost = self.model.crack_seconds(int(max(1.0, projected)))
            if cost > remaining:
                break
            plan.append(
                PlannedAction(
                    state=best_state,
                    estimated_cost_s=cost,
                    estimated_benefit_s=self.action_benefit_s(
                        best_state, horizon_queries
                    ),
                )
            )
            remaining -= cost
            projections[best_state.ref] = projected / 2.0
        return plan
