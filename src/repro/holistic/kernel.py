"""The holistic indexing kernel -- the paper's contribution.

One strategy that unifies the three predecessors:

* **adaptive**: selects crack the touched column, as in database
  cracking (queries are hints on how to store the data);
* **online**: a continuous monitor records every query; statistics
  feed a continuously-maintained ranking of candidate columns;
* **offline**: idle windows -- a-priori or between query bursts -- are
  spent on auxiliary refinement actions spread over the candidate
  columns by a policy, instead of all-or-nothing full builds.

Plus the two special cases of §3: with **no knowledge**, the catalog
bootstraps the candidate set; with **no idle time**, hot columns get
extra random cracks injected during query processing itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cracking.index import CrackerIndex
from repro.cracking.tape import CrackTape
from repro.engine.plan import AccessPath
from repro.engine.query import RangeQuery
from repro.engine.plan import ColumnWindow
from repro.engine.strategies import (
    BatchExecution,
    CrackerBatchExecution,
    IdleOutcome,
    IndexingStrategy,
    StrategyFeatures,
)
from repro.errors import ConfigError
from repro.holistic.cost_model import TuningCostModel
from repro.holistic.policies import TuningPolicy, make_policy
from repro.holistic.ranking import ColumnRanking
from repro.holistic.scheduler import IdleScheduler, TuningReport
from repro.holistic.tuner import ActionKind, AuxiliaryTuner
from repro.offline.whatif import WorkloadStatement
from repro.online.monitor import WorkloadMonitor
from repro.storage.catalog import ColumnRef
from repro.storage.database import Database
from repro.storage.views import SelectionResult


@dataclass(slots=True)
class HolisticConfig:
    """Tuning knobs of the holistic kernel.

    Attributes:
        policy: resource-spreading policy (``round_robin``, ``ranked``,
            ``weighted_random``).
        action: auxiliary action kind (``random_crack``,
            ``crack_largest``, ``sort_smallest_unsorted``).
        cache_target_elements: explicit cache-fit piece size in rows;
            ``None`` derives it from the cost model (cache bytes /
            element bytes, de-projected by the model's scale so reduced
            runs behave like paper-scale runs).
        hot_column_threshold: queries on a column before the no-idle
            boost kicks in; ``0`` disables the boost.
        hot_boost_cracks: extra random cracks injected per boosted
            query.
        bootstrap_from_catalog: with no hints and no observed queries,
            spread tuning over every column in the catalog (the
            "no knowledge" case).
        batch_tuning: apply each idle window's actions as per-column
            multi-pivot crack passes instead of one-at-a-time cracks
            (the paper's "multiple tuning actions in one go"); ignored
            when parallel workers drain the window (each worker is its
            own "batch").
        seed: seed for the tuner's random generator.
        num_workers: parallel tuning workers draining idle windows
            (the paper's idle-core claim).  ``0`` -- the default --
            keeps the serial scheduler and reproduces pre-worker
            behaviour bit-for-bit; ``>= 1`` routes idle windows
            through a :class:`repro.holistic.workers.TuningWorkerPool`
            with piece-level latching.
        latch_granularity: rows per piece-latch bucket when workers
            are enabled (1 = one latch per piece).
    """

    policy: str = "round_robin"
    action: str = "random_crack"
    cache_target_elements: int | None = None
    hot_column_threshold: int = 0
    hot_boost_cracks: int = 1
    bootstrap_from_catalog: bool = True
    batch_tuning: bool = False
    seed: int | None = 42
    num_workers: int = 0
    latch_granularity: int = 1

    def __post_init__(self) -> None:
        if self.hot_column_threshold < 0:
            raise ConfigError(
                "hot_column_threshold must be >= 0, got "
                f"{self.hot_column_threshold}"
            )
        if self.hot_boost_cracks < 0:
            raise ConfigError(
                f"hot_boost_cracks must be >= 0: {self.hot_boost_cracks}"
            )
        if self.num_workers < 0:
            raise ConfigError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.latch_granularity < 1:
            raise ConfigError(
                "latch_granularity must be >= 1, got "
                f"{self.latch_granularity}"
            )


class HolisticKernel(IndexingStrategy):
    """Offline, online and adaptive indexing in the same kernel."""

    name = "holistic"

    def __init__(
        self, db: Database, config: HolisticConfig | None = None
    ) -> None:
        super().__init__(db)
        self.config = config if config is not None else HolisticConfig()
        model = db.cost_model
        if self.config.cache_target_elements is not None:
            target = self.config.cache_target_elements
        else:
            target = max(
                1, int(model.constants.cache_elements() / model.scale)
            )
        self.cache_target_elements = target
        self.monitor = WorkloadMonitor(db.catalog)
        self.ranking = ColumnRanking(target)
        self.policy: TuningPolicy = make_policy(
            self.config.policy, seed=self.config.seed
        )
        self.tuner = AuxiliaryTuner(
            kind=ActionKind(self.config.action),
            seed=self.config.seed,
            min_piece_size=target,
        )
        self.scheduler = IdleScheduler(
            self.clock, self.ranking, self.policy, self.tuner
        )
        self.tuning_model = TuningCostModel(model, self.ranking)
        self.tape = CrackTape()
        self.indexes: dict[ColumnRef, CrackerIndex] = {}
        self._hints: list[WorkloadStatement] = []
        self.idle_windows = 0
        self.boost_cracks_applied = 0
        if self.config.num_workers > 0:
            from repro.holistic.workers import TuningWorkerPool

            self.worker_pool: TuningWorkerPool | None = TuningWorkerPool(
                clock=self.clock,
                tape=self.tape,
                ranking=self.ranking,
                policy=self.policy,
                num_workers=self.config.num_workers,
                latch_granularity=self.config.latch_granularity,
                action=ActionKind(self.config.action),
                min_piece_size=target,
                seed=self.config.seed,
            )
        else:
            self.worker_pool = None

    # -- index management ---------------------------------------------------

    def index_for(self, ref: ColumnRef) -> CrackerIndex:
        """Get or lazily create the cracker index on ``ref``."""
        index = self.indexes.get(ref)
        if index is None:
            column = self.db.catalog.column(ref)
            index = CrackerIndex(column, clock=self.clock, tape=self.tape)
            self.indexes[ref] = index
            self.ranking.register(ref, index)
            if self.worker_pool is not None:
                self.worker_pool.register_index(ref, index)
        return index

    def _candidate_refs(self) -> list[ColumnRef]:
        """Columns worth tuning, by decreasing knowledge quality.

        Preference order implements §3: explicit workload hints, then
        monitored activity, then -- the "no knowledge" case -- the
        whole catalog.
        """
        if self._hints:
            seen: dict[ColumnRef, None] = {}
            for statement in self._hints:
                seen.setdefault(statement.ref, None)
            return list(seen)
        observed = self.monitor.observed_columns()
        if observed:
            return observed
        if self.config.bootstrap_from_catalog:
            return [entry.ref for entry in self.db.catalog.entries()]
        return []

    def _register_candidates(self) -> None:
        for ref in self._candidate_refs():
            self.index_for(ref)
        if self._hints:
            weights: dict[ColumnRef, float] = {}
            for statement in self._hints:
                weights[statement.ref] = (
                    weights.get(statement.ref, 0.0) + statement.weight
                )
            for ref, weight in weights.items():
                self.ranking.register(ref, self.index_for(ref), weight)

    # -- the strategy interface ----------------------------------------------

    def hint_workload(self, statements: list[WorkloadStatement]) -> None:
        self._hints = list(statements)

    def select(self, query: RangeQuery) -> SelectionResult:
        self.monitor.record(
            query.ref, query.low, query.high, self.clock.now()
        )
        index = self.index_for(query.ref)
        if self.worker_pool is not None and self.worker_pool.is_running:
            # Workers are racing us: take piece latches for the pieces
            # this select may crack, exactly like the workers do.
            access = self.worker_pool.register_index(query.ref, index)
            result = access.select_range(query.low, query.high)
        else:
            result = index.select_range(query.low, query.high)
        self.ranking.note_query(query.ref)
        self._maybe_boost_hot_range(query, index)
        return result

    def begin_batch(
        self,
        queries: Sequence[RangeQuery],
        windows: list[ColumnWindow],
    ) -> BatchExecution | None:
        """Shared cracking per column plus deferred bookkeeping.

        Ineligible -- falling back to sequential execution -- when
        tuning workers are racing foreground queries (selects must go
        through piece latches) or the no-idle hot boost is active
        (boost cracks mid-window change what later queries see, so
        their order must stay sequential).
        """
        if self.worker_pool is not None and self.worker_pool.is_running:
            return None
        if (
            self.config.hot_column_threshold > 0
            and self.config.hot_boost_cracks > 0
        ):
            return None
        return _HolisticBatchExecution(self, queries, windows)

    def _maybe_boost_hot_range(
        self, query: RangeQuery, index: CrackerIndex
    ) -> None:
        """The "no idle time" path: extra cracks on hot ranges."""
        threshold = self.config.hot_column_threshold
        if threshold <= 0 or self.config.hot_boost_cracks <= 0:
            return
        if not self.monitor.is_column_hot(query.ref, threshold):
            return
        if index.average_piece_size() <= self.cache_target_elements:
            return
        hot_ranges = self.monitor.hot_ranges(query.ref, threshold)
        target = None
        for low, high, _count in hot_ranges:
            if low < query.high and query.low < high:
                target = (low, high)
                break
        if target is None:
            return
        access = None
        if self.worker_pool is not None and self.worker_pool.is_running:
            access = self.worker_pool.register_index(query.ref, index)
        for _ in range(self.config.hot_boost_cracks):
            if self.tuner.crack_in_hot_range(index, *target, access=access):
                self.boost_cracks_applied += 1

    def exploit_idle(
        self,
        budget_s: float | None = None,
        actions: int | None = None,
    ) -> IdleOutcome:
        """Spend an idle window on auxiliary refinements.

        Raises:
            ConfigError: if neither a budget nor an action count is
                given.
        """
        if budget_s is None and actions is None:
            raise ConfigError(
                "idle window needs a time budget or an action count"
            )
        self._register_candidates()
        self.idle_windows += 1
        if self.worker_pool is not None:
            report = self.worker_pool.run_window(
                actions=actions, budget_s=budget_s
            )
            self.scheduler.lifetime.merge(report)
            note = (
                f"{report.actions_effective}/{report.actions_attempted} "
                f"auxiliary actions on {report.workers} workers, "
                f"{report.stalls} stalls ({report.stop_reason})"
            )
        elif actions is not None:
            if self.config.batch_tuning:
                report = self.scheduler.run_actions_batched(actions)
            else:
                report = self.scheduler.run_actions(actions)
            note = (
                f"{report.actions_effective}/{report.actions_attempted} "
                f"auxiliary actions ({report.stop_reason})"
            )
        else:
            report = self.scheduler.run_budget(budget_s)
            note = (
                f"{report.actions_effective}/{report.actions_attempted} "
                f"auxiliary actions ({report.stop_reason})"
            )
        return IdleOutcome(
            consumed_s=report.consumed_s,
            actions_done=report.actions_effective,
            blocking=False,
            note=note,
        )

    def access_path(self, query: RangeQuery) -> AccessPath:
        return AccessPath.CRACKER

    def features(self) -> StrategyFeatures:
        return StrategyFeatures(
            name=self.name,
            statistical_analysis=True,
            idle_a_priori=True,
            idle_during_workload=True,
            incremental_indexing=True,
            workload="dynamic",
        )

    # -- durability -----------------------------------------------------------

    def attach_checkpointer(self, checkpointer) -> None:
        """Let idle windows spend cycles on durability.

        ``checkpointer`` (see
        :class:`repro.persist.manager.IncrementalCheckpointer`) becomes
        a rankable auxiliary action: the serial scheduler consults it
        before every policy choice and, when a checkpoint is due, one
        idle action is spent writing an incremental snapshot
        generation instead of a crack.  Pass ``None`` to detach.
        """
        self.scheduler.checkpointer = checkpointer

    # -- worker lifecycle -----------------------------------------------------

    def _require_pool(self):
        if self.worker_pool is None:
            raise ConfigError(
                "kernel has no worker pool; configure num_workers >= 1"
            )
        return self.worker_pool

    def start_workers(self) -> None:
        """Start the tuning workers so they race foreground queries.

        While running, foreground selects and idle windows go through
        piece latches; tuning actions submitted with
        :meth:`submit_tuning` drain in the background.

        Raises:
            ConfigError: if the kernel was configured without workers.
        """
        self._require_pool().start()

    def submit_tuning(self, actions: int) -> None:
        """Queue ``actions`` auxiliary refinements on running workers.

        Raises:
            ConfigError: without a running worker pool.
        """
        self._register_candidates()
        self._require_pool().submit(actions)

    def drain_workers(self) -> None:
        """Block until all queued tuning actions are done.

        Raises:
            ConfigError: if the kernel was configured without workers.
        """
        self._require_pool().drain()

    def stop_workers(self) -> None:
        """Drain, stop the workers and fold their time into the clock.

        Raises:
            ConfigError: if the kernel was configured without workers.
        """
        self._require_pool().stop()

    # -- introspection ---------------------------------------------------------

    def tuning_summary(self) -> TuningReport:
        """Lifetime tuning statistics across all idle windows."""
        return self.scheduler.lifetime


class _HolisticBatchExecution:
    """Window execution for the kernel: shared cracks, deferred stats.

    The crack replay is the shared :class:`CrackerBatchExecution`; the
    kernel's continuous statistics -- monitor observations and ranking
    query counts -- are collected with their exact sequential
    timestamps during the replay and applied in one vectorized
    :meth:`WorkloadMonitor.note_many` / :meth:`ColumnRanking.note_queries`
    pass per column at window end.  Nothing reads them mid-window
    (the hot boost, the only mid-query reader, disables batching), so
    the deferred state is indistinguishable from sequential updates.
    """

    __slots__ = (
        "_kernel",
        "_windows",
        "_cracks",
        "_dispatch",
        "_timestamps",
        "_acc",
    )

    def __init__(
        self,
        kernel: HolisticKernel,
        queries: Sequence[RangeQuery],
        windows: list[ColumnWindow],
    ) -> None:
        self._kernel = kernel
        self._windows = windows
        cracks = CrackerBatchExecution(
            (kernel.index_for(window.ref) for window in windows),
            queries,
            windows,
        )
        # Fuse the timestamp capture with the crack replay: per slot,
        # (post-overhead crack replay, this column's timestamp
        # appender).  The wrapper charges the per-query overhead
        # itself, *before* the timestamp -- the sequential order
        # (session charges, then the kernel records the observation).
        self._dispatch: list = [None] * len(queries)
        self._timestamps: list[list[float]] = []
        for window, context in zip(windows, cracks._contexts):
            timestamps: list[float] = []
            self._timestamps.append(timestamps)
            note_timestamp = timestamps.append
            for i in window.indices:
                self._dispatch[i] = (context.replay, note_timestamp)
        self._cracks = cracks
        self._acc = None

    def bind(self, accountant) -> None:
        self._acc = accountant
        self._cracks.bind(accountant)

    def replay(self, slot: int, query: RangeQuery) -> SelectionResult:
        acc = self._acc
        acc.charge_query()
        crack_replay, note_timestamp = self._dispatch[slot]
        note_timestamp(acc.now)
        return crack_replay(query.low, query.high)

    def finish(self) -> None:
        kernel = self._kernel
        for window, timestamps in zip(self._windows, self._timestamps):
            kernel.monitor.note_many(
                window.ref, window.lows, window.highs, timestamps
            )
            kernel.ranking.note_queries(window.ref, len(timestamps))
