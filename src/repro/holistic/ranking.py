"""The continuous ranking scheme of holistic indexing.

Paper §3 ("Modeling"): *"if we detect a couple of idle milliseconds,
on which column should we apply a random crack action?"*.  The answer
combines two continuously-maintained signals:

* how far each cracker index is from its optimum -- once pieces fit in
  the CPU cache, extra refinement stops paying off, so the distance is
  a function of the average piece size vs. the cache target;
* how relevant the column is to the workload -- its observed query
  frequency (with a bootstrap weight so never-queried columns still
  rank when knowledge says they matter).

The ranking is updated in O(1) per query and per crack; reading the
best column is O(columns), which is tiny next to any crack action.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cracking.index import CrackerIndex
from repro.errors import ConfigError
from repro.storage.catalog import ColumnRef


@dataclass(slots=True)
class ColumnTuningState:
    """Everything the ranking knows about one candidate column."""

    ref: ColumnRef
    index: CrackerIndex
    queries_seen: int = 0
    tuning_actions: int = 0
    workload_weight: float = 1.0

    def average_piece_size(self) -> float:
        return self.index.average_piece_size()


class ColumnRanking:
    """Orders candidate columns by expected benefit of one more crack.

    Args:
        cache_target_elements: piece size (rows) below which further
            refinement is considered useless (the cache-fit criterion).
    """

    def __init__(self, cache_target_elements: int) -> None:
        if cache_target_elements < 1:
            raise ConfigError(
                "cache_target_elements must be >= 1, got "
                f"{cache_target_elements}"
            )
        self.cache_target_elements = cache_target_elements
        self._states: dict[ColumnRef, ColumnTuningState] = {}

    # -- registration ----------------------------------------------------

    def register(
        self,
        ref: ColumnRef,
        index: CrackerIndex,
        workload_weight: float = 1.0,
    ) -> ColumnTuningState:
        """Track ``ref``; idempotent (weight updates on re-register)."""
        state = self._states.get(ref)
        if state is None:
            state = ColumnTuningState(
                ref=ref, index=index, workload_weight=workload_weight
            )
            self._states[ref] = state
        else:
            state.workload_weight = workload_weight
        return state

    def state(self, ref: ColumnRef) -> ColumnTuningState | None:
        return self._states.get(ref)

    def states(self) -> list[ColumnTuningState]:
        return list(self._states.values())

    def __contains__(self, ref: ColumnRef) -> bool:
        return ref in self._states

    def __len__(self) -> int:
        return len(self._states)

    # -- signal updates ----------------------------------------------------

    def note_query(self, ref: ColumnRef) -> None:
        state = self._states.get(ref)
        if state is not None:
            state.queries_seen += 1

    def note_queries(self, ref: ColumnRef, count: int) -> None:
        """Record ``count`` queries on ``ref`` in one step.

        The batched form of :meth:`note_query` used by windowed
        execution: one bookkeeping update per column per window.
        """
        state = self._states.get(ref)
        if state is not None:
            state.queries_seen += count

    def note_tuning_action(self, ref: ColumnRef) -> None:
        state = self._states.get(ref)
        if state is not None:
            state.tuning_actions += 1

    # -- ranking -----------------------------------------------------------

    def is_refined(self, state: ColumnTuningState) -> bool:
        """Whether the column has reached the cache-fit optimum."""
        return state.average_piece_size() <= self.cache_target_elements

    def score(self, state: ColumnTuningState) -> float:
        """Expected-benefit score; 0 when already cache-refined.

        ``(queries + weight) * avg_piece_size``: hot and coarsely
        partitioned columns first.  The piece-size factor makes the
        score decay automatically as a column is refined, so tuning
        resources spread without explicit round-robin bookkeeping.
        """
        avg = state.average_piece_size()
        if avg <= self.cache_target_elements:
            return 0.0
        frequency_weight = state.queries_seen + state.workload_weight
        return frequency_weight * avg

    def ranked(self) -> list[tuple[ColumnTuningState, float]]:
        """All candidates with positive score, best first.

        Vectorized (ISSUE 4): the per-column signals are gathered into
        numpy score arrays and ranked with one ``argsort`` instead of
        a Python tuple sort -- one re-rank per idle decision stays
        cheap even with thousands of candidate columns.  Scores and
        tie order match the scalar :meth:`score` path exactly.
        """
        states = list(self._states.values())
        if not states:
            return []
        count = len(states)
        averages = np.fromiter(
            (state.average_piece_size() for state in states),
            dtype=np.float64,
            count=count,
        )
        frequency = np.fromiter(
            (
                state.queries_seen + state.workload_weight
                for state in states
            ),
            dtype=np.float64,
            count=count,
        )
        scores = np.where(
            averages <= self.cache_target_elements,
            0.0,
            frequency * averages,
        )
        # Stable descending sort keeps registration order among ties,
        # like the Python sort it replaces.
        order = np.argsort(-scores, kind="stable")
        return [
            (states[i], float(scores[i]))
            for i in order
            if scores[i] > 0
        ]

    def best(self) -> ColumnTuningState | None:
        """The most deserving column, or None when all are refined."""
        ranked = self.ranked()
        return ranked[0][0] if ranked else None

    def unrefined_states(self) -> list[ColumnTuningState]:
        """Candidates still short of the cache-fit optimum, in
        registration order."""
        return [
            state
            for state in self._states.values()
            if not self.is_refined(state)
        ]

    def refined_count(self) -> int:
        """How many candidates reached the cache-fit optimum."""
        return sum(1 for s in self._states.values() if self.is_refined(s))

    # -- persistence -------------------------------------------------------

    def export_state(self) -> dict:
        """Per-column counters and weights (snapshot serialization).

        Index objects are not serialized here -- the snapshot layer
        restores them separately and re-registers, then folds these
        counters back in with :meth:`restore_state`.
        """
        return {
            "columns": [
                {
                    "table": state.ref.table,
                    "column": state.ref.column,
                    "queries_seen": state.queries_seen,
                    "tuning_actions": state.tuning_actions,
                    "workload_weight": state.workload_weight,
                }
                for state in self._states.values()
            ]
        }

    def restore_state(self, state: dict) -> None:
        """Fold exported counters into already-registered candidates.

        Columns in the snapshot that are not registered yet are
        skipped -- registration is driven by the restored index set,
        which is the authoritative candidate list.
        """
        for entry in state["columns"]:
            ref = ColumnRef(entry["table"], entry["column"])
            tracked = self._states.get(ref)
            if tracked is None:
                continue
            tracked.queries_seen = int(entry["queries_seen"])
            tracked.tuning_actions = int(entry["tuning_actions"])
            tracked.workload_weight = float(entry["workload_weight"])
