"""Auxiliary tuning actions: the unit of idle-time refinement.

The paper's proof-of-concept uses *random cracking actions*; the
research-space discussion also suggests data-driven variants.  The
tuner performs exactly one action per call so the scheduler can check
the idle budget between actions.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin
from repro.errors import ConfigError


class ActionKind(Enum):
    """Available auxiliary refinement actions."""

    RANDOM_CRACK = "random_crack"
    CRACK_LARGEST = "crack_largest"
    SORT_SMALLEST_UNSORTED = "sort_smallest_unsorted"


class AuxiliaryTuner:
    """Performs single refinement actions on cracker indexes.

    Args:
        kind: the default action type.
        seed: seed for the tuner's random generator.
        min_piece_size: pieces at/below this size are left alone
            (the cache-fit stopping criterion, in rows).
    """

    def __init__(
        self,
        kind: ActionKind = ActionKind.RANDOM_CRACK,
        seed: int | None = None,
        min_piece_size: int = 2,
    ) -> None:
        if min_piece_size < 1:
            raise ConfigError(
                f"min_piece_size must be >= 1: {min_piece_size}"
            )
        self.kind = kind
        self.rng = np.random.default_rng(seed)
        self.min_piece_size = min_piece_size
        self.actions_performed = 0
        self.actions_degenerate = 0

    def perform(
        self, index: CrackerIndex, kind: ActionKind | None = None
    ) -> bool:
        """Run one action on ``index``; True if it refined anything."""
        kind = kind if kind is not None else self.kind
        if kind is ActionKind.RANDOM_CRACK:
            outcome = index.random_crack(
                self.rng,
                origin=CrackOrigin.TUNING,
                min_piece_size=self.min_piece_size,
            )
            success = outcome is not None
        elif kind is ActionKind.CRACK_LARGEST:
            outcome = index.crack_largest_piece(
                self.rng,
                origin=CrackOrigin.TUNING,
                min_piece_size=self.min_piece_size,
            )
            success = outcome is not None
        elif kind is ActionKind.SORT_SMALLEST_UNSORTED:
            success = self._sort_smallest_unsorted(index)
        else:  # pragma: no cover - exhaustive enum
            raise ConfigError(f"unknown action kind: {kind}")
        if success:
            self.actions_performed += 1
        else:
            self.actions_degenerate += 1
        return success

    def perform_latched(self, access, kind: ActionKind | None = None) -> bool:
        """Run one action through a latched access facade.

        The worker-thread counterpart of :meth:`perform`: random
        cracks latch only the target piece
        (:meth:`LatchedCrackerAccess.crack_value`); data-driven kinds
        scan the whole piece map, so they take the table-level latch.
        Counters update exactly as in the serial path.
        """
        kind = kind if kind is not None else self.kind
        if kind is ActionKind.RANDOM_CRACK:
            index = access.index
            success = False
            stats = index.column.stats
            if index.row_count > 0 and stats.value_span > 0:
                value = float(
                    self.rng.uniform(stats.min_value, stats.max_value)
                )
                success = access.crack_value(
                    value, min_piece_size=self.min_piece_size
                )
            if success:
                self.actions_performed += 1
            else:
                self.actions_degenerate += 1
            return success
        with access.exclusive() as stalled:
            if stalled:
                access.index.tape.note_stall()
            return self.perform(access.index, kind)

    def perform_batch(self, index: CrackerIndex, count: int) -> int:
        """Apply ``count`` random cracks to ``index`` in one go.

        Draws ``count`` random pivot values and hands them to
        :meth:`CrackerIndex.ensure_cuts`, which partitions each
        touched piece once regardless of how many pivots land in it --
        the paper's "multiple tuning actions in one go".  Returns how
        many pivots were genuinely new.
        """
        if count <= 0 or index.row_count == 0:
            return 0
        stats = index.column.stats
        if stats.value_span <= 0:
            return 0
        values = [
            float(v)
            for v in self.rng.uniform(
                stats.min_value, stats.max_value, size=count
            )
        ]
        before = index.crack_count
        index.ensure_cuts(values, CrackOrigin.TUNING)
        effective = index.crack_count - before
        self.actions_performed += effective
        self.actions_degenerate += count - effective
        return effective

    def crack_in_hot_range(
        self,
        index: CrackerIndex,
        low: float,
        high: float,
        access=None,
    ) -> bool:
        """One random crack confined to a hot value range.

        Implements the paper's "no idle time" boost: when a column and
        value range are hot, extra cracks are injected there during
        query processing.  With ``access`` (a
        :class:`~repro.cracking.concurrency.LatchedCrackerAccess`)
        the crack goes through piece latches, for kernels whose tuning
        workers are racing the foreground.
        """
        if high <= low:
            return False
        value = float(self.rng.uniform(low, high))
        if access is not None:
            success = access.crack_value(
                value, min_piece_size=self.min_piece_size
            )
            if success:
                self.actions_performed += 1
            else:
                self.actions_degenerate += 1
            return success
        if index.piece_map.has_pivot(value):
            self.actions_degenerate += 1
            return False
        piece = index.piece_map.piece_for_value(value)
        if piece.size <= self.min_piece_size:
            self.actions_degenerate += 1
            return False
        index.ensure_cut(value, CrackOrigin.TUNING)
        self.actions_performed += 1
        return True

    def _sort_smallest_unsorted(self, index: CrackerIndex) -> bool:
        """Finish off the smallest unsorted piece by sorting it."""
        best_index = index.piece_map.smallest_unsorted_index(min_size=2)
        if best_index is None:
            return False
        index.sort_piece_at(best_index)
        return True
