"""Calibrated cost constants for the paper's testbed.

The paper (Section 4) ran on a 3.40 GHz Intel i7-2600 with 16 GB RAM,
inside the MonetDB kernel, over columns of 10^8 uniformly distributed
integers, answering 10^4 range queries of 1% selectivity.  It publishes
five anchor numbers which we use to calibrate a virtual cost model:

=====================================  ==========  =========================
Anchor (paper)                          Value       Constant derived
=====================================  ==========  =========================
Scan total, 10^4 queries (Table 2)      6 746 s     674.6 ms / scan query
Sort one column, "Time_sort" (Fig. 3)   28.4 s      sort of 10^8 ints
Offline total (Table 2)                 28.5 s      ~10 us / indexed query
Adaptive (cracking) total (Table 2)     13 s        crack cost per element
Exp2 idle budget (Section 4)            55 s        2 sorts == 10x100 cracks
=====================================  ==========  =========================

Derivations
-----------

``SCAN_NS_PER_ELEMENT``: one scan-select query reads 10^8 elements in
674.6 ms, i.e. 6.746 ns per element.  MonetDB's select over an int column
is a tight predicate loop, and the produced candidate range is a view, so
the whole per-query cost is attributed to the scan itself.

``SORT_NS_PER_ELEMENT_LOG``: quicksorting 10^8 ints takes 28.4 s, i.e.
28.4e9 ns / (1e8 * log2(1e8)) = 10.69 ns per element-log2 step.

``PROBE_NS_PER_COMPARISON``: after offline indexing, 10^4 queries cost
28.5 - 28.4 = 0.1 s in total, i.e. 10 us per query.  A query needs two
binary searches (~2 x 27 comparisons) plus view creation, giving ~150 ns
per comparison with a small per-query overhead (``QUERY_OVERHEAD_NS``).

``CRACK_NS_PER_ELEMENT``: cracking with random bounds touches, over Q
queries on N rows, roughly sum_k 2N/(k+1) ~ 2N*H(Q) elements; for
N = 1e8, Q = 1e4 that is ~1.9e9 element moves.  The paper's 13 s total
then gives ~6.8 ns per cracked element -- satisfyingly close to the scan
cost, as a crack is one read-swap pass.  We use 6.5 ns, which lands the
simulated Exp1 adaptive total within a few percent of 13 s (the
calibration test in ``tests/simtime/test_calibration.py`` asserts it).

``RESULT_NS_PER_ELEMENT``: MonetDB selects return views; materialization
is only charged when an operator genuinely copies result values out
(e.g. our scan operator materializing qualifying positions).

The Exp2 anchor is a consistency check rather than a free parameter: two
sorts cost 56.8 s in this model, against the paper's stated 55 s idle
budget for 1 000 cracks -- within 4%.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Elements per column in the paper's experiments.
PAPER_COLUMN_ROWS = 100_000_000

#: Number of queries per experiment in the paper.
PAPER_QUERY_COUNT = 10_000

#: Selectivity of every paper query (1%).
PAPER_SELECTIVITY = 0.01

#: Value domain of the paper's uniform data: [1, 10^8].
PAPER_VALUE_LOW = 1
PAPER_VALUE_HIGH = 100_000_000

#: Paper anchors (seconds) used by the calibration tests.
PAPER_SCAN_TOTAL_S = 6746.0
PAPER_SORT_S = 28.4
PAPER_OFFLINE_TOTAL_S = 28.5
PAPER_ADAPTIVE_TOTAL_S = 13.0
PAPER_EXP2_IDLE_S = 55.0

#: Paper holistic totals from Table 2, keyed by X (cracks per idle window).
PAPER_HOLISTIC_TOTALS_S = {10: 7.3, 100: 3.6, 1000: 1.6}


@dataclass(frozen=True, slots=True)
class CostConstants:
    """Per-operation cost constants, in nanoseconds.

    The defaults reproduce the paper's anchors (see module docstring).
    All constants are exposed so ablation benches can explore other
    hardware points (e.g. slower memory, faster sort).
    """

    scan_ns_per_element: float = 6.746
    crack_ns_per_element: float = 6.5
    sort_ns_per_element_log: float = 10.69
    merge_ns_per_element: float = 8.0
    materialize_ns_per_element: float = 4.0
    probe_ns_per_comparison: float = 150.0
    seek_ns: float = 400.0
    piece_overhead_ns: float = 200.0
    query_overhead_ns: float = 1_000.0
    crack_overhead_ns: float = 500.0

    #: CPU cache size used by the "pieces that fit in cache stop
    #: improving" criterion (paper Section 3, Modeling).  Table 2's
    #: holistic totals (160 us/query at X=1000) imply refinement keeps
    #: paying until pieces are ~10^4 elements, i.e. L1-resident: the
    #: i7-2600's 32 KB L1d holds 8192 4-byte ints.
    cache_bytes: int = 32 * 1024
    element_bytes: int = 4

    def cache_elements(self) -> int:
        """Number of column elements that fit in the modelled cache."""
        return max(1, self.cache_bytes // self.element_bytes)


#: The default, paper-calibrated constants.
PAPER_CONSTANTS = CostConstants()
