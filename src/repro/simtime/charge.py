"""Cost charges: machine-independent records of work performed.

Every storage / index / operator primitive in this library reports the
work it did as a :class:`CostCharge` instead of timing itself.  A charge
counts *logical* operations -- elements scanned, elements moved by a
crack, comparison steps of a binary search, and so on.  Charges are then
priced by a :class:`repro.simtime.model.CostModel` (virtual time,
calibrated to the paper's testbed) or simply ignored by the wall clock
(real time flows by itself).

This is the seam that makes the reproduction honest: the same algorithm
run produces both real measurements (pytest-benchmark) and a projection
onto the paper's 10^8-row, 2011-i7 scale.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class CostCharge:
    """Logical work counters for one operation (or an aggregate of many).

    Attributes:
        elements_scanned: elements read sequentially (full/partial scans).
        elements_cracked: elements read+written by crack partitioning.
        elements_sorted: elements fully sorted (priced N*log2(N)).
        elements_merged: elements moved by merge steps (hybrid cracking).
        elements_materialized: result elements copied out (not views).
        comparisons: individual comparison steps (binary search, piece
            map navigation).
        seeks: random accesses / piece-boundary lookups.
        pieces_touched: how many cracker pieces the operation visited.
        queries: number of user queries this charge covers (bookkeeping).
        cracks: number of crack actions performed (bookkeeping).
    """

    elements_scanned: int = 0
    elements_cracked: int = 0
    elements_sorted: int = 0
    elements_merged: int = 0
    elements_materialized: int = 0
    comparisons: int = 0
    seeks: int = 0
    pieces_touched: int = 0
    queries: int = 0
    cracks: int = 0

    def __add__(self, other: "CostCharge") -> "CostCharge":
        if not isinstance(other, CostCharge):
            return NotImplemented
        merged = CostCharge()
        for field in fields(self):
            value = getattr(self, field.name) + getattr(other, field.name)
            setattr(merged, field.name, value)
        return merged

    def __iadd__(self, other: "CostCharge") -> "CostCharge":
        if not isinstance(other, CostCharge):
            return NotImplemented
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def copy(self) -> "CostCharge":
        """Return an independent copy of this charge."""
        fresh = CostCharge()
        fresh += self
        return fresh

    def is_zero(self) -> bool:
        """True when no work at all has been recorded."""
        return all(getattr(self, field.name) == 0 for field in fields(self))

    def total_elements(self) -> int:
        """Total element-level touches (scan + crack + sort + merge)."""
        return (
            self.elements_scanned
            + self.elements_cracked
            + self.elements_sorted
            + self.elements_merged
            + self.elements_materialized
        )

    @classmethod
    def for_scan(cls, n: int, materialized: int = 0) -> "CostCharge":
        """Charge for a sequential scan of ``n`` elements."""
        return cls(elements_scanned=n, elements_materialized=materialized)

    @classmethod
    def for_crack(cls, piece_size: int, pieces: int = 1) -> "CostCharge":
        """Charge for crack-partitioning ``piece_size`` elements."""
        return cls(
            elements_cracked=piece_size, pieces_touched=pieces, cracks=1
        )

    @classmethod
    def for_sort(cls, n: int) -> "CostCharge":
        """Charge for fully sorting ``n`` elements."""
        return cls(elements_sorted=n)

    @classmethod
    def for_binary_search(cls, n: int) -> "CostCharge":
        """Charge for a binary search over ``n`` ordered elements."""
        steps = max(1, int(n).bit_length())
        return cls(comparisons=steps, seeks=1)
