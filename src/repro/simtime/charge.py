"""Cost charges: machine-independent records of work performed.

Every storage / index / operator primitive in this library reports the
work it did as a :class:`CostCharge` instead of timing itself.  A charge
counts *logical* operations -- elements scanned, elements moved by a
crack, comparison steps of a binary search, and so on.  Charges are then
priced by a :class:`repro.simtime.model.CostModel` (virtual time,
calibrated to the paper's testbed) or simply ignored by the wall clock
(real time flows by itself).

This is the seam that makes the reproduction honest: the same algorithm
run produces both real measurements (pytest-benchmark) and a projection
onto the paper's 10^8-row, 2011-i7 scale.

Charges sit on the refinement hot path (one or more per crack), so the
arithmetic below is hand-unrolled rather than driven by
``dataclasses.fields`` reflection -- the reflective version dominated
kernel profiles once pieces became cache-sized.  :class:`ChargeBatch`
collects many charges and settles them against a clock in one call,
for batch drivers that do not need a timestamp per action.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - circular at runtime only
    from repro.simtime.clock import Clock


@dataclass(slots=True)
class CostCharge:
    """Logical work counters for one operation (or an aggregate of many).

    Attributes:
        elements_scanned: elements read sequentially (full/partial scans).
        elements_cracked: elements read+written by crack partitioning.
        elements_sorted: elements fully sorted (priced N*log2(N)).
        elements_merged: elements moved by merge steps (hybrid cracking).
        elements_materialized: result elements copied out (not views).
        comparisons: individual comparison steps (binary search, piece
            map navigation).
        seeks: random accesses / piece-boundary lookups.
        pieces_touched: how many cracker pieces the operation visited.
        queries: number of user queries this charge covers (bookkeeping).
        cracks: number of crack actions performed (bookkeeping).
    """

    elements_scanned: int = 0
    elements_cracked: int = 0
    elements_sorted: int = 0
    elements_merged: int = 0
    elements_materialized: int = 0
    comparisons: int = 0
    seeks: int = 0
    pieces_touched: int = 0
    queries: int = 0
    cracks: int = 0

    def __add__(self, other: "CostCharge") -> "CostCharge":
        if not isinstance(other, CostCharge):
            return NotImplemented
        return CostCharge(
            self.elements_scanned + other.elements_scanned,
            self.elements_cracked + other.elements_cracked,
            self.elements_sorted + other.elements_sorted,
            self.elements_merged + other.elements_merged,
            self.elements_materialized + other.elements_materialized,
            self.comparisons + other.comparisons,
            self.seeks + other.seeks,
            self.pieces_touched + other.pieces_touched,
            self.queries + other.queries,
            self.cracks + other.cracks,
        )

    def __iadd__(self, other: "CostCharge") -> "CostCharge":
        if not isinstance(other, CostCharge):
            return NotImplemented
        # Zero-skip: accumulation runs once per clock charge and hot
        # charges carry two or three non-zero fields.
        if other.elements_scanned:
            self.elements_scanned += other.elements_scanned
        if other.elements_cracked:
            self.elements_cracked += other.elements_cracked
        if other.elements_sorted:
            self.elements_sorted += other.elements_sorted
        if other.elements_merged:
            self.elements_merged += other.elements_merged
        if other.elements_materialized:
            self.elements_materialized += other.elements_materialized
        if other.comparisons:
            self.comparisons += other.comparisons
        if other.seeks:
            self.seeks += other.seeks
        if other.pieces_touched:
            self.pieces_touched += other.pieces_touched
        if other.queries:
            self.queries += other.queries
        if other.cracks:
            self.cracks += other.cracks
        return self

    def copy(self) -> "CostCharge":
        """Return an independent copy of this charge."""
        fresh = CostCharge()
        fresh += self
        return fresh

    def as_dict(self) -> dict[str, int]:
        """Field-name to counter mapping (snapshot serialization)."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    @classmethod
    def from_dict(cls, state: dict) -> "CostCharge":
        """Rebuild a charge from :meth:`as_dict` output.

        Unknown keys are ignored so older snapshots stay loadable when
        new counters are added.
        """
        known = {field.name for field in fields(cls)}
        return cls(
            **{k: int(v) for k, v in state.items() if k in known}
        )

    def is_zero(self) -> bool:
        """True when no work at all has been recorded."""
        return all(getattr(self, field.name) == 0 for field in fields(self))

    def total_elements(self) -> int:
        """Total element-level touches (scan + crack + sort + merge)."""
        return (
            self.elements_scanned
            + self.elements_cracked
            + self.elements_sorted
            + self.elements_merged
            + self.elements_materialized
        )

    @classmethod
    def for_scan(cls, n: int, materialized: int = 0) -> "CostCharge":
        """Charge for a sequential scan of ``n`` elements."""
        return cls(elements_scanned=n, elements_materialized=materialized)

    @classmethod
    def for_crack(cls, piece_size: int, pieces: int = 1) -> "CostCharge":
        """Charge for crack-partitioning ``piece_size`` elements."""
        return cls(
            elements_cracked=piece_size, pieces_touched=pieces, cracks=1
        )

    @classmethod
    def for_sort(cls, n: int) -> "CostCharge":
        """Charge for fully sorting ``n`` elements."""
        return cls(elements_sorted=n)

    @classmethod
    def for_binary_search(cls, n: int) -> "CostCharge":
        """Charge for a binary search over ``n`` ordered elements."""
        steps = max(1, int(n).bit_length())
        return cls(comparisons=steps, seeks=1)

    @classmethod
    def for_pending_merge(cls, deletes: int, materialized: int) -> "CostCharge":
        """Charge for folding pending updates into a query result.

        One comparison per pending delete (minimum one for the range
        probe) plus the materialization of the corrected result.
        """
        return cls(
            comparisons=max(1, deletes),
            elements_materialized=materialized,
        )


class ChargeBatch:
    """Accumulates charges and settles them against a clock in one call.

    Batch drivers (multi-crack tuning passes, bulk merges) often charge
    the clock dozens of times between any two points where virtual time
    is actually observed.  Collecting those charges and flushing once
    replaces N pricing calls with one.

    Only use where no tape record or other timestamp is taken between
    the batched charges: flushing prices the *sum*, so intermediate
    ``clock.now()`` readings would differ from per-charge accounting.
    Linear counters sum exactly (totals can differ from eager
    accounting only in the last floating-point ulp); the
    N*log2(N)-priced sort counter is superlinear, so charges that carry
    ``elements_sorted`` bypass the batch and hit the clock eagerly.
    """

    __slots__ = ("clock", "_pending")

    def __init__(self, clock: Clock) -> None:
        self.clock: Clock = clock
        self._pending = CostCharge()

    def add(self, charge: CostCharge) -> None:
        """Queue one charge for the next :meth:`flush`."""
        if charge.elements_sorted:
            self.flush()
            self.clock.charge(charge)
            return
        self._pending += charge

    @property
    def pending(self) -> CostCharge:
        """The accumulated, not-yet-flushed charge."""
        return self._pending

    def flush(self) -> float:
        """Charge the accumulated total to the clock; return seconds."""
        if self._pending.is_zero():
            return 0.0
        batched = self._pending
        self._pending = CostCharge()
        return self.clock.charge(batched)
