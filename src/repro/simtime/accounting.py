"""Window accountants: amortized, bit-identical batch pricing.

Sequential query execution prices every charge through five Python
frames (``CostCharge`` construction, ``Clock.charge``,
``CostModel.seconds``/``nanoseconds``, counter accumulation) -- about
as expensive as the arithmetic is cheap.  A batched window instead
routes its charges through a :class:`WindowAccountant`, which

* replays the **exact** pricing arithmetic inline -- same constants,
  same term order, same per-event ``ns / 1e9`` conversion, same
  left-fold accumulation into the running clock reading -- so every
  timestamp and response time is bit-for-bit what the sequential
  per-event path would produce (``x + 0.0 == x`` makes the scalar
  zero-skip irrelevant);
* accumulates the integer work counters locally and settles them on
  the clock in **one** ``total_charge`` update per window
  (:meth:`WindowAccountant.finish`), integer sums being exact in any
  order.

:class:`DirectAccountant` is the drop-in fallback for clocks without
a cost model (wall clocks): it forwards every event to
``clock.charge`` immediately, preserving today's behaviour.  Both
expose the same event vocabulary, so the batched execution code has a
single code path.

The accountant's :attr:`now` is the session's clock reading for the
duration of a window; the real clock must not be consulted (or
advanced by others) until :meth:`finish` has synced it.
"""

from __future__ import annotations

from repro.simtime.charge import CostCharge
from repro.simtime.clock import Clock, SimClock

_NS_PER_S = 1e9


class WindowAccountant:
    """Amortized charge accounting over one batched query window.

    Prices events inline with a :class:`SimClock`'s cost model and
    syncs clock time and counters once per window.
    """

    __slots__ = (
        "clock",
        "now",
        "_scan_ns",
        "_crack_ns",
        "_materialize_ns",
        "_probe_ns",
        "_seek_ns",
        "_piece_ns",
        "_query_ns",
        "_crack_overhead_ns",
        "_scale",
        "_scanned",
        "_cracked",
        "_materialized",
        "_comparisons",
        "_seeks",
        "_pieces",
        "_queries",
        "_cracks",
        "_query_seconds",
        "_binary_seconds",
    )

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        model = clock.model
        constants = model.constants
        self._scan_ns = constants.scan_ns_per_element
        self._crack_ns = constants.crack_ns_per_element
        self._materialize_ns = constants.materialize_ns_per_element
        self._probe_ns = constants.probe_ns_per_comparison
        self._seek_ns = constants.seek_ns
        self._piece_ns = constants.piece_overhead_ns
        self._query_ns = constants.query_overhead_ns
        self._crack_overhead_ns = constants.crack_overhead_ns
        self._scale = model.scale
        self.now = clock.now()
        self._query_seconds = (self._query_ns * 1) / _NS_PER_S
        #: Memoized binary-search pricing keyed by step count -- the
        #: same few depths recur thousands of times per run.
        self._binary_seconds: dict[int, float] = {}
        self._scanned = 0
        self._cracked = 0
        self._materialized = 0
        self._comparisons = 0
        self._seeks = 0
        self._pieces = 0
        self._queries = 0
        self._cracks = 0

    # -- events --------------------------------------------------------
    # Each method mirrors one hot-path charge shape; term order and
    # association replicate CostModel.nanoseconds exactly.

    def charge_query(self) -> None:
        """``CostCharge(queries=1)``."""
        self.now += self._query_seconds
        self._queries += 1

    def _binary_cost(self, steps: int) -> float:
        seconds = self._binary_seconds.get(steps)
        if seconds is None:
            seconds = self._binary_seconds[steps] = (
                self._probe_ns * steps + self._seek_ns * 1
            ) / _NS_PER_S
        return seconds

    def charge_binary(self, n: int) -> None:
        """``CostCharge.for_binary_search(n)``."""
        steps = max(1, int(n).bit_length())
        self.now += self._binary_cost(steps)
        self._comparisons += steps
        self._seeks += 1

    def charge_binary_pair(self, n: int) -> None:
        """Two consecutive ``for_binary_search(n)`` charges in one call.

        The both-bounds-already-pivots fast path of a batched select:
        one method dispatch, two identical left-fold advances (the
        priced seconds are computed once -- both events are equal).
        """
        steps = max(1, int(n).bit_length())
        seconds = self._binary_cost(steps)
        self.now += seconds
        self.now += seconds
        self._comparisons += 2 * steps
        self._seeks += 2

    def charge_warm_select(self, n: int) -> None:
        """One per-query overhead charge plus two pivot probes.

        The fully-warm select (both bounds already cuts) in a single
        fold sequence: ``CostCharge(queries=1)``, then two
        ``for_binary_search(n)`` events.
        """
        now = self.now + self._query_seconds
        self._queries += 1
        steps = max(1, int(n).bit_length())
        seconds = self._binary_cost(steps)
        now += seconds
        self.now = now + seconds
        self._comparisons += 2 * steps
        self._seeks += 2

    def charge_scan_query(self, scanned: int, materialized: int) -> None:
        """Per-query overhead plus a full-scan charge, fused."""
        self.now += self._query_seconds
        self._queries += 1
        ns = self._scan_ns * scanned * self._scale
        ns += self._materialize_ns * materialized * self._scale
        self.now += ns / _NS_PER_S
        self._scanned += scanned
        self._materialized += materialized

    def charge_crack(self, size: int, cracks: int) -> None:
        """``CostCharge(elements_cracked=size, pieces_touched=1,
        cracks=cracks)`` -- one crack-in-two (`cracks=1`) or a fused
        crack-in-three (`cracks=2`)."""
        ns = self._crack_ns * size * self._scale
        ns += self._piece_ns * 1
        ns += self._crack_overhead_ns * cracks
        self.now += ns / _NS_PER_S
        self._cracked += size
        self._pieces += 1
        self._cracks += cracks

    def charge_empty_crack(self) -> None:
        """``CostCharge(cracks=1)`` (cracking an empty piece)."""
        self.now += (self._crack_overhead_ns * 1) / _NS_PER_S
        self._cracks += 1

    def charge_materialize(self, rows: int) -> None:
        """``CostCharge(elements_materialized=rows)`` (copy-on-first-
        touch)."""
        self.now += (
            self._materialize_ns * rows * self._scale
        ) / _NS_PER_S
        self._materialized += rows

    def charge_scan(self, scanned: int, materialized: int) -> None:
        """``CostCharge(elements_scanned=..., elements_materialized=...)``."""
        ns = self._scan_ns * scanned * self._scale
        ns += self._materialize_ns * materialized * self._scale
        self.now += ns / _NS_PER_S
        self._scanned += scanned
        self._materialized += materialized

    def charge_pending_merge(self, deletes: int, materialized: int) -> None:
        """``CostCharge.for_pending_merge(deletes, materialized)``."""
        comparisons = max(1, deletes)
        ns = self._materialize_ns * materialized * self._scale
        ns += self._probe_ns * comparisons
        self.now += ns / _NS_PER_S
        self._materialized += materialized
        self._comparisons += comparisons

    # -- settlement ----------------------------------------------------

    def finish(self) -> None:
        """Sync the window's time and counters onto the clock."""
        total = CostCharge(
            elements_scanned=self._scanned,
            elements_cracked=self._cracked,
            elements_materialized=self._materialized,
            comparisons=self._comparisons,
            seeks=self._seeks,
            pieces_touched=self._pieces,
            queries=self._queries,
            cracks=self._cracks,
        )
        self.clock.settle_batch(self.now, total)


class DirectAccountant:
    """Per-event fallback for clocks without a cost model.

    Forwards every event to ``clock.charge`` immediately -- identical
    to the sequential path on wall clocks, where time flows by itself
    and charges are only tallied.
    """

    __slots__ = ("clock",)

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    @property
    def now(self) -> float:
        return self.clock.now()

    def charge_query(self) -> None:
        self.clock.charge(CostCharge(queries=1))

    def charge_binary(self, n: int) -> None:
        self.clock.charge(CostCharge.for_binary_search(n))

    def charge_binary_pair(self, n: int) -> None:
        self.clock.charge(CostCharge.for_binary_search(n))
        self.clock.charge(CostCharge.for_binary_search(n))

    def charge_warm_select(self, n: int) -> None:
        self.clock.charge(CostCharge(queries=1))
        self.clock.charge(CostCharge.for_binary_search(n))
        self.clock.charge(CostCharge.for_binary_search(n))

    def charge_scan_query(self, scanned: int, materialized: int) -> None:
        self.clock.charge(CostCharge(queries=1))
        self.clock.charge(
            CostCharge(
                elements_scanned=scanned,
                elements_materialized=materialized,
            )
        )

    def charge_crack(self, size: int, cracks: int) -> None:
        self.clock.charge(
            CostCharge(
                elements_cracked=size, pieces_touched=1, cracks=cracks
            )
        )

    def charge_empty_crack(self) -> None:
        self.clock.charge(CostCharge(cracks=1))

    def charge_materialize(self, rows: int) -> None:
        self.clock.charge(CostCharge(elements_materialized=rows))

    def charge_scan(self, scanned: int, materialized: int) -> None:
        self.clock.charge(
            CostCharge(
                elements_scanned=scanned,
                elements_materialized=materialized,
            )
        )

    def charge_pending_merge(self, deletes: int, materialized: int) -> None:
        self.clock.charge(
            CostCharge.for_pending_merge(deletes, materialized)
        )

    def finish(self) -> None:
        return None


def make_accountant(clock: Clock) -> WindowAccountant | DirectAccountant:
    """The cheapest exact accountant for ``clock``."""
    if isinstance(clock, SimClock) and not clock.in_parallel:
        return WindowAccountant(clock)
    return DirectAccountant(clock)
