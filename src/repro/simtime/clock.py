"""Clocks: virtual (cost-model driven) and wall (perf_counter) time.

All engine components take a clock and report their work as cost
charges via :meth:`Clock.charge`.  Under a :class:`SimClock` the charge
advances virtual time according to the calibrated cost model; under a
:class:`WallClock` charges are counted but time flows by itself.  This
lets the same experiment code produce both the paper-scale projection
and genuine wall-clock measurements.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.model import CostModel


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used throughout the engine."""

    def now(self) -> float:
        """Current time in seconds (virtual or wall)."""
        ...

    def charge(self, charge: CostCharge) -> float:
        """Account for work; return the seconds it was priced at."""
        ...

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` of time pass (idle time)."""
        ...


class SimClock:
    """Virtual clock driven by a :class:`CostModel`.

    Time only moves when work is charged or idle time is injected,
    which makes experiments deterministic and lets a 10^6-row run
    report 10^8-row seconds.
    """

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model if model is not None else CostModel()
        self._now = 0.0
        self.total_charge = CostCharge()

    def now(self) -> float:
        return self._now

    def charge(self, charge: CostCharge) -> float:
        seconds = self.model.seconds(charge)
        self._now += seconds
        self.total_charge += charge
        return seconds

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot sleep a negative time: {seconds}")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias of :meth:`sleep` for non-idle administrative jumps."""
        self.sleep(seconds)


class WallClock:
    """Real-time clock; charges are tallied but do not move time."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self.total_charge = CostCharge()

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def charge(self, charge: CostCharge) -> float:
        self.total_charge += charge
        return 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot sleep a negative time: {seconds}")
        time.sleep(seconds)


class Stopwatch:
    """Measures elapsed time on any clock between :meth:`start`/``stop``.

    Usable as a context manager::

        with Stopwatch(clock) as watch:
            ...work...
        elapsed = watch.elapsed
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._started_at: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._started_at = self._clock.now()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise ConfigError("stopwatch stopped before being started")
        self.elapsed = self._clock.now() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
