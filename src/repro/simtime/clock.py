"""Clocks: virtual (cost-model driven) and wall (perf_counter) time.

All engine components take a clock and report their work as cost
charges via :meth:`Clock.charge`.  Under a :class:`SimClock` the charge
advances virtual time according to the calibrated cost model; under a
:class:`WallClock` charges are counted but time flows by itself.  This
lets the same experiment code produce both the paper-scale projection
and genuine wall-clock measurements.

Parallel phases model the paper's idle-core claim: between
:meth:`SimClock.begin_parallel` and :meth:`SimClock.end_parallel`,
charges accumulate on per-thread *lanes* instead of advancing the
shared timeline, and the phase advances virtual time by the **maximum**
lane (wall-clock is the slowest worker, not the sum of all workers).
The sum of all lanes is still reported as busy time, so experiments can
quote both elapsed seconds and aggregate CPU work.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.model import CostModel


def wall_now() -> float:
    """Real monotonic seconds -- the sanctioned wall-clock read.

    Charged paths must not read wall time (bit-identical fingerprints
    depend on it), but a few mechanisms are *about* real time and
    nothing else: latch-acquisition deadlines, worker idle backoff,
    serving batch-formation windows.  Those call this helper instead of
    :func:`time.monotonic` directly, so the determinism linter
    (:mod:`repro.analysis.rules.determinism`) can allow exactly one
    audited escape hatch and flag every other wall-clock read.
    """
    return time.monotonic()  # repro: allow[determinism] -- the one audited wall-time read; callers use it only for real-time bounds (deadlines, backoff), never for charged accounting


def wall_sleep(seconds: float) -> None:
    """Real sleep -- the sanctioned wall-clock blocking wait.

    Counterpart of :func:`wall_now` for worker backoff loops; see its
    docstring for the contract.
    """
    time.sleep(seconds)  # repro: allow[determinism] -- the one audited real sleep; used for thread backoff, never on a charged path


@dataclass(slots=True)
class ParallelAccount:
    """What one parallel phase cost.

    Attributes:
        elapsed_s: virtual wall-clock of the phase -- the maximum lane.
        busy_s: aggregate work across all lanes (the serial-equivalent
            cost; ``busy_s / elapsed_s`` is the achieved speedup).
        lanes: per-lane busy seconds, keyed by the clock's stable lane
            id (see :meth:`SimClock.current_lane`).  Lane ids are used
            instead of raw thread idents because the OS reuses idents:
            a short-lived thread's ident can be handed to a later
            thread, silently merging two lanes and overstating the
            phase's elapsed time.
    """

    elapsed_s: float = 0.0
    busy_s: float = 0.0
    lanes: dict[int, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Busy-to-elapsed ratio; 1.0 for an empty phase."""
        if self.elapsed_s <= 0:
            return 1.0
        return self.busy_s / self.elapsed_s


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used throughout the engine."""

    def now(self) -> float:
        """Current time in seconds (virtual or wall)."""
        ...

    def charge(self, charge: CostCharge) -> float:
        """Account for work; return the seconds it was priced at."""
        ...

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` of time pass (idle time)."""
        ...


class SimClock:
    """Virtual clock driven by a :class:`CostModel`.

    Time only moves when work is charged or idle time is injected,
    which makes experiments deterministic and lets a 10^6-row run
    report 10^8-row seconds.
    """

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model if model is not None else CostModel()
        self._now = 0.0
        self.total_charge = CostCharge()
        self._parallel = False
        self._parallel_base = 0.0
        self._lanes: dict[int, float] = {}
        self._lane_lock = threading.Lock()
        self._lane_tls = threading.local()
        self._lane_seq = 0

    def current_lane(self) -> int:
        """This thread's stable lane id (allocated on first use).

        Thread idents are recycled by the OS, so two sequential
        short-lived threads could share one; a thread-local sequence
        number keeps every thread's lane distinct for the clock's
        lifetime.
        """
        lane = getattr(self._lane_tls, "lane", None)
        if lane is None:
            with self._lane_lock:
                lane = self._lane_seq
                self._lane_seq += 1
            self._lane_tls.lane = lane
        return lane

    def fork(self) -> "SimClock":
        """An independent zero-origin clock sharing this clock's model.

        Serving lanes (ISSUE 5): each client of the concurrent serving
        front-end accounts its queries on its own serial fork, so
        per-client time is what that client would have measured running
        alone, while the parent clock keeps tracking shared work
        (background tuning, update merges).
        """
        return SimClock(self.model)

    def now(self) -> float:
        if self._parallel:
            lane = self._lanes.get(self.current_lane(), 0.0)
            return self._parallel_base + lane
        return self._now

    def charge(self, charge: CostCharge) -> float:
        seconds = self.model.seconds(charge)
        if self._parallel:
            lane = self.current_lane()
            with self._lane_lock:
                self._lanes[lane] = self._lanes.get(lane, 0.0) + seconds
                self.total_charge += charge
        else:
            self._now += seconds
            self.total_charge += charge
        return seconds

    def settle_batch(self, now: float, charge: CostCharge) -> None:
        """Apply a window accountant's amortized settlement.

        ``now`` must be the left-fold of per-event priced seconds over
        the current reading (what repeated :meth:`charge` calls would
        have produced -- see :mod:`repro.simtime.accounting`); the
        aggregate ``charge`` lands in ``total_charge`` in one update.

        Raises:
            ConfigError: inside a parallel phase, or if ``now`` runs
                backwards.
        """
        if self._parallel:
            raise ConfigError(
                "cannot settle a batch window inside a parallel phase"
            )
        if now < self._now:
            raise ConfigError(
                f"batch settlement runs time backwards: {now} < {self._now}"
            )
        self._now = now
        self.total_charge += charge

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot sleep a negative time: {seconds}")
        if self._parallel:
            lane = self.current_lane()
            with self._lane_lock:
                self._lanes[lane] = self._lanes.get(lane, 0.0) + seconds
        else:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias of :meth:`sleep` for non-idle administrative jumps."""
        self.sleep(seconds)

    # -- parallel phases (idle-core tuning) -----------------------------

    @property
    def in_parallel(self) -> bool:
        """Whether a parallel phase is currently open."""
        return self._parallel

    def begin_parallel(self) -> None:
        """Open a parallel phase: charges go to per-thread lanes.

        Raises:
            ConfigError: if a phase is already open (no nesting).
        """
        if self._parallel:
            raise ConfigError("parallel phases cannot nest")
        self._parallel_base = self._now
        self._lanes = {}
        self._parallel = True

    def parallel_elapsed(self) -> float:
        """The phase's elapsed time so far: the maximum lane."""
        with self._lane_lock:
            return max(self._lanes.values(), default=0.0)

    def parallel_busy(self) -> float:
        """The phase's aggregate work so far: the sum of all lanes."""
        with self._lane_lock:
            return sum(self._lanes.values())

    def end_parallel(self) -> ParallelAccount:
        """Close the phase; advance time by the maximum lane.

        Raises:
            ConfigError: if no phase is open.
        """
        if not self._parallel:
            raise ConfigError("no parallel phase to end")
        with self._lane_lock:
            lanes = dict(self._lanes)
            self._lanes = {}
        self._parallel = False
        elapsed = max(lanes.values(), default=0.0)
        self._now = self._parallel_base + elapsed
        return ParallelAccount(
            elapsed_s=elapsed, busy_s=sum(lanes.values()), lanes=lanes
        )

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Plain-structure dump of the clock's durable state.

        Safe to call while a parallel phase is open: ``_now`` equals the
        phase's base then (lanes only fold in at ``end_parallel``), so
        the captured timeline is the last settled point.  In-flight
        lane time is deliberately *not* captured -- a checkpoint taken
        while workers race records the state as of the window's start,
        which is exactly what a crash would leave behind.
        """
        return {
            "now": self._parallel_base if self._parallel else self._now,
            "total_charge": self.total_charge.as_dict(),
            "lane_seq": self._lane_seq,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a previously-exported clock state (snapshot restore).

        Raises:
            ConfigError: inside a parallel phase (settle it first).
        """
        if self._parallel:
            raise ConfigError(
                "cannot restore clock state inside a parallel phase"
            )
        self._now = float(state["now"])
        self.total_charge = CostCharge.from_dict(state["total_charge"])
        # Lane ids already handed to live threads stay valid; the
        # sequence only ever moves forward.
        self._lane_seq = max(self._lane_seq, int(state["lane_seq"]))


class WallClock:
    """Real-time clock; charges are tallied but do not move time."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()  # repro: allow[determinism] -- WallClock *is* the wall-time carrier; experiments opt into it explicitly
        self.total_charge = CostCharge()
        self._parallel_start: float | None = None

    def now(self) -> float:
        return time.perf_counter() - self._origin  # repro: allow[determinism] -- WallClock is the wall-time carrier

    def charge(self, charge: CostCharge) -> float:
        self.total_charge += charge
        return 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"cannot sleep a negative time: {seconds}")
        time.sleep(seconds)  # repro: allow[determinism] -- WallClock is the wall-time carrier

    # -- parallel phases: wall time overlaps by itself -------------------

    @property
    def in_parallel(self) -> bool:
        return self._parallel_start is not None

    def begin_parallel(self) -> None:
        """Open a parallel phase (wall time already runs in parallel).

        Raises:
            ConfigError: if a phase is already open (no nesting).
        """
        if self._parallel_start is not None:
            raise ConfigError("parallel phases cannot nest")
        self._parallel_start = self.now()

    def parallel_elapsed(self) -> float:
        if self._parallel_start is None:
            return 0.0
        return self.now() - self._parallel_start

    def parallel_busy(self) -> float:
        return self.parallel_elapsed()

    def end_parallel(self) -> ParallelAccount:
        """Close the phase; elapsed and busy are both real time.

        Raises:
            ConfigError: if no phase is open.
        """
        if self._parallel_start is None:
            raise ConfigError("no parallel phase to end")
        elapsed = self.now() - self._parallel_start
        self._parallel_start = None
        return ParallelAccount(elapsed_s=elapsed, busy_s=elapsed)


class Stopwatch:
    """Measures elapsed time on any clock between :meth:`start`/``stop``.

    Usable as a context manager::

        with Stopwatch(clock) as watch:
            ...work...
        elapsed = watch.elapsed
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._started_at: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._started_at = self._clock.now()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise ConfigError("stopwatch stopped before being started")
        self.elapsed = self._clock.now() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
