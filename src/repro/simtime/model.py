"""Pricing of :class:`~repro.simtime.charge.CostCharge` records.

The :class:`CostModel` converts logical work counters into virtual
nanoseconds using the calibrated constants of
:mod:`repro.simtime.costs`.  A ``scale`` factor projects runs executed at
a reduced data size onto the paper's 10^8-row scale: piece dynamics of
cracking on uniform data are scale-invariant in *relative* terms (after
k random cracks the expected relative piece sizes do not depend on N),
so multiplying element counts by ``N_paper / N_actual`` yields a faithful
projection of the paper's absolute numbers.  The log factor of sorting is
handled explicitly so the projection prices ``N*scale`` elements at
``log2(N*scale)`` depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.simtime.charge import CostCharge
from repro.simtime.costs import PAPER_CONSTANTS, CostConstants

_NS_PER_S = 1e9


@dataclass(slots=True)
class CostModel:
    """Prices cost charges in virtual seconds.

    Args:
        constants: per-operation nanosecond constants; defaults to the
            paper-calibrated set.
        scale: element-count multiplier projecting a reduced-size run
            onto the paper scale.  ``scale=1`` prices the run at its
            actual size; ``scale=100`` projects a 10^6-row run onto
            10^8 rows.
    """

    constants: CostConstants = field(default_factory=lambda: PAPER_CONSTANTS)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    def seconds(self, charge: CostCharge) -> float:
        """Price ``charge`` and return the virtual seconds it costs."""
        return self.nanoseconds(charge) / _NS_PER_S

    def nanoseconds(self, charge: CostCharge) -> float:
        """Price ``charge`` in virtual nanoseconds.

        Zero counters are skipped: hot-path charges carry two or three
        non-zero fields, and this method runs once per crack.  The
        accumulation order matches the original field order exactly so
        virtual-clock totals stay bit-identical.
        """
        c = self.constants
        s = self.scale
        ns = 0.0
        if charge.elements_scanned:
            ns += c.scan_ns_per_element * charge.elements_scanned * s
        if charge.elements_cracked:
            ns += c.crack_ns_per_element * charge.elements_cracked * s
        if charge.elements_merged:
            ns += c.merge_ns_per_element * charge.elements_merged * s
        if charge.elements_materialized:
            ns += (
                c.materialize_ns_per_element
                * charge.elements_materialized
                * s
            )
        if charge.elements_sorted:
            ns += self._sort_ns(charge.elements_sorted)
        if charge.comparisons:
            ns += c.probe_ns_per_comparison * charge.comparisons
        if charge.seeks:
            ns += c.seek_ns * charge.seeks
        if charge.pieces_touched:
            ns += c.piece_overhead_ns * charge.pieces_touched
        if charge.queries:
            ns += c.query_overhead_ns * charge.queries
        if charge.cracks:
            ns += c.crack_overhead_ns * charge.cracks
        return ns

    def _sort_ns(self, n: int) -> float:
        if n <= 0:
            return 0.0
        projected = n * self.scale
        return (
            self.constants.sort_ns_per_element_log
            * projected
            * math.log2(max(2.0, projected))
        )

    # ------------------------------------------------------------------
    # Convenience estimators used by planners / the holistic ranking
    # scheme.  These price *hypothetical* operations without running
    # them, which is exactly what an optimizer-style what-if call needs.
    # ------------------------------------------------------------------

    def scan_seconds(self, n: int) -> float:
        """Estimated cost of scan-selecting over ``n`` elements."""
        return self.seconds(CostCharge.for_scan(n) + CostCharge(queries=1))

    def sort_seconds(self, n: int) -> float:
        """Estimated cost of fully sorting ``n`` elements."""
        return self.seconds(CostCharge.for_sort(n))

    def crack_seconds(self, piece_size: int) -> float:
        """Estimated cost of one crack over a piece of ``piece_size``."""
        return self.seconds(CostCharge.for_crack(piece_size))

    def probe_seconds(self, n: int) -> float:
        """Estimated cost of one binary-search probe over ``n`` rows."""
        return self.seconds(CostCharge.for_binary_search(max(1, n)))

    def indexed_query_seconds(self, n: int) -> float:
        """Estimated cost of a range query on a fully sorted column."""
        probes = CostCharge.for_binary_search(max(1, n))
        probes += CostCharge.for_binary_search(max(1, n))
        probes += CostCharge(queries=1)
        return self.seconds(probes)

    def with_scale(self, scale: float) -> "CostModel":
        """Return a copy of this model with a different projection scale."""
        return CostModel(constants=self.constants, scale=scale)


def projection_scale(actual_rows: int, paper_rows: int) -> float:
    """Scale factor projecting ``actual_rows`` onto ``paper_rows``.

    Raises:
        ConfigError: if either row count is not positive.
    """
    if actual_rows <= 0 or paper_rows <= 0:
        raise ConfigError(
            "row counts must be positive, got "
            f"actual={actual_rows}, paper={paper_rows}"
        )
    return paper_rows / actual_rows
