"""Virtual time: cost charges, calibrated cost model, and clocks.

This package is the substitution layer documented in DESIGN.md §2-3:
the paper measured wall-clock time inside the MonetDB kernel on a 2011
i7; we count logical work (:class:`CostCharge`) and price it with a
:class:`CostModel` calibrated against the paper's published anchors,
driving a deterministic :class:`SimClock`.  A :class:`WallClock` is
provided for genuine measurements of the numpy kernels.
"""

from repro.simtime.charge import ChargeBatch, CostCharge
from repro.simtime.clock import (
    Clock,
    ParallelAccount,
    SimClock,
    Stopwatch,
    WallClock,
)
from repro.simtime.costs import (
    PAPER_ADAPTIVE_TOTAL_S,
    PAPER_COLUMN_ROWS,
    PAPER_CONSTANTS,
    PAPER_EXP2_IDLE_S,
    PAPER_HOLISTIC_TOTALS_S,
    PAPER_OFFLINE_TOTAL_S,
    PAPER_QUERY_COUNT,
    PAPER_SCAN_TOTAL_S,
    PAPER_SELECTIVITY,
    PAPER_SORT_S,
    PAPER_VALUE_HIGH,
    PAPER_VALUE_LOW,
    CostConstants,
)
from repro.simtime.model import CostModel, projection_scale

__all__ = [
    "ChargeBatch",
    "Clock",
    "CostCharge",
    "CostConstants",
    "CostModel",
    "PAPER_ADAPTIVE_TOTAL_S",
    "PAPER_COLUMN_ROWS",
    "PAPER_CONSTANTS",
    "PAPER_EXP2_IDLE_S",
    "PAPER_HOLISTIC_TOTALS_S",
    "PAPER_OFFLINE_TOTAL_S",
    "PAPER_QUERY_COUNT",
    "PAPER_SCAN_TOTAL_S",
    "PAPER_SELECTIVITY",
    "PAPER_SORT_S",
    "PAPER_VALUE_HIGH",
    "PAPER_VALUE_LOW",
    "ParallelAccount",
    "SimClock",
    "Stopwatch",
    "WallClock",
    "projection_scale",
]
