"""Deterministic fault injection for the self-healing kernel.

See :mod:`repro.faults.plan` for the model: a seeded
:class:`FaultPlan` armed against registered fault points, consumed by
the kernel through :func:`trip` (error faults) and :func:`tamper`
(corruption faults), with per-event recovery bookkeeping that the
chaos bench gates on.
"""

from repro.faults.corrupt import flip_bit, tear_file
from repro.faults.plan import (
    FAULT_POINTS,
    TAMPER_POINTS,
    FaultEvent,
    FaultPlan,
    FaultRule,
    active,
    engaged,
    install,
    recovered,
    recovered_matching,
    tamper,
    trip,
    uninstall,
)

__all__ = [
    "FAULT_POINTS",
    "TAMPER_POINTS",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "active",
    "engaged",
    "flip_bit",
    "install",
    "recovered",
    "recovered_matching",
    "tamper",
    "tear_file",
    "trip",
    "uninstall",
]
