"""File corruption primitives for the persist fault points.

Torn writes and bit rot cannot be modelled as raised exceptions -- the
write *succeeds* and the damage is discovered later.  These helpers
apply the damage that :func:`repro.faults.tamper` schedules; they are
deterministic (fixed truncation point, fixed flipped bit) so chaos
runs reproduce byte-for-byte.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import ConfigError


def tear_file(path: Path) -> int:
    """Truncate ``path`` to half its size (a torn write); returns the
    new size."""
    path = Path(path)
    size = path.stat().st_size
    if size < 2:
        raise ConfigError(f"cannot tear {path}: only {size} bytes")
    kept = size // 2
    with open(path, "r+b") as handle:
        handle.truncate(kept)
        handle.flush()
        os.fsync(handle.fileno())
    return kept


def flip_bit(path: Path, offset: int | None = None, bit: int = 6) -> int:
    """XOR one bit of ``path`` in place; returns the byte offset.

    Defaults to the middle byte -- past any format header, so the
    damage lands in payload data and only a checksum can catch it.
    """
    path = Path(path)
    size = path.stat().st_size
    if size < 1:
        raise ConfigError(f"cannot flip a bit of empty file {path}")
    if offset is None:
        offset = size // 2
    if not 0 <= offset < size:
        raise ConfigError(
            f"offset {offset} outside file of {size} bytes"
        )
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << bit)]))
        handle.flush()
        os.fsync(handle.fileno())
    return offset
