"""The deterministic, seeded fault-injection plane.

A :class:`FaultPlan` is a schedule of faults against *named fault
points* -- fixed hooks compiled into the kernel's risky paths (worker
actions, latch acquisition, serving replay, snapshot publish/restore).
Each point counts its invocations; a :class:`FaultRule` fires at
chosen invocation indices, either by raising
:class:`~repro.errors.InjectedFault` (via :func:`trip`) or by asking
the call site to corrupt its own output (via :func:`tamper` -- torn
and bit-flipped snapshot files cannot be expressed as an exception).

Design constraints, in order:

* **zero overhead when disarmed** -- with no plan installed,
  :func:`trip` is one global read and a ``None`` check; production
  code pays nothing for carrying the hooks;
* **deterministic** -- firing depends only on the per-point invocation
  counter and the plan's rules, never on wall-clock or thread timing;
  :meth:`FaultPlan.arm_random` derives schedules from the plan's seed;
* **auditable** -- every fired fault is a :class:`FaultEvent` on the
  plan; recovery paths mark events recovered, and
  :meth:`FaultPlan.unrecovered` is the chaos bench's "nothing was
  silently swallowed" gate.

Thread safety: plans are armed before concurrent phases and mutated
under an internal lock; worker threads, the serving loop and restore
paths may fire and recover events concurrently.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError, InjectedFault

#: The registry: every fault point compiled into the kernel, with the
#: layer and failure it simulates.  Arming an unknown name is a
#: ConfigError -- schedules cannot silently rot when code moves.
FAULT_POINTS: dict[str, str] = {
    "workers.perform": (
        "a tuning worker crashes mid-refinement (holistic/workers)"
    ),
    "latch.acquire": (
        "a piece-latch acquisition times out (cracking/concurrency)"
    ),
    "serving.replay": (
        "a client's query replay blows up mid-window (serving/frontend)"
    ),
    "persist.publish.torn": (
        "a snapshot array file is torn (truncated) after publish"
    ),
    "persist.publish.bitflip": (
        "one bit of a snapshot array file flips after publish"
    ),
    "persist.publish.pointer": (
        "the CURRENT pointer is overwritten with garbage after publish"
    ),
    "persist.restore": (
        "a transient IO failure while rebuilding state from a snapshot"
    ),
}

#: Points whose effect is corruption applied by the call site
#: (consumed through :func:`tamper`) rather than a raised error.
TAMPER_POINTS = frozenset(
    {
        "persist.publish.torn",
        "persist.publish.bitflip",
        "persist.publish.pointer",
    }
)


@dataclass(slots=True)
class FaultEvent:
    """One fault that actually fired."""

    point: str
    hit: int
    recovered: bool = False
    note: str = ""


@dataclass(slots=True)
class FaultRule:
    """When one fault point fires.

    Args:
        point: registered fault-point name.
        at: invocation indices (0-based) to fire on; ``None`` fires on
            every invocation until ``times`` is exhausted.
        times: maximum number of firings.
    """

    point: str
    at: frozenset[int] | None = frozenset({0})
    times: int = 1
    fired: int = 0

    def wants(self, hit: int) -> bool:
        if self.fired >= self.times:
            return False
        return self.at is None or hit in self.at


class FaultPlan:
    """A deterministic schedule of faults plus the log of firings."""

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed
        self.events: list[FaultEvent] = []
        self._rules: dict[str, list[FaultRule]] = {}
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- arming --------------------------------------------------------

    def arm(
        self,
        point: str,
        at: int | Iterable[int] | None = 0,
        times: int | None = None,
    ) -> FaultRule:
        """Schedule ``point`` to fire at invocation indices ``at``.

        ``at=None`` fires on every invocation; ``times`` caps total
        firings (default: one per listed index, or 1 for ``at=None``).

        Raises:
            ConfigError: on an unregistered point or bad indices.
        """
        if point not in FAULT_POINTS:
            raise ConfigError(
                f"unknown fault point {point!r}; registered: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        if at is None:
            indices = None
        else:
            if isinstance(at, int):
                at = (at,)
            indices = frozenset(int(i) for i in at)
            if not indices or min(indices) < 0:
                raise ConfigError(f"fault indices must be >= 0, got {at!r}")
        if times is None:
            times = 1 if indices is None else len(indices)
        if times < 1:
            raise ConfigError(f"times must be >= 1, got {times}")
        rule = FaultRule(point=point, at=indices, times=times)
        with self._lock:
            self._rules.setdefault(point, []).append(rule)
        return rule

    def arm_random(
        self,
        count: int,
        points: Iterable[str] | None = None,
        max_hit: int = 8,
    ) -> list[FaultRule]:
        """Arm ``count`` seed-derived (point, invocation) faults."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        names = sorted(points) if points is not None else sorted(FAULT_POINTS)
        for name in names:
            if name not in FAULT_POINTS:
                raise ConfigError(f"unknown fault point {name!r}")
        rng = np.random.default_rng(self.seed)
        rules = []
        for _ in range(count):
            point = names[int(rng.integers(len(names)))]
            rules.append(self.arm(point, at=int(rng.integers(max_hit))))
        return rules

    # -- firing --------------------------------------------------------

    def fire(self, point: str) -> FaultEvent | None:
        """Count one invocation of ``point``; returns the event if a
        rule fired."""
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            for rule in self._rules.get(point, ()):
                if rule.wants(hit):
                    rule.fired += 1
                    event = FaultEvent(point=point, hit=hit)
                    self.events.append(event)
                    return event
        return None

    def hits(self, point: str) -> int:
        """Invocations of ``point`` seen so far."""
        with self._lock:
            return self._hits.get(point, 0)

    # -- recovery bookkeeping ------------------------------------------

    def note_recovered(self, point: str, note: str = "") -> bool:
        """Mark the oldest unrecovered event at ``point`` recovered."""
        with self._lock:
            for event in self.events:
                if event.point == point and not event.recovered:
                    event.recovered = True
                    event.note = note
                    return True
        return False

    def note_recovered_matching(self, prefix: str, note: str = "") -> int:
        """Mark every unrecovered event whose point starts with
        ``prefix`` recovered; returns how many."""
        count = 0
        with self._lock:
            for event in self.events:
                if event.point.startswith(prefix) and not event.recovered:
                    event.recovered = True
                    event.note = note
                    count += 1
        return count

    @property
    def injected(self) -> int:
        with self._lock:
            return len(self.events)

    def unrecovered(self) -> list[FaultEvent]:
        """Events no recovery path has claimed -- must be empty after a
        healthy chaos run."""
        with self._lock:
            return [e for e in self.events if not e.recovered]

    def summary(self) -> dict[str, object]:
        """JSON-ready account of what fired and what healed."""
        with self._lock:
            per_point: dict[str, int] = {}
            for event in self.events:
                per_point[event.point] = per_point.get(event.point, 0) + 1
            return {
                "seed": self.seed,
                "injected": len(self.events),
                "recovered": sum(1 for e in self.events if e.recovered),
                "per_point": dict(sorted(per_point.items())),
                "events": [
                    {
                        "point": e.point,
                        "hit": e.hit,
                        "recovered": e.recovered,
                        "note": e.note,
                    }
                    for e in self.events
                ],
            }


# -- the active plan ----------------------------------------------------

_install_lock = threading.Lock()
_active: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active plan.

    Raises:
        ConfigError: if another plan is already installed (nested
            chaos runs would corrupt each other's schedules).
    """
    global _active
    with _install_lock:
        if _active is not None and _active is not plan:
            raise ConfigError("a fault plan is already installed")
        _active = plan


def uninstall() -> None:
    """Deactivate the current plan (idempotent)."""
    global _active
    with _install_lock:
        _active = None


def active() -> FaultPlan | None:
    """The installed plan, if any."""
    return _active


@contextmanager
def engaged(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def trip(point: str, error: type[Exception] | None = None) -> None:
    """Fault hook for error-shaped faults: raises if a rule fires.

    ``error`` substitutes the raised type (e.g.
    :class:`~repro.errors.LatchTimeout` so the injected fault exercises
    the genuine timeout-recovery path); the instance always carries
    ``.point``/``.hit`` for recovery bookkeeping.
    """
    plan = _active
    if plan is None:
        return
    event = plan.fire(point)
    if event is None:
        return
    if error is None:
        raise InjectedFault(point, event.hit)
    raised = error(f"injected fault at {point!r} (hit {event.hit})")
    raised.point = point
    raised.hit = event.hit
    raise raised


def tamper(point: str) -> FaultEvent | None:
    """Fault hook for corruption-shaped faults.

    Returns the fired event when the call site should corrupt its own
    output (it cannot be expressed as an exception), else ``None``.
    """
    plan = _active
    if plan is None:
        return None
    return plan.fire(point)


def recovered(point: str, note: str = "") -> None:
    """Recovery hook: credit the oldest unrecovered event at ``point``."""
    plan = _active
    if plan is not None:
        plan.note_recovered(point, note)


def recovered_matching(prefix: str, note: str = "") -> None:
    """Credit every unrecovered event under a point-name prefix."""
    plan = _active
    if plan is not None:
        plan.note_recovered_matching(prefix, note)
