"""Batched range selects over one cracker index.

The session-loop amortization (ISSUE 4) rests on one property of
cracking: a cut's position is *order independent*.  Cracking at value
``v`` always lands at the number of elements ``< v`` in the column, no
matter how many other cracks happen before or after.  A window of
queries can therefore be executed in two decoupled halves:

* a **physical pass** (:meth:`CrackerIndex.begin_select_batch`) cracks
  every bound of the window in one grouped sweep -- one shared
  ``crack_spans_batch`` dispatch for pieces taking one pivot or one
  query's bound pair, ``crack_multi`` counting partitions for denser
  pieces, vectorized ``searchsorted`` for sorted pieces, one
  ``insert_cracks_bulk`` piece-map splice -- touching each piece once
  instead of once per query, with **no** clock or tape side effects;
* an **accounting replay** (:class:`CrackSelectBatch`) that steps
  query by query over a lightweight pure-Python shadow of the
  pre-window piece map, emitting exactly the charges and tape records
  sequential :meth:`CrackerIndex.select_range` calls would have
  produced -- the same crack-in-three fusion, the same binary-search
  charges for pivot hits, the same piece sizes, the same timestamps.

Because the replay reproduces the sequential charge stream verbatim,
per-query response times, cumulative clock totals and tape contents
are bit-for-bit identical to one-at-a-time execution; only wall-clock
time changes.  The replay must be driven to completion, one
:meth:`CrackSelectBatch.replay_query` call per window entry in window
order, before the index is used again -- the session's ``run_batch``
loop is the only intended caller.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.cracking.piece import CrackOrigin
from repro.errors import CrackerError
from repro.simtime.accounting import DirectAccountant
from repro.storage.views import RangeView


class ReplayPieceMap:
    """Pure-Python shadow of a :class:`PieceMap` for accounting replay.

    Mirrors :meth:`PieceMap.locate` / :meth:`PieceMap.add_crack_at`
    semantics exactly (bisect on plain lists instead of numpy
    searchsorted -- faster for the one-value lookups the replay makes)
    without ever touching the real map, which the physical pass has
    already advanced to its end-of-window state.
    """

    __slots__ = ("n", "pivots", "cuts", "flags")

    def __init__(
        self,
        n: int,
        pivots: list[float],
        cuts: list[int],
        flags: list[bool],
    ) -> None:
        self.n = n
        self.pivots = pivots
        self.cuts = cuts
        self.flags = flags

    @classmethod
    def snapshot(cls, piece_map) -> "ReplayPieceMap":
        return cls(
            piece_map.row_count,
            piece_map.pivots(),
            piece_map.cuts(),
            piece_map.sorted_flags(),
        )

    @property
    def piece_count(self) -> int:
        return len(self.pivots) + 1

    def locate(self, value: float) -> tuple[int, int, int, bool, bool]:
        """``(piece_index, start, end, is_sorted, at_pivot)``."""
        pivots = self.pivots
        i = bisect_right(pivots, value)
        at_pivot = i > 0 and pivots[i - 1] == value
        cuts = self.cuts
        start = cuts[i - 1] if i > 0 else 0
        end = cuts[i] if i < len(pivots) else self.n
        return i, start, end, self.flags[i], at_pivot

    def add_crack_at(self, i: int, value: float, position: int) -> None:
        self.pivots.insert(i, value)
        self.cuts.insert(i, position)
        # Both halves inherit the split piece's sorted flag.
        self.flags.insert(i, self.flags[i])


class CrackSelectBatch:
    """Replay handle for one column's window of range selects.

    Created by :meth:`CrackerIndex.begin_select_batch` after the
    physical pass; :meth:`replay` must then be called once per window
    entry, in window order.
    """

    __slots__ = (
        "_index",
        "_values",
        "_rowids",
        "_sim",
        "_positions",
        "_copy_charged",
        "_origin",
        "_acc",
        "_tape",
        "_expected",
        "_done",
        "_view_cache",
    )

    def __init__(
        self,
        index,
        sim: ReplayPieceMap,
        positions: dict[float, int],
        copy_charged: bool,
        origin: CrackOrigin,
        expected: int,
        tape=None,
    ) -> None:
        self._index = index
        self._values = index.values
        self._rowids = index.rowids
        self._sim = sim
        self._positions = positions
        self._copy_charged = copy_charged
        self._origin = origin
        #: Replaced by the session's window accountant via bind();
        #: the default forwards each event to the clock immediately,
        #: which direct (index-level) users rely on.
        self._acc = DirectAccountant(index.clock)
        # Detached replays (one client of a shared kernel) log onto
        # their own tape instead of the index's shared one.
        self._tape = tape if tape is not None else index.tape
        self._expected = expected
        self._done = 0
        # Repeated warm predicates (parameterized workloads) resolve
        # to the same [pos_low, pos_high) slice; cut positions are
        # absolute and stable under cracking, and RangeViews are
        # immutable, so identical slices share one view object.  The
        # dict lives on the index (it stays valid across windows) and
        # is reset whenever the cracker column is replaced (update
        # merges, widening) -- see begin_select_batch.
        self._view_cache: dict[tuple[int, int], RangeView] = (
            index._span_views
        )

    def bind(self, accountant) -> None:
        """Route this context's charges through ``accountant``."""
        self._acc = accountant

    @property
    def is_complete(self) -> bool:
        """Whether every window entry has been replayed.

        A complete replay leaves the shadow map identical to the real
        piece map, which lets the index reuse it for the next window
        instead of re-snapshotting (see
        :meth:`CrackerIndex.begin_select_batch`).
        """
        return self._done >= self._expected

    @property
    def sim(self) -> ReplayPieceMap:
        return self._sim

    def _charge_copy_if_needed(self) -> None:
        if self._copy_charged:
            return
        self._copy_charged = True
        rows = self._index.row_count
        if rows:
            self._acc.charge_materialize(rows)

    def _cut(
        self, value: float, i: int, start: int, end: int,
        is_sorted: bool, at_pivot: bool,
    ) -> int:
        """Replay of :meth:`CrackerIndex._cut_located` for one bound."""
        acc = self._acc
        if at_pivot:
            acc.charge_binary(self._sim.piece_count)
            return start
        self._charge_copy_if_needed()
        position = self._positions[value]
        self._sim.add_crack_at(i, value, position)
        size = end - start
        if is_sorted:
            acc.charge_binary(max(1, size))
        elif size == 0:
            acc.charge_empty_crack()
        else:
            acc.charge_crack(size, 1)
        self._tape.log(acc.now, self._origin, value, position, size)
        return position

    def replay_query(self, low: float, high: float) -> RangeView:
        """Account for one window query; return its result view.

        Owns the whole per-query charge stream -- the
        ``CostCharge(queries=1)`` overhead first, then exactly the
        charges and tape records a sequential :meth:`Session.run_query`
        /:meth:`CrackerIndex.select_range` pair would have produced at
        this point of the window, including the crack-in-three fusion
        when both bounds fall into the same unsorted piece.  The piece
        lookups inline :meth:`ReplayPieceMap.locate` -- this path runs
        twice per query of every batched window.
        """
        sim = self._sim
        pivots = sim.pivots
        cuts = sim.cuts
        low_index = bisect_right(pivots, low)
        low_pivot = low_index > 0 and pivots[low_index - 1] == low
        high_index = bisect_right(pivots, high)
        high_pivot = high_index > 0 and pivots[high_index - 1] == high
        if low_pivot and high_pivot:
            # Warm path: both bounds are existing cuts -- per-query
            # overhead and two pivot probes in one fused fold; no
            # cracking, no tape.
            self._acc.charge_warm_select(len(pivots) + 1)
            self._done += 1
            span = (
                cuts[low_index - 1] if low_index > 0 else 0,
                cuts[high_index - 1],
            )
            view = self._view_cache.get(span)
            if view is None:
                view = RangeView(
                    self._values, span[0], span[1], self._rowids
                )
                self._view_cache[span] = view
            return view
        self._acc.charge_query()
        return self._replay_located(
            low, high, low_index, low_pivot, high_index, high_pivot
        )

    def replay(self, low: float, high: float) -> RangeView:
        """Like :meth:`replay_query`, for callers that have already
        charged the per-query overhead (the holistic wrapper charges
        it before capturing its monitor timestamp)."""
        sim = self._sim
        pivots = sim.pivots
        cuts = sim.cuts
        low_index = bisect_right(pivots, low)
        low_pivot = low_index > 0 and pivots[low_index - 1] == low
        high_index = bisect_right(pivots, high)
        high_pivot = high_index > 0 and pivots[high_index - 1] == high
        if low_pivot and high_pivot:
            self._acc.charge_binary_pair(len(pivots) + 1)
            self._done += 1
            span = (
                cuts[low_index - 1] if low_index > 0 else 0,
                cuts[high_index - 1],
            )
            view = self._view_cache.get(span)
            if view is None:
                view = RangeView(
                    self._values, span[0], span[1], self._rowids
                )
                self._view_cache[span] = view
            return view
        return self._replay_located(
            low, high, low_index, low_pivot, high_index, high_pivot
        )

    def _replay_located(
        self,
        low: float,
        high: float,
        low_index: int,
        low_pivot: bool,
        high_index: int,
        high_pivot: bool,
    ) -> RangeView:
        """The cracking replay for queries with at least one fresh
        bound (charges and tape records replicate sequential
        :meth:`CrackerIndex.select_range` exactly)."""
        sim = self._sim
        cuts = sim.cuts
        k = len(sim.pivots)
        start = cuts[low_index - 1] if low_index > 0 else 0
        end = cuts[low_index] if low_index < k else sim.n
        low_sorted = sim.flags[low_index]
        if (
            low_index == high_index
            and not low_pivot
            and not high_pivot
            and not low_sorted
            and low < high
            and end > start
        ):
            self._charge_copy_if_needed()
            pos_low = self._positions[low]
            pos_high = self._positions[high]
            sim.add_crack_at(low_index, low, pos_low)
            sim.add_crack_at(low_index + 1, high, pos_high)
            size = end - start
            acc = self._acc
            acc.charge_crack(size, 2)
            now = acc.now
            tape_log = self._tape.log
            tape_log(now, self._origin, low, pos_low, size)
            tape_log(now, self._origin, high, pos_high, size)
        else:
            pos_low = self._cut(
                low, low_index, start, end, low_sorted, low_pivot
            )
            pos_high = self._cut(high, *sim.locate(high))
        self._done += 1
        return RangeView(self._values, pos_low, pos_high, self._rowids)

    def refresh_arrays(self) -> None:
        """Re-capture the index's physical arrays and view cache.

        Defensive re-sync for long-lived (detached) replays: result
        views must always slice the index's *current* arrays.  Note
        this does not make replays safe across update merges that
        shift cut positions -- the shadow map and the caller's
        positions would be stale too; serving-eligible strategies
        never merge mid-run (see :mod:`repro.serving`).
        """
        self._values = self._index.values
        self._rowids = self._index.rowids
        self._view_cache = self._index._span_views

    def check_consistent(self) -> None:
        """Verify the replay converged onto the physical state.

        Debug/test helper: after a full replay the shadow map must
        equal the real (already advanced) piece map.

        Raises:
            CrackerError: when the replay and the physical pass
                disagree -- an accounting bug.
        """
        real = self._index.piece_map
        if (
            self._sim.pivots != real.pivots()
            or self._sim.cuts != real.cuts()
            or self._sim.flags != real.sorted_flags()
        ):
            raise CrackerError(
                "batched select replay diverged from the physical pass"
            )


class DetachedCrackReplay(CrackSelectBatch):
    """A persistent per-client accounting replay over a shared index.

    The concurrent serving front-end (ISSUE 5) runs many clients
    against **one** physical cracker index: the index accumulates the
    union of every client's (and every tuning worker's) cracks, while
    each client carries a detached replay whose shadow map evolves only
    through that client's own queries -- the exact piece-boundary
    trajectory of the client running *alone* against a fresh index.

    This works because a crack's position is order independent: the cut
    for value ``v`` always lands at the number of elements ``< v``, no
    matter which other cracks -- from other clients, other windows, or
    background tuning -- happen around it.  The physical union therefore
    serves every client's solo piece boundaries, and the replay's
    charges (which depend only on the shadow's piece sizes and the
    order-independent positions) reproduce the solo charge stream
    bit-for-bit.

    Unlike its window-scoped parent, a detached replay

    * never converges onto the physical map (``check_consistent`` does
      not apply);
    * persists across windows: re-``bind`` a fresh accountant per
      window and keep replaying;
    * logs onto its own tape, so each client owns a solo-identical
      crack log;
    * charges its own copy-on-first-touch materialization, like the
      solo index would on the client's first crack;
    * resolves positions from a caller-maintained dict that must cover
      every bound the client queries (the serving front-end feeds it
      from :meth:`CrackerIndex.crack_bounds_batch` each window).
    """

    __slots__ = ()

    @classmethod
    def solo(
        cls,
        index,
        positions: dict[float, int],
        tape,
        origin: CrackOrigin = CrackOrigin.QUERY,
    ) -> "DetachedCrackReplay":
        """A replay starting from the virgin (uncracked) column state."""
        sim = ReplayPieceMap(index.row_count, [], [], [False])
        return cls(
            index,
            sim,
            positions,
            copy_charged=False,
            origin=origin,
            expected=0,
            tape=tape,
        )

    def bind(self, accountant) -> None:
        super().bind(accountant)
        # Always serve views over the index's current arrays (e.g.
        # after a widening that preserved cut positions).
        self.refresh_arrays()
