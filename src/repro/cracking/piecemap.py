"""The piece map: ordered crack boundaries of one cracked column.

MonetDB's cracker index keeps an AVL tree mapping pivot values to the
position of the first element ``>= pivot``.  Because the cracked column
is range-partitioned, pivot order and position order coincide, so two
parallel sorted arrays with binary search give the same O(log k)
navigation with much better constants.

Representation (ISSUE 3): the pivot/cut/sorted-flag columns are
amortized-growth **numpy buffers** navigated by ``np.searchsorted``.
Bulk operations (``piece_sizes``, ``shift_from``, ``apply_deltas``,
``check_invariants``, the unsorted-piece selectors) are vectorized,
and the maximum piece size is maintained incrementally: a split never
grows a piece, so the cached maximum only needs a vectorized rescan
when the last maximum-sized piece is itself split (dirty flag).
``max_piece_size`` is O(1) on the clean path instead of O(k) per call.

The single-value navigation path used by every crack is fused into
:meth:`locate`: one binary search yields the piece index, bounds,
sorted flag and whether the value is already a pivot.

Invariants (checked by :meth:`PieceMap.check_invariants` and the
property tests):

* ``pivots`` is strictly increasing;
* ``cuts`` is non-decreasing, each within ``[0, n]``;
* piece ``i`` spans positions ``[cuts[i-1], cuts[i])`` (sentinels 0 and
  ``n``) and values ``[pivots[i-1], pivots[i])`` (sentinels -inf/+inf);
* the sorted-flag column has exactly ``len(pivots) + 1`` entries.

Pivots are stored as ``float64``; integer pivots beyond 2^53 would
lose precision (query predicates are floats throughout this library).
"""

from __future__ import annotations

import ctypes
import math
from typing import Iterator

import numpy as np

from repro.errors import CrackerError
from repro.cracking.piece import Piece

_INITIAL_CAPACITY = 16


class PieceMap:
    """Crack boundaries of a column of ``n`` rows."""

    __slots__ = (
        "_n",
        "_k",
        "_pivots",
        "_cuts",
        "_sorted",
        "_pivots_addr",
        "_cuts_addr",
        "_sorted_addr",
        "_max_size",
        "_max_count",
        "_max_dirty",
        "_version",
    )

    def __init__(self, n: int, sorted_initially: bool = False) -> None:
        if n < 0:
            raise CrackerError(f"row count must be >= 0, got {n}")
        self._n = n
        self._k = 0  # number of cracks (pivots/cuts in use)
        self._pivots = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._cuts = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._sorted = np.zeros(_INITIAL_CAPACITY + 1, dtype=bool)
        self._sorted[0] = sorted_initially
        self._cache_addresses()
        self._max_size = n
        self._max_count = 1
        self._max_dirty = False
        self._version = 0

    def _cache_addresses(self) -> None:
        """Cache buffer base addresses for the memmove insert path.

        Recomputed whenever a buffer is reallocated: building the
        ``.ctypes`` interface per insert costs more than the insert.
        """
        self._pivots_addr = self._pivots.ctypes.data
        self._cuts_addr = self._cuts.ctypes.data
        self._sorted_addr = self._sorted.ctypes.data

    @classmethod
    def from_state(
        cls,
        n: int,
        pivots: np.ndarray,
        cuts: np.ndarray,
        sorted_flags: np.ndarray,
    ) -> "PieceMap":
        """Rebuild a piece map from exported compact arrays (snapshots).

        ``pivots``/``cuts`` are the ``k`` crack boundaries and
        ``sorted_flags`` the ``k + 1`` per-piece flags, exactly as
        :meth:`pivots`/:meth:`cuts`/:meth:`sorted_flags` export them.
        Buffers are reallocated with growth headroom, addresses
        recached, and the max-piece cache recomputed; the version
        counter restarts at 0 (it orders mutations within one process
        lifetime only).

        Raises:
            CrackerError: when the arrays violate the map invariants.
        """
        pivots = np.asarray(pivots, dtype=np.float64)
        cuts = np.asarray(cuts, dtype=np.int64)
        sorted_flags = np.asarray(sorted_flags, dtype=bool)
        k = len(pivots)
        if len(cuts) != k or len(sorted_flags) != k + 1:
            raise CrackerError(
                f"piece-map state misaligned: {k} pivots, {len(cuts)} "
                f"cuts, {len(sorted_flags)} sorted flags"
            )
        piece_map = cls(n)
        capacity = max(_INITIAL_CAPACITY, k)
        piece_map._k = k
        piece_map._pivots = np.empty(capacity, dtype=np.float64)
        piece_map._pivots[:k] = pivots
        piece_map._cuts = np.empty(capacity, dtype=np.int64)
        piece_map._cuts[:k] = cuts
        piece_map._sorted = np.zeros(capacity + 1, dtype=bool)
        piece_map._sorted[: k + 1] = sorted_flags
        piece_map._cache_addresses()
        piece_map._recompute_max()
        piece_map.check_invariants()
        return piece_map

    # -- inspection ----------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._n

    @property
    def piece_count(self) -> int:
        return self._k + 1

    @property
    def crack_count(self) -> int:
        return self._k

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural
        change); lets callers cache derived views of the map."""
        return self._version

    def pivots(self) -> list[float]:
        """The pivot values, in increasing order (copy)."""
        return self._pivots[: self._k].tolist()

    def cuts(self) -> list[int]:
        """The cut positions aligned with :meth:`pivots` (copy)."""
        return self._cuts[: self._k].tolist()

    def sorted_flags(self) -> list[bool]:
        """Per-piece sorted flags, in piece order (copy)."""
        return self._sorted[: self._k + 1].tolist()

    def cut_position(self, crack_index: int) -> int:
        """The position of the ``crack_index``-th cut (0-based)."""
        if crack_index < 0 or crack_index >= self._k:
            raise CrackerError(
                f"crack index {crack_index} out of range [0, {self._k})"
            )
        return int(self._cuts[crack_index])

    def piece_at_index(self, index: int) -> Piece:
        """The ``index``-th piece, in position/value order.

        Raises:
            CrackerError: if ``index`` is out of range.
        """
        k = self._k
        if index < 0 or index > k:
            raise CrackerError(
                f"piece index {index} out of range "
                f"[0, {self.piece_count})"
            )
        start = int(self._cuts[index - 1]) if index > 0 else 0
        end = int(self._cuts[index]) if index < k else self._n
        low = float(self._pivots[index - 1]) if index > 0 else -math.inf
        high = float(self._pivots[index]) if index < k else math.inf
        return Piece(start, end, low, high, bool(self._sorted[index]))

    def locate(
        self, value: float
    ) -> tuple[int, int, int, bool, bool]:
        """One-binary-search lookup of the piece containing ``value``.

        Returns ``(piece_index, start, end, is_sorted, at_pivot)`` --
        everything a crack needs, without constructing a
        :class:`Piece` or re-searching for the pivot.  ``at_pivot`` is
        True when ``value`` is already a crack boundary; the piece
        returned is then the one *at or right of* the pivot, whose
        ``start`` is exactly the pivot's cut position.
        """
        k = self._k
        pivots = self._pivots
        i = int(pivots[:k].searchsorted(value, side="right"))
        at_pivot = i > 0 and pivots[i - 1] == value
        start = int(self._cuts[i - 1]) if i > 0 else 0
        end = int(self._cuts[i]) if i < k else self._n
        return i, start, end, bool(self._sorted[i]), at_pivot

    def locate_many(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate` for many values at once.

        Returns ``(piece_indices, starts, ends, is_sorted, at_pivot)``
        arrays aligned with ``values`` -- one ``searchsorted`` over
        the pivot column instead of one binary search per value.
        ``starts`` is each containing piece's start position (for
        ``at_pivot`` entries that is exactly the pivot's cut position,
        as in :meth:`locate`).
        """
        k = self._k
        values = np.asarray(values, dtype=np.float64)
        indices = self._pivots[:k].searchsorted(values, side="right")
        if k:
            left = np.maximum(indices - 1, 0)
            at_pivot = (indices > 0) & (self._pivots[left] == values)
            starts = np.where(indices > 0, self._cuts[left], 0)
            ends = np.where(
                indices < k, self._cuts[np.minimum(indices, k - 1)], self._n
            )
        else:
            at_pivot = np.zeros(len(values), dtype=bool)
            starts = np.zeros(len(values), dtype=np.int64)
            ends = np.full(len(values), self._n, dtype=np.int64)
        flags = self._sorted[indices]
        return indices, starts, ends, flags, at_pivot

    def insert_cracks_bulk(
        self, pivots: np.ndarray, positions: np.ndarray
    ) -> None:
        """Record many cracks in one vectorized splice.

        ``pivots`` must be strictly increasing, none of them already
        recorded, with ``positions`` aligned; every new piece inherits
        its containing piece's sorted flag, exactly as repeated
        :meth:`add_crack` calls would arrange.  One ``np.insert`` per
        column replaces per-crack binary searches and tail shifts --
        the piece-map half of a batched physical pass.

        Raises:
            CrackerError: if the splice would violate the piece-map
                invariants.
        """
        fresh = len(pivots)
        if fresh == 0:
            return
        k = self._k
        pivots = np.asarray(pivots, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        slots = self._pivots[:k].searchsorted(pivots, side="left")
        new_pivots = np.insert(self._pivots[:k], slots, pivots)
        new_cuts = np.insert(self._cuts[:k], slots, positions)
        flags = self._sorted[: k + 1]
        new_flags = np.insert(flags, slots, flags[slots])
        total = k + fresh
        if np.any(new_pivots[:-1] >= new_pivots[1:]):
            raise CrackerError(
                "bulk crack insert breaks pivot ordering"
            )
        if np.any(new_cuts[:-1] > new_cuts[1:]) or (
            new_cuts[0] < 0 or new_cuts[-1] > self._n
        ):
            raise CrackerError(
                "bulk crack insert breaks cut ordering"
            )
        capacity = self._pivots.size
        while capacity < total:
            capacity *= 2
        pivot_buf = np.empty(capacity, dtype=np.float64)
        cut_buf = np.empty(capacity, dtype=np.int64)
        flag_buf = np.zeros(capacity + 1, dtype=bool)
        pivot_buf[:total] = new_pivots
        cut_buf[:total] = new_cuts
        flag_buf[: total + 1] = new_flags
        self._pivots = pivot_buf
        self._cuts = cut_buf
        self._sorted = flag_buf
        self._k = total
        self._cache_addresses()
        self._max_dirty = True
        self._version += 1

    def piece_index_for_value(self, value: float) -> int:
        """Index of the piece whose value interval contains ``value``."""
        return int(
            self._pivots[: self._k].searchsorted(value, side="right")
        )

    def piece_for_value(self, value: float) -> Piece:
        """The piece whose value interval contains ``value``."""
        return self.piece_at_index(self.piece_index_for_value(value))

    def has_pivot(self, value: float) -> bool:
        """Whether ``value`` is already a crack boundary."""
        i = int(self._pivots[: self._k].searchsorted(value, side="right"))
        return i > 0 and self._pivots[i - 1] == value

    def position_of_pivot(self, value: float) -> int:
        """Cut position of an existing pivot.

        Raises:
            CrackerError: if ``value`` is not a pivot.
        """
        i = int(self._pivots[: self._k].searchsorted(value, side="right"))
        if i == 0 or self._pivots[i - 1] != value:
            raise CrackerError(f"{value!r} is not a crack boundary")
        return int(self._cuts[i - 1])

    def pieces(self) -> Iterator[Piece]:
        """All pieces in order."""
        for i in range(self.piece_count):
            yield self.piece_at_index(i)

    def _sizes_array(self) -> np.ndarray:
        """Piece sizes as an int64 array (vectorized, O(k))."""
        return np.diff(
            self._cuts[: self._k], prepend=0, append=self._n
        )

    def piece_sizes(self) -> list[int]:
        """Sizes of all pieces, in order."""
        return self._sizes_array().tolist()

    def _recompute_max(self) -> None:
        sizes = self._sizes_array()
        self._max_size = int(sizes.max())
        self._max_count = int(np.count_nonzero(sizes == self._max_size))
        self._max_dirty = False

    def max_piece_size(self) -> int:
        """The largest piece's row count (O(1) amortized)."""
        if self._max_dirty:
            self._recompute_max()
        return self._max_size

    def _max_track_resize(self, old_size: int, new_size: int) -> None:
        """Maintain the cached maximum across one piece's size change."""
        if self._max_dirty:
            return
        if old_size == self._max_size:
            self._max_count -= 1
        if new_size > self._max_size:
            self._max_size = new_size
            self._max_count = 1
        elif new_size == self._max_size:
            self._max_count += 1
        if self._max_count <= 0:
            self._max_dirty = True

    def average_piece_size(self) -> float:
        return self._n / self.piece_count if self.piece_count else 0.0

    def largest_unsorted_piece(self) -> Piece | None:
        """The first biggest piece that is not yet sorted, or ``None``."""
        sizes = self._sizes_array()
        masked = np.where(self._sorted[: self._k + 1], -1, sizes)
        index = int(np.argmax(masked))
        if masked[index] < 0:
            return None
        return self.piece_at_index(index)

    def smallest_unsorted_index(self, min_size: int = 2) -> int | None:
        """Index of the first smallest unsorted piece of >= ``min_size``
        rows, or ``None`` when every such piece is sorted."""
        sizes = self._sizes_array()
        sentinel = self._n + 1
        masked = np.where(
            self._sorted[: self._k + 1] | (sizes < min_size),
            sentinel,
            sizes,
        )
        index = int(np.argmin(masked))
        if masked[index] == sentinel:
            return None
        return index

    # -- mutation ------------------------------------------------------

    def _grow(self) -> None:
        capacity = 2 * self._pivots.size
        pivots = np.empty(capacity, dtype=np.float64)
        cuts = np.empty(capacity, dtype=np.int64)
        flags = np.zeros(capacity + 1, dtype=bool)
        k = self._k
        pivots[:k] = self._pivots[:k]
        cuts[:k] = self._cuts[:k]
        flags[: k + 1] = self._sorted[: k + 1]
        self._pivots = pivots
        self._cuts = cuts
        self._sorted = flags
        self._cache_addresses()

    def _insert_crack(
        self,
        i: int,
        pivot: float,
        position: int,
        left_bound: int,
        right_bound: int,
    ) -> None:
        """Insert a validated crack at slot ``i`` (buffer shifts)."""
        k = self._k
        if k == self._pivots.size:
            self._grow()
        if i < k:
            # ctypes.memmove (cached base addresses) instead of an
            # overlapping slice assignment: numpy detects the overlap
            # and materializes a temporary copy of the tail on every
            # insert, which dominated the crack profile.
            tail8 = (k - i) * 8
            offset8 = i * 8
            ctypes.memmove(
                self._pivots_addr + offset8 + 8,
                self._pivots_addr + offset8,
                tail8,
            )
            ctypes.memmove(
                self._cuts_addr + offset8 + 8,
                self._cuts_addr + offset8,
                tail8,
            )
        ctypes.memmove(
            self._sorted_addr + i + 1,
            self._sorted_addr + i,
            k + 1 - i,
        )
        self._pivots[i] = pivot
        self._cuts[i] = position
        self._k = k + 1
        self._version += 1
        self._max_track_split(
            right_bound - left_bound, position - left_bound
        )

    def _max_track_split(self, size: int, left_size: int) -> None:
        """Maintain the cached maximum across one piece split."""
        if self._max_dirty or size < self._max_size:
            return
        # size == max (a split can never grow a piece).
        if left_size == size or left_size == 0:
            return  # degenerate split keeps a max-sized piece
        self._max_count -= 1
        if self._max_count == 0:
            self._max_dirty = True

    def add_crack(self, pivot: float, position: int) -> None:
        """Record that the column was cracked at ``pivot``/``position``.

        Splits the containing piece; both halves inherit its sorted
        flag (cracking a sorted piece is a positional split that keeps
        both halves sorted).

        Raises:
            CrackerError: if the pivot already exists or the position
                violates the piece-ordering invariants.
        """
        k = self._k
        i = int(np.searchsorted(self._pivots[:k], pivot, side="left"))  # repro: allow[dtype-promotion] -- the pivot ledger is float64 by construction; no int64 haystack here
        if i < k and self._pivots[i] == pivot:
            raise CrackerError(f"pivot {pivot!r} already recorded")
        self.add_crack_at(i, pivot, position)

    def add_crack_at(self, i: int, pivot: float, position: int) -> None:
        """Record a crack whose insertion slot ``i`` is already known.

        The fast path for callers that just called :meth:`locate` (the
        piece index of a non-pivot value *is* its insertion slot),
        skipping the second binary search of :meth:`add_crack`.

        Raises:
            CrackerError: if the pivot or position violates the
                piece-ordering invariants.
        """
        k = self._k
        if (i > 0 and self._pivots[i - 1] >= pivot) or (
            i < k and pivot >= self._pivots[i]
        ):
            raise CrackerError(
                f"pivot {pivot!r} out of order for insertion slot {i}"
            )
        left_bound = int(self._cuts[i - 1]) if i > 0 else 0
        right_bound = int(self._cuts[i]) if i < k else self._n
        if not left_bound <= position <= right_bound:
            raise CrackerError(
                f"cut position {position} for pivot {pivot!r} outside "
                f"containing piece [{left_bound}, {right_bound}]"
            )
        self._insert_crack(i, pivot, position, left_bound, right_bound)

    def mark_sorted(self, piece_index: int) -> None:
        """Flag a piece as fully sorted.

        Raises:
            CrackerError: if the index is out of range.
        """
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        self._sorted[piece_index] = True
        self._version += 1

    def mark_unsorted(self, piece_index: int) -> None:
        """Clear a piece's sorted flag (after in-piece insertions).

        Raises:
            CrackerError: if the index is out of range.
        """
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        self._sorted[piece_index] = False
        self._version += 1

    def is_piece_sorted(self, piece_index: int) -> bool:
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        return bool(self._sorted[piece_index])

    def shift_from(self, position: int, delta: int) -> None:
        """Shift all cuts at or beyond ``position`` by ``delta`` rows.

        Used by update merging: inserting rows into a piece moves every
        later piece.  ``row_count`` grows by ``delta``.  The first
        affected cut is found by binary search; cuts left of
        ``position`` are never touched (a ``position`` past all cuts
        only grows the last piece).

        Raises:
            CrackerError: if ``delta`` would make the map inconsistent.
        """
        if self._n + delta < 0:
            raise CrackerError(
                f"shift by {delta} would make row count negative"
            )
        k = self._k
        i = int(np.searchsorted(self._cuts[:k], position, side="left"))
        if i < k:
            first = int(self._cuts[i])
            if first + delta < 0:
                raise CrackerError(
                    f"shift by {delta} drives cut {first} negative"
                )
        if delta != 0:
            # Piece i is the one whose end moves; later pieces shift
            # wholesale and keep their sizes.
            old_end = int(self._cuts[i]) if i < k else self._n
            start = int(self._cuts[i - 1]) if i > 0 else 0
            self._max_track_resize(
                old_end - start, old_end + delta - start
            )
            if i < k:
                self._cuts[i:k] += delta
        self._n += delta
        self._version += 1

    def apply_deltas(self, deltas: list[int]) -> None:
        """Grow/shrink each piece by ``deltas[i]`` rows, shifting cuts.

        Used by update merging: after physically inserting (positive
        delta) or deleting (negative) rows piece by piece, every cut
        right of a changed piece moves by the cumulative delta.

        Raises:
            CrackerError: if ``deltas`` has the wrong length or a piece
                would shrink below zero rows.
        """
        if len(deltas) != self.piece_count:
            raise CrackerError(
                f"{len(deltas)} deltas for {self.piece_count} pieces"
            )
        delta_arr = np.asarray(deltas, dtype=np.int64)
        sizes = self._sizes_array()
        shrunk = sizes + delta_arr < 0
        if np.any(shrunk):
            index = int(np.argmax(shrunk))
            raise CrackerError(
                f"delta {deltas[index]} would shrink a "
                f"{int(sizes[index])}-row piece below zero"
            )
        shifts = np.cumsum(delta_arr)
        k = self._k
        if k:
            self._cuts[:k] += shifts[:k]
        self._n += int(shifts[-1])
        self._max_dirty = True
        self._version += 1

    # -- validation ----------------------------------------------------

    def check_invariants(self) -> None:
        """Validate internal invariants (used by tests and debugging).

        Raises:
            CrackerError: on any violation.
        """
        k = self._k
        pivots = self._pivots[:k]
        cuts = self._cuts[:k]
        if np.any(pivots[:-1] >= pivots[1:]):
            raise CrackerError("pivots not strictly increasing")
        if np.any(cuts[:-1] > cuts[1:]):
            raise CrackerError("cuts not non-decreasing")
        if k and (cuts[0] < 0 or cuts[-1] > self._n):
            raise CrackerError("cut positions outside [0, n]")
        if not self._max_dirty:
            sizes = self._sizes_array()
            true_max = int(sizes.max())
            if true_max != self._max_size:
                raise CrackerError(
                    f"cached max piece size {self._max_size} != "
                    f"actual {true_max}"
                )

    def __repr__(self) -> str:
        return (
            f"PieceMap(rows={self._n}, pieces={self.piece_count}, "
            f"cracks={self.crack_count})"
        )
