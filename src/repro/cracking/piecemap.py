"""The piece map: ordered crack boundaries of one cracked column.

MonetDB's cracker index keeps an AVL tree mapping pivot values to the
position of the first element ``>= pivot``.  Because the cracked column
is range-partitioned, pivot order and position order coincide, so two
parallel sorted lists with binary search give the same O(log k)
navigation with much better Python constants.

Invariants (checked by :meth:`PieceMap.check_invariants` and the
property tests):

* ``pivots`` is strictly increasing;
* ``cuts`` is non-decreasing, each within ``[0, n]``;
* piece ``i`` spans positions ``[cuts[i-1], cuts[i])`` (sentinels 0 and
  ``n``) and values ``[pivots[i-1], pivots[i])`` (sentinels -inf/+inf);
* ``sorted_flags`` has exactly ``len(pivots) + 1`` entries.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.errors import CrackerError
from repro.cracking.piece import Piece


class PieceMap:
    """Crack boundaries of a column of ``n`` rows."""

    def __init__(self, n: int, sorted_initially: bool = False) -> None:
        if n < 0:
            raise CrackerError(f"row count must be >= 0, got {n}")
        self._n = n
        self._pivots: list[float] = []
        self._cuts: list[int] = []
        self._sorted_flags: list[bool] = [sorted_initially]

    # -- inspection ----------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._n

    @property
    def piece_count(self) -> int:
        return len(self._pivots) + 1

    @property
    def crack_count(self) -> int:
        return len(self._pivots)

    def pivots(self) -> list[float]:
        """The pivot values, in increasing order (copy)."""
        return list(self._pivots)

    def cuts(self) -> list[int]:
        """The cut positions aligned with :meth:`pivots` (copy)."""
        return list(self._cuts)

    def piece_at_index(self, index: int) -> Piece:
        """The ``index``-th piece, in position/value order.

        Raises:
            CrackerError: if ``index`` is out of range.
        """
        if index < 0 or index >= self.piece_count:
            raise CrackerError(
                f"piece index {index} out of range "
                f"[0, {self.piece_count})"
            )
        start = self._cuts[index - 1] if index > 0 else 0
        end = self._cuts[index] if index < len(self._cuts) else self._n
        low = self._pivots[index - 1] if index > 0 else -math.inf
        high = (
            self._pivots[index] if index < len(self._pivots) else math.inf
        )
        return Piece(start, end, low, high, self._sorted_flags[index])

    def piece_index_for_value(self, value: float) -> int:
        """Index of the piece whose value interval contains ``value``."""
        return bisect_right(self._pivots, value)

    def piece_for_value(self, value: float) -> Piece:
        """The piece whose value interval contains ``value``."""
        return self.piece_at_index(self.piece_index_for_value(value))

    def has_pivot(self, value: float) -> bool:
        """Whether ``value`` is already a crack boundary."""
        i = bisect_left(self._pivots, value)
        return i < len(self._pivots) and self._pivots[i] == value

    def position_of_pivot(self, value: float) -> int:
        """Cut position of an existing pivot.

        Raises:
            CrackerError: if ``value`` is not a pivot.
        """
        i = bisect_left(self._pivots, value)
        if i >= len(self._pivots) or self._pivots[i] != value:
            raise CrackerError(f"{value!r} is not a crack boundary")
        return self._cuts[i]

    def pieces(self) -> Iterator[Piece]:
        """All pieces in order."""
        for i in range(self.piece_count):
            yield self.piece_at_index(i)

    def piece_sizes(self) -> list[int]:
        """Sizes of all pieces, in order."""
        bounds = [0, *self._cuts, self._n]
        return [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]

    def max_piece_size(self) -> int:
        sizes = self.piece_sizes()
        return max(sizes) if sizes else 0

    def average_piece_size(self) -> float:
        return self._n / self.piece_count if self.piece_count else 0.0

    def largest_unsorted_piece(self) -> Piece | None:
        """The biggest piece that is not yet sorted, or ``None``."""
        best: Piece | None = None
        for piece in self.pieces():
            if piece.is_sorted:
                continue
            if best is None or piece.size > best.size:
                best = piece
        return best

    # -- mutation ------------------------------------------------------

    def add_crack(self, pivot: float, position: int) -> None:
        """Record that the column was cracked at ``pivot``/``position``.

        Splits the containing piece; both halves inherit its sorted
        flag (cracking a sorted piece is a positional split that keeps
        both halves sorted).

        Raises:
            CrackerError: if the pivot already exists or the position
                violates the piece-ordering invariants.
        """
        i = bisect_left(self._pivots, pivot)
        if i < len(self._pivots) and self._pivots[i] == pivot:
            raise CrackerError(f"pivot {pivot!r} already recorded")
        left_bound = self._cuts[i - 1] if i > 0 else 0
        right_bound = self._cuts[i] if i < len(self._cuts) else self._n
        if not left_bound <= position <= right_bound:
            raise CrackerError(
                f"cut position {position} for pivot {pivot!r} outside "
                f"containing piece [{left_bound}, {right_bound}]"
            )
        self._pivots.insert(i, pivot)
        self._cuts.insert(i, position)
        self._sorted_flags.insert(i, self._sorted_flags[i])

    def mark_sorted(self, piece_index: int) -> None:
        """Flag a piece as fully sorted.

        Raises:
            CrackerError: if the index is out of range.
        """
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        self._sorted_flags[piece_index] = True

    def mark_unsorted(self, piece_index: int) -> None:
        """Clear a piece's sorted flag (after in-piece insertions).

        Raises:
            CrackerError: if the index is out of range.
        """
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        self._sorted_flags[piece_index] = False

    def is_piece_sorted(self, piece_index: int) -> bool:
        if piece_index < 0 or piece_index >= self.piece_count:
            raise CrackerError(
                f"piece index {piece_index} out of range "
                f"[0, {self.piece_count})"
            )
        return self._sorted_flags[piece_index]

    def shift_from(self, position: int, delta: int) -> None:
        """Shift all cuts at or beyond ``position`` by ``delta`` rows.

        Used by update merging: inserting rows into a piece moves every
        later piece.  ``row_count`` grows by ``delta``.

        Raises:
            CrackerError: if ``delta`` would make the map inconsistent.
        """
        if self._n + delta < 0:
            raise CrackerError(
                f"shift by {delta} would make row count negative"
            )
        for i, cut in enumerate(self._cuts):
            if cut >= position:
                shifted = cut + delta
                if shifted < 0:
                    raise CrackerError(
                        f"shift by {delta} drives cut {cut} negative"
                    )
                self._cuts[i] = shifted
        self._n += delta

    def apply_deltas(self, deltas: list[int]) -> None:
        """Grow/shrink each piece by ``deltas[i]`` rows, shifting cuts.

        Used by update merging: after physically inserting (positive
        delta) or deleting (negative) rows piece by piece, every cut
        right of a changed piece moves by the cumulative delta.

        Raises:
            CrackerError: if ``deltas`` has the wrong length or a piece
                would shrink below zero rows.
        """
        if len(deltas) != self.piece_count:
            raise CrackerError(
                f"{len(deltas)} deltas for {self.piece_count} pieces"
            )
        sizes = self.piece_sizes()
        for size, delta in zip(sizes, deltas):
            if size + delta < 0:
                raise CrackerError(
                    f"delta {delta} would shrink a {size}-row piece "
                    "below zero"
                )
        shift = 0
        for i in range(len(self._cuts)):
            shift += deltas[i]
            self._cuts[i] += shift
        self._n += shift + deltas[-1]

    # -- validation ----------------------------------------------------

    def check_invariants(self) -> None:
        """Validate internal invariants (used by tests and debugging).

        Raises:
            CrackerError: on any violation.
        """
        if any(
            self._pivots[i] >= self._pivots[i + 1]
            for i in range(len(self._pivots) - 1)
        ):
            raise CrackerError("pivots not strictly increasing")
        if any(
            self._cuts[i] > self._cuts[i + 1]
            for i in range(len(self._cuts) - 1)
        ):
            raise CrackerError("cuts not non-decreasing")
        if self._cuts and (self._cuts[0] < 0 or self._cuts[-1] > self._n):
            raise CrackerError("cut positions outside [0, n]")
        if len(self._sorted_flags) != self.piece_count:
            raise CrackerError(
                f"{len(self._sorted_flags)} sorted flags for "
                f"{self.piece_count} pieces"
            )

    def __repr__(self) -> str:
        return (
            f"PieceMap(rows={self._n}, pieces={self.piece_count}, "
            f"cracks={self.crack_count})"
        )
