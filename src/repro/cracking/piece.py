"""Piece descriptors for cracked columns.

A cracked column is range-partitioned into contiguous *pieces*: the
elements of piece ``[start, end)`` all fall in the value interval
``[low, high)`` recorded for that piece (with open infinities at the
extremes).  Pieces shrink monotonically as cracks accumulate -- the
core progress measure of adaptive indexing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class CrackOrigin(Enum):
    """Why a crack (or other refinement) happened.

    The distinction matters to the paper: QUERY cracks are adaptive
    indexing's only source of refinement, while TUNING cracks are the
    auxiliary actions holistic indexing injects during idle time or
    hot-range boosts.
    """

    QUERY = "query"
    TUNING = "tuning"
    MERGE = "merge"
    SORT = "sort"
    LOAD = "load"


@dataclass(frozen=True, slots=True)
class Piece:
    """One piece of a cracked column.

    Attributes:
        start: first position of the piece (inclusive).
        end: one past the last position (exclusive).
        low: smallest value the piece may contain (inclusive);
            ``-inf`` for the leftmost piece.
        high: upper bound on values (exclusive); ``+inf`` for the
            rightmost piece.
        is_sorted: True when the piece's elements are fully sorted, so
            further cracks are positional binary searches.
    """

    start: int
    end: int
    low: float = -math.inf
    high: float = math.inf
    is_sorted: bool = False

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def is_empty(self) -> bool:
        return self.end <= self.start

    def contains_value(self, value: float) -> bool:
        """Whether ``value`` falls in this piece's value interval."""
        return self.low <= value < self.high

    def __repr__(self) -> str:
        flag = ", sorted" if self.is_sorted else ""
        return (
            f"Piece([{self.start}, {self.end}), "
            f"values=[{self.low}, {self.high}){flag})"
        )
