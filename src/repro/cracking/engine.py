"""Crack kernels: in-place partitioning of numpy arrays.

These are the physical operators behind database cracking [12]:
``crack_in_two`` partitions a piece around one pivot (elements < pivot
first), ``crack_in_three`` around a closed-open range (used when both
query bounds fall into the same piece, saving one pass).  Both can
permute an aligned row-id array (the cracker map of sideways cracking
[13]) so tuple reconstruction stays possible after cracking.

The kernels return the split position(s) plus a :class:`CostCharge`
counting every element touched, which the clock prices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CrackerError
from repro.simtime.charge import CostCharge


def _check_bounds(array: np.ndarray, start: int, end: int) -> None:
    if not 0 <= start <= end <= len(array):
        raise CrackerError(
            f"piece bounds [{start}, {end}) invalid for array of "
            f"{len(array)} rows"
        )


def crack_in_two(
    array: np.ndarray,
    start: int,
    end: int,
    pivot: float,
    rowids: np.ndarray | None = None,
) -> tuple[int, CostCharge]:
    """Partition ``array[start:end]`` so values < pivot come first.

    Returns:
        ``(split, charge)`` -- ``split`` is the absolute position of the
        first element ``>= pivot`` after partitioning.

    Raises:
        CrackerError: on invalid bounds or misaligned row ids.
    """
    _check_bounds(array, start, end)
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size == 0:
        return start, CostCharge(cracks=1)
    view = array[start:end]
    mask = view < pivot
    n_left = int(np.count_nonzero(mask))
    if 0 < n_left < size:
        left = view[mask]
        right = view[~mask]
        view[:n_left] = left
        view[n_left:] = right
        if rowids is not None:
            rview = rowids[start:end]
            rleft = rview[mask]
            rright = rview[~mask]
            rview[:n_left] = rleft
            rview[n_left:] = rright
    charge = CostCharge.for_crack(size)
    return start + n_left, charge


def crack_in_three(
    array: np.ndarray,
    start: int,
    end: int,
    low: float,
    high: float,
    rowids: np.ndarray | None = None,
) -> tuple[int, int, CostCharge]:
    """Partition ``array[start:end]`` into ``< low | [low, high) | >= high``.

    Returns:
        ``(split_low, split_high, charge)`` -- absolute positions of the
        first element ``>= low`` and the first ``>= high``.

    Raises:
        CrackerError: if ``low > high`` or bounds are invalid.
    """
    _check_bounds(array, start, end)
    if low > high:
        raise CrackerError(f"crack range inverted: low={low} > high={high}")
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size == 0:
        return start, start, CostCharge(cracks=2)
    view = array[start:end]
    mask_lo = view < low
    mask_hi = view >= high
    mask_mid = ~(mask_lo | mask_hi)
    n_lo = int(np.count_nonzero(mask_lo))
    n_mid = int(np.count_nonzero(mask_mid))
    lo_part = view[mask_lo]
    mid_part = view[mask_mid]
    hi_part = view[mask_hi]
    view[:n_lo] = lo_part
    view[n_lo : n_lo + n_mid] = mid_part
    view[n_lo + n_mid :] = hi_part
    if rowids is not None:
        rview = rowids[start:end]
        rlo = rview[mask_lo]
        rmid = rview[mask_mid]
        rhi = rview[mask_hi]
        rview[:n_lo] = rlo
        rview[n_lo : n_lo + n_mid] = rmid
        rview[n_lo + n_mid :] = rhi
    charge = CostCharge(elements_cracked=size, pieces_touched=1, cracks=2)
    return start + n_lo, start + n_lo + n_mid, charge


def crack_multi(
    array: np.ndarray,
    start: int,
    end: int,
    pivots: list[float],
    rowids: np.ndarray | None = None,
) -> tuple[list[int], CostCharge]:
    """Partition ``array[start:end]`` around many pivots in one go.

    The batch optimization the paper's §3 asks for ("apply multiple
    tuning actions in one go over a single index"): a counting
    partition classifies every element once and scatters it once, so k
    pivots cost two passes instead of k shrinking crack passes.

    Returns:
        ``(splits, charge)`` -- ``splits[i]`` is the absolute position
        of the first element ``>= pivots[i]``.

    Raises:
        CrackerError: if bounds are invalid, pivots are not strictly
            increasing, or row ids are misaligned.
    """
    _check_bounds(array, start, end)
    if not pivots:
        return [], CostCharge()
    if any(a >= b for a, b in zip(pivots, pivots[1:])):
        raise CrackerError(
            f"pivots must be strictly increasing: {pivots}"
        )
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    charge = CostCharge(
        elements_cracked=2 * size,  # classify pass + scatter pass
        pieces_touched=1,
        cracks=len(pivots),
    )
    if size == 0:
        return [start] * len(pivots), charge
    view = array[start:end]
    keys = np.asarray(pivots, dtype=np.float64)
    bins = np.searchsorted(keys, view, side="right")
    order = np.argsort(bins, kind="stable")
    view[:] = view[order]
    if rowids is not None:
        rview = rowids[start:end]
        rview[:] = rview[order]
    counts = np.bincount(bins, minlength=len(pivots) + 1)
    boundaries = start + np.cumsum(counts[:-1])
    return [int(b) for b in boundaries], charge


def sort_piece(
    array: np.ndarray,
    start: int,
    end: int,
    rowids: np.ndarray | None = None,
) -> CostCharge:
    """Fully sort ``array[start:end]`` in place.

    Used by refinement actions that finish small pieces off, and by the
    hybrid crack-sort strategy.  Charged as a sort of ``end - start``
    elements.

    Raises:
        CrackerError: on invalid bounds or misaligned row ids.
    """
    _check_bounds(array, start, end)
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size <= 1:
        return CostCharge(elements_sorted=size)
    if rowids is None:
        array[start:end].sort(kind="quicksort")
    else:
        order = np.argsort(array[start:end], kind="stable")
        array[start:end] = array[start:end][order]
        rowids[start:end] = rowids[start:end][order]
    return CostCharge(elements_sorted=size, pieces_touched=1)


def split_sorted_piece(
    array: np.ndarray, start: int, end: int, pivot: float
) -> tuple[int, CostCharge]:
    """Find the crack position inside an already-sorted piece.

    No data moves: a binary search locates the first element
    ``>= pivot``.

    Raises:
        CrackerError: on invalid bounds.
    """
    _check_bounds(array, start, end)
    offset = int(np.searchsorted(array[start:end], pivot, side="left"))
    charge = CostCharge.for_binary_search(max(1, end - start))
    return start + offset, charge
