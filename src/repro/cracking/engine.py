"""Crack kernels: in-place partitioning of numpy arrays.

These are the physical operators behind database cracking [12]:
``crack_in_two`` partitions a piece around one pivot (elements < pivot
first), ``crack_in_three`` around a closed-open range (used when both
query bounds fall into the same piece, saving one pass).  Both can
permute an aligned row-id array (the cracker map of sideways cracking
[13]) so tuple reconstruction stays possible after cracking.

The kernels return the split position(s) plus a :class:`CostCharge`
counting every element touched, which the clock prices.

Hot-path design (ISSUE 3).  The kernels are *selection*-based: a
cracked piece is an unordered bag -- only the split position is
semantically meaningful -- so instead of the original stable
mask/fancy-index shuffle (two boolean gathers plus two write-backs per
crack) they count the left side and run introselect at that split.

* **value-only cracks**: ``ndarray.partition`` in place -- no
  temporaries, no write-back; ~3x faster than any gather-based stable
  partition.  The classification mask for large pieces lives in a
  reusable :class:`CrackScratch` buffer, so big cracks allocate
  nothing.
* **row-id-tracking cracks** (sideways cracking): one
  ``argpartition`` produces a single permutation applied to the value
  and row-id arrays together through scratch buffers -- the fused
  cracker-map update; alignment between the two arrays is exact.

Split positions, cost charges, tape records and the per-piece value
multisets are identical to the original kernel; only the (deliberately
unspecified) element order inside a piece differs.

``crack_in_two_batch`` cracks many disjoint (piece, pivot) pairs with
one vectorized comparison dispatch over all of them -- the physical
half of the paper's "multiple tuning actions in one go".
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.errors import CrackerError
from repro.simtime.charge import CostCharge

#: First float at/above any int64 (2^63 is exactly representable).
_INT64_MAX_F = 2.0**63
#: int64 min, exactly representable as a float.
_INT64_MIN_F = -(2.0**63)

#: Pieces at/above this many rows evaluate their classification mask
#: into a reusable scratch buffer instead of allocating a fresh one.
CHUNK_THRESHOLD = 16_384

#: ``crack_spans_batch`` gathers only pieces below this many rows into
#: its shared classification buffer; larger pieces are partitioned
#: directly (three-way), where the extra gather/scatter traffic of the
#: batched classification would cost more than the per-call dispatch
#: it saves.
SPAN_GATHER_LIMIT = 4_096


class CrackScratch:
    """Reusable partition buffers (amortized growth, never shrunk).

    One scratch serves one index (all structural operations on a
    :class:`~repro.cracking.index.CrackerIndex` run under its monitor
    lock) or one thread (the module keeps a thread-local default for
    callers that pass none).  Buffers are keyed by name and dtype so
    value and row-id lanes, and the three-way kernel's extra lane, can
    coexist.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, size: int, dtype: np.dtype) -> np.ndarray:
        """A buffer of at least ``size`` elements of ``dtype``."""
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            capacity = max(size, 2 * (0 if buf is None else buf.size))
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
        return buf


_thread_local = threading.local()


def default_scratch() -> CrackScratch:
    """The calling thread's shared scratch (created on first use)."""
    scratch = getattr(_thread_local, "scratch", None)
    if scratch is None:
        scratch = CrackScratch()
        _thread_local.scratch = scratch
    return scratch


def _check_bounds(array: np.ndarray, start: int, end: int) -> None:
    if not 0 <= start <= end <= len(array):
        raise CrackerError(
            f"piece bounds [{start}, {end}) invalid for array of "
            f"{len(array)} rows"
        )


def _count_below(
    view: np.ndarray, pivot: float, scratch: CrackScratch
) -> int:
    """Number of elements ``< pivot`` (scratch mask above the threshold
    so large pieces never allocate a fresh mask)."""
    if view.dtype.kind == "i":
        # Exact integer key: an integer v satisfies ``v < pivot`` iff
        # ``v < ceil(pivot)``.  Comparing against the float pivot
        # directly would promote the piece to float64, rounding values
        # beyond 2^53 onto the pivot and miscounting the split.
        if pivot != pivot:  # NaN compares below nothing
            return 0
        if pivot >= _INT64_MAX_F:
            return view.size
        if pivot < _INT64_MIN_F:
            return 0
        pivot = math.ceil(pivot)
    if view.size >= CHUNK_THRESHOLD:
        mask = scratch.get("mask", view.size, np.dtype(bool))[: view.size]
        np.less(view, pivot, out=mask)
        return int(np.count_nonzero(mask))
    return int(np.count_nonzero(view < pivot))


def _less_mask(
    view: np.ndarray,
    keys: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Elementwise ``view < keys`` with exact integer semantics.

    ``keys`` is float64, element-aligned with ``view``.  Integer views
    compare against ``ceil(keys)`` as int64 (see :func:`_count_below`);
    NaN keys match nothing and keys beyond the int64 range saturate.
    """
    if view.dtype.kind != "i":
        return np.less(view, keys, out=out)
    keys = np.ceil(keys)
    none = ~(keys > _INT64_MIN_F)  # NaN keys land here too
    alln = keys >= _INT64_MAX_F
    safe = np.where(none | alln, 0.0, keys).astype(np.int64)
    mask = np.less(view, safe, out=out)
    mask[none] = False
    mask[alln] = True
    return mask


def _apply_permutation(
    view: np.ndarray,
    rview: np.ndarray | None,
    order: np.ndarray,
    scratch: CrackScratch,
) -> None:
    """Permute ``view`` (and ``rview``) by ``order`` through scratch."""
    size = view.size
    buf = scratch.get("permute_values", size, view.dtype)
    np.take(view, order, out=buf[:size])
    view[:] = buf[:size]
    if rview is not None:
        rbuf = scratch.get("permute_rowids", size, rview.dtype)
        np.take(rview, order, out=rbuf[:size])
        rview[:] = rbuf[:size]


def _partition_two(
    view: np.ndarray,
    pivot: float,
    rview: np.ndarray | None,
    scratch: CrackScratch,
) -> int:
    """In-place partition of ``view`` around ``pivot``.

    Returns the number of elements ``< pivot``.  Without row ids this
    is ``ndarray.partition`` (in-place introselect); with row ids one
    ``argpartition`` produces a single permutation that is applied to
    the value and row-id arrays together (the fused cracker-map
    update), keeping both exactly aligned.
    """
    size = view.size
    n_left = _count_below(view, pivot, scratch)
    if n_left == 0 or n_left == size:
        return n_left
    if rview is None:
        view.partition(n_left - 1)
    else:
        order = np.argpartition(view, n_left - 1)
        _apply_permutation(view, rview, order, scratch)
    return n_left


def crack_in_two(
    array: np.ndarray,
    start: int,
    end: int,
    pivot: float,
    rowids: np.ndarray | None = None,
    scratch: CrackScratch | None = None,
) -> tuple[int, CostCharge]:
    """Partition ``array[start:end]`` so values < pivot come first.

    Returns:
        ``(split, charge)`` -- ``split`` is the absolute position of the
        first element ``>= pivot`` after partitioning.

    Raises:
        CrackerError: on invalid bounds or misaligned row ids.
    """
    _check_bounds(array, start, end)
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size == 0:
        return start, CostCharge(cracks=1)
    n_left = _partition_two(
        array[start:end],
        pivot,
        None if rowids is None else rowids[start:end],
        scratch if scratch is not None else default_scratch(),
    )
    return start + n_left, CostCharge.for_crack(size)


def _partition_three(
    view: np.ndarray,
    rview: np.ndarray | None,
    n_lo: int,
    n_mid: int,
    scratch: CrackScratch,
) -> None:
    """Three-way in-place partition from precomputed band counts.

    Selects at the low split, then at the mid/high split of the right
    remainder; with row ids each selection derives one argpartition
    permutation applied to both arrays.  Shared by
    :func:`crack_in_three` (which counts first) and
    :func:`crack_spans_batch` (which counts all its pieces in one
    vectorized pass).
    """
    size = view.size
    if rview is None:
        if 0 < n_lo < size:
            view.partition(n_lo - 1)
        right = view[n_lo:]
        if 0 < n_mid < right.size:
            right.partition(n_mid - 1)
        return
    if 0 < n_lo < size:
        order = np.argpartition(view, n_lo - 1)
        _apply_permutation(view, rview, order, scratch)
    right = view[n_lo:]
    if 0 < n_mid < right.size:
        order = np.argpartition(right, n_mid - 1)
        _apply_permutation(right, rview[n_lo:], order, scratch)


def crack_in_three(
    array: np.ndarray,
    start: int,
    end: int,
    low: float,
    high: float,
    rowids: np.ndarray | None = None,
    scratch: CrackScratch | None = None,
) -> tuple[int, int, CostCharge]:
    """Partition ``array[start:end]`` into ``< low | [low, high) | >= high``.

    Returns:
        ``(split_low, split_high, charge)`` -- absolute positions of the
        first element ``>= low`` and the first ``>= high``.

    Raises:
        CrackerError: if ``low > high`` or bounds are invalid.
    """
    _check_bounds(array, start, end)
    if low > high:
        raise CrackerError(f"crack range inverted: low={low} > high={high}")
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size == 0:
        return start, start, CostCharge(cracks=2)
    charge = CostCharge(elements_cracked=size, pieces_touched=1, cracks=2)
    if scratch is None:
        scratch = default_scratch()
    view = array[start:end]
    rview = None if rowids is None else rowids[start:end]
    # Three-way selection: count both splits, select at the low split,
    # then at the mid/high split of the right remainder.  Splits and
    # per-band multisets match the original three-mask kernel; element
    # order inside each band is unspecified.
    n_lo = _count_below(view, low, scratch)
    n_below_high = _count_below(view, high, scratch)
    _partition_three(view, rview, n_lo, n_below_high - n_lo, scratch)
    return start + n_lo, start + n_below_high, charge


def crack_in_two_batch(
    array: np.ndarray,
    tasks: list[tuple[int, int, float]],
    rowids: np.ndarray | None = None,
    scratch: CrackScratch | None = None,
    validate: bool = True,
) -> tuple[list[int], list[CostCharge]]:
    """Crack many disjoint pieces, each around its own pivot.

    ``tasks`` is a list of ``(start, end, pivot)`` triples describing
    pairwise-disjoint pieces of ``array``.  All pieces are classified
    with **one** vectorized comparison dispatch (elements gathered into
    scratch against a per-element pivot vector), then scattered back
    piece by piece -- many small cracks pay one numpy dispatch for the
    data-dependent part instead of one each.

    Returns ``(splits, charges)`` aligned with ``tasks``: the absolute
    position of the first element ``>= pivot`` of each piece, and the
    per-piece :class:`CostCharge` (identical to what sequential
    :func:`crack_in_two` calls would have produced).

    Raises:
        CrackerError: on invalid bounds, overlapping pieces, or
            misaligned row ids.
    """
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    if not tasks:
        return [], []
    if validate:
        previous_end = None
        for start, end, _ in sorted(tasks, key=lambda t: (t[0], t[1])):
            _check_bounds(array, start, end)
            if end == start:
                continue  # empty pieces cannot overlap anything
            if previous_end is not None and start < previous_end:
                raise CrackerError(
                    "crack_in_two_batch pieces overlap: "
                    f"[{start}, {end}) begins before {previous_end}"
                )
            previous_end = end
    if scratch is None:
        scratch = default_scratch()
    splits = [0] * len(tasks)
    charges = [
        CostCharge(cracks=1)
        if end == start
        else CostCharge.for_crack(end - start)
        for start, end, _ in tasks
    ]
    # Large pieces are partitioned directly (gathering them into the
    # classification buffer would double their traffic); small pieces
    # -- where per-call dispatch dominates -- share one vectorized
    # comparison over a gathered pivot vector.
    small: list[int] = []
    for task_index, (start, end, pivot) in enumerate(tasks):
        size = end - start
        if size == 0:
            splits[task_index] = start
        elif size >= CHUNK_THRESHOLD:
            n_left = _partition_two(
                array[start:end],
                pivot,
                None if rowids is None else rowids[start:end],
                scratch,
            )
            splits[task_index] = start + n_left
        else:
            small.append(task_index)
    if not small:
        return splits, charges
    sizes = np.array(
        [tasks[t][1] - tasks[t][0] for t in small], dtype=np.int64
    )
    total = int(sizes.sum())
    gathered = scratch.get("batch_values", total, array.dtype)
    offsets = np.zeros(len(small) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    for slot, task_index in enumerate(small):
        start, end, _ = tasks[task_index]
        gathered[offsets[slot] : offsets[slot + 1]] = array[start:end]
    pivot_vector = np.repeat(
        np.array([tasks[t][2] for t in small], dtype=np.float64), sizes
    )
    mask_all = _less_mask(gathered[:total], pivot_vector)
    for slot, task_index in enumerate(small):
        start, end, pivot = tasks[task_index]
        size = end - start
        mask = mask_all[offsets[slot] : offsets[slot + 1]]
        n_left = int(np.count_nonzero(mask))
        splits[task_index] = start + n_left
        if n_left == 0 or n_left == size:
            continue
        view = array[start:end]
        if rowids is None:
            view.partition(n_left - 1)
        else:
            order = np.argpartition(view, n_left - 1)
            _apply_permutation(view, rowids[start:end], order, scratch)
    return splits, charges


def crack_spans_batch(
    array: np.ndarray,
    tasks: list[tuple[int, int, float, float]],
    rowids: np.ndarray | None = None,
    scratch: CrackScratch | None = None,
    validate: bool = True,
) -> list[tuple[int, int]]:
    """Crack many disjoint pieces, each around one *or two* pivots.

    ``tasks`` is a list of ``(start, end, low, high)`` with
    ``low <= high`` describing pairwise-disjoint pieces; a
    single-pivot task simply passes ``low == high``.  The physical
    backbone of a batched select window: every small piece's elements
    are classified against both of its pivots with **two** vectorized
    comparison dispatches over one gathered buffer (per-piece counts
    via ``add.reduceat``), then partitioned in place -- replacing one
    ``crack_in_three`` kernel call per piece with a couple of numpy
    micro-partitions each.  Large pieces are partitioned directly, as
    gathering them would double their traffic.

    Returns ``(split_low, split_high)`` per task: the absolute
    positions of the first element ``>= low`` and ``>= high``.  No
    cost accounting -- callers of this kernel replay charges
    separately (see :mod:`repro.cracking.batch`).

    Raises:
        CrackerError: on invalid bounds, inverted pivots, overlapping
            pieces, or misaligned row ids.
    """
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    if not tasks:
        return []
    if validate:
        previous_end = None
        for start, end, low, high in sorted(tasks):
            _check_bounds(array, start, end)
            if low > high:
                raise CrackerError(
                    f"crack range inverted: low={low} > high={high}"
                )
            if end == start:
                continue
            if previous_end is not None and start < previous_end:
                raise CrackerError(
                    "crack_spans_batch pieces overlap: "
                    f"[{start}, {end}) begins before {previous_end}"
                )
            previous_end = end
    if scratch is None:
        scratch = default_scratch()
    splits: list[tuple[int, int]] = [(0, 0)] * len(tasks)
    small: list[int] = []
    for task_index, (start, end, low, high) in enumerate(tasks):
        size = end - start
        if size == 0:
            splits[task_index] = (start, start)
        elif size >= SPAN_GATHER_LIMIT:
            if low == high:
                n_left = _partition_two(
                    array[start:end],
                    low,
                    None if rowids is None else rowids[start:end],
                    scratch,
                )
                splits[task_index] = (start + n_left, start + n_left)
            else:
                pos_low, pos_high, _charge = crack_in_three(
                    array, start, end, low, high, rowids, scratch
                )
                splits[task_index] = (pos_low, pos_high)
        else:
            small.append(task_index)
    if not small:
        return splits
    sizes = np.array(
        [tasks[t][1] - tasks[t][0] for t in small], dtype=np.int64
    )
    total = int(sizes.sum())
    gathered = scratch.get("spans_values", total, array.dtype)
    offsets = np.zeros(len(small) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    for slot, task_index in enumerate(small):
        start, end, _, _ = tasks[task_index]
        gathered[offsets[slot] : offsets[slot + 1]] = array[start:end]
    view = gathered[:total]
    low_vector = np.repeat(
        np.array([tasks[t][2] for t in small], dtype=np.float64), sizes
    )
    high_vector = np.repeat(
        np.array([tasks[t][3] for t in small], dtype=np.float64), sizes
    )
    below_low = _less_mask(view, low_vector)
    below_high = _less_mask(view, high_vector)
    # dtype matters: np.add over booleans is logical-or, so the counts
    # must accumulate into an integer type.
    n_low = np.add.reduceat(below_low, offsets[:-1], dtype=np.int64)
    n_high = np.add.reduceat(below_high, offsets[:-1], dtype=np.int64)
    for slot, task_index in enumerate(small):
        start, end, low, high = tasks[task_index]
        lo_count = int(n_low[slot])
        hi_count = int(n_high[slot])
        splits[task_index] = (start + lo_count, start + hi_count)
        _partition_three(
            array[start:end],
            None if rowids is None else rowids[start:end],
            lo_count,
            hi_count - lo_count,
            scratch,
        )
    return splits


def crack_multi(
    array: np.ndarray,
    start: int,
    end: int,
    pivots: list[float],
    rowids: np.ndarray | None = None,
    scratch: CrackScratch | None = None,
) -> tuple[list[int], CostCharge]:
    """Partition ``array[start:end]`` around many pivots in one go.

    The batch optimization the paper's §3 asks for ("apply multiple
    tuning actions in one go over a single index"): a counting
    partition classifies every element once and scatters it once, so k
    pivots cost two passes instead of k shrinking crack passes.

    Returns:
        ``(splits, charge)`` -- ``splits[i]`` is the absolute position
        of the first element ``>= pivots[i]``.

    Raises:
        CrackerError: if bounds are invalid, pivots are not strictly
            increasing, or row ids are misaligned.
    """
    _check_bounds(array, start, end)
    if not pivots:
        return [], CostCharge()
    if any(p != p for p in pivots) or any(
        a >= b for a, b in zip(pivots, pivots[1:])
    ):
        raise CrackerError(
            f"pivots must be strictly increasing: {pivots}"
        )
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    charge = CostCharge(
        elements_cracked=2 * size,  # classify pass + scatter pass
        pieces_touched=1,
        cracks=len(pivots),
    )
    if size == 0:
        return [start] * len(pivots), charge
    if scratch is None:
        scratch = default_scratch()
    view = array[start:end]
    if rowids is None:
        # Unstable multi-way selection: recursively introselect at the
        # median pivot -- O(n log k) in place, no permutation arrays.
        splits = [0] * len(pivots)
        stack = [(0, size, 0, len(pivots))]
        while stack:
            lo, hi, first, last = stack.pop()
            if first >= last:
                continue
            mid = (first + last) // 2
            pivot = pivots[mid]
            segment = view[lo:hi]
            n_left = _count_below(segment, pivot, scratch)
            if 0 < n_left < segment.size:
                segment.partition(n_left - 1)
            cut = lo + n_left
            splits[mid] = start + cut
            stack.append((lo, cut, first, mid))
            stack.append((cut, hi, mid + 1, last))
        return splits, charge
    keys = np.asarray(pivots, dtype=np.float64)
    if view.dtype.kind == "i":
        # Exact integer search keys (see _count_below): searching the
        # float pivots directly would promote the piece to float64 and
        # round values beyond 2^53 onto the pivots.  A pivot above the
        # int64 range owns an empty segment at the end; one below sits
        # ahead of every element.
        ceiled = np.ceil(keys)
        low_saturated = int(np.count_nonzero(ceiled <= _INT64_MIN_F))
        mid = ceiled[(ceiled > _INT64_MIN_F) & (ceiled < _INT64_MAX_F)]
        bins = low_saturated + np.searchsorted(
            mid.astype(np.int64), view, side="right"
        )
    else:
        bins = np.searchsorted(keys, view, side="right")
    order = np.argsort(bins, kind="stable")
    permuted = scratch.get("multi_values", size, view.dtype)
    np.take(view, order, out=permuted[:size])
    view[:] = permuted[:size]
    rview = rowids[start:end]
    rpermuted = scratch.get("multi_rowids", size, rview.dtype)
    np.take(rview, order, out=rpermuted[:size])
    rview[:] = rpermuted[:size]
    counts = np.bincount(bins, minlength=len(pivots) + 1)
    boundaries = start + np.cumsum(counts[:-1])
    return [int(b) for b in boundaries], charge


def sort_piece(
    array: np.ndarray,
    start: int,
    end: int,
    rowids: np.ndarray | None = None,
) -> CostCharge:
    """Fully sort ``array[start:end]`` in place.

    Used by refinement actions that finish small pieces off, and by the
    hybrid crack-sort strategy.  Charged as a sort of ``end - start``
    elements.

    Raises:
        CrackerError: on invalid bounds or misaligned row ids.
    """
    _check_bounds(array, start, end)
    if rowids is not None and len(rowids) != len(array):
        raise CrackerError("row-id array must align with the value array")
    size = end - start
    if size <= 1:
        return CostCharge(elements_sorted=size)
    if rowids is None:
        array[start:end].sort(kind="quicksort")
    else:
        order = np.argsort(array[start:end], kind="stable")
        array[start:end] = array[start:end][order]
        rowids[start:end] = rowids[start:end][order]
    return CostCharge(elements_sorted=size, pieces_touched=1)


def split_sorted_piece(
    array: np.ndarray, start: int, end: int, pivot: float
) -> tuple[int, CostCharge]:
    """Find the crack position inside an already-sorted piece.

    No data moves: a binary search locates the first element
    ``>= pivot``.

    Raises:
        CrackerError: on invalid bounds.
    """
    _check_bounds(array, start, end)
    view = array[start:end]
    if array.dtype.kind == "i":
        # Exact integer key (see _count_below): ``v >= pivot`` iff
        # ``v >= ceil(pivot)`` for integer v; NaN and out-of-range
        # pivots resolve without touching the data.
        if pivot != pivot or pivot >= _INT64_MAX_F:
            offset = end - start
        elif pivot < _INT64_MIN_F:
            offset = 0
        else:
            offset = int(
                np.searchsorted(view, math.ceil(pivot), side="left")
            )
    else:
        offset = int(np.searchsorted(view, pivot, side="left"))  # repro: allow[dtype-promotion] -- this branch is the non-integer store; float-vs-float probes are exact
    charge = CostCharge.for_binary_search(max(1, end - start))
    return start + offset, charge
