"""The cracker tape: an append-only log of refinement actions.

Every crack, sort or merge on a cracker index is recorded with its
origin (query-driven vs tuning-driven), virtual timestamp and the size
of the piece it refined.  The tape powers:

* the Figure-1 style timeline reproduction (`repro.bench.timeline`);
* the workload monitor's view of *who* refined *what* and *when*;
* debugging and the concurrency simulator's conflict analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cracking.piece import CrackOrigin


@dataclass(frozen=True, slots=True)
class TapeRecord:
    """One refinement action on a cracker index."""

    timestamp: float
    origin: CrackOrigin
    pivot: float
    position: int
    piece_size: int

    def __repr__(self) -> str:
        return (
            f"TapeRecord(t={self.timestamp:.6f}, {self.origin.value}, "
            f"pivot={self.pivot}, pos={self.position}, "
            f"piece={self.piece_size})"
        )


class CrackTape:
    """Append-only refinement log with per-origin counters."""

    def __init__(self) -> None:
        self._records: list[TapeRecord] = []
        self._counts: dict[CrackOrigin, int] = {o: 0 for o in CrackOrigin}

    def record(
        self,
        timestamp: float,
        origin: CrackOrigin,
        pivot: float,
        position: int,
        piece_size: int,
    ) -> TapeRecord:
        """Append one action and return its record."""
        entry = TapeRecord(timestamp, origin, pivot, position, piece_size)
        self._records.append(entry)
        self._counts[origin] += 1
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TapeRecord]:
        return iter(self._records)

    def records(self) -> list[TapeRecord]:
        """All records, oldest first (copy)."""
        return list(self._records)

    def count(self, origin: CrackOrigin | None = None) -> int:
        """Number of actions, optionally filtered by origin."""
        if origin is None:
            return len(self._records)
        return self._counts[origin]

    def last(self) -> TapeRecord | None:
        """The most recent record, or None when empty."""
        return self._records[-1] if self._records else None

    def since(self, timestamp: float) -> list[TapeRecord]:
        """Records strictly newer than ``timestamp``."""
        return [r for r in self._records if r.timestamp > timestamp]

    def clear(self) -> None:
        self._records.clear()
        self._counts = {o: 0 for o in CrackOrigin}
