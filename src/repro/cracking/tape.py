"""The cracker tape: an append-only log of refinement actions.

Every crack, sort or merge on a cracker index is recorded with its
origin (query-driven vs tuning-driven), virtual timestamp and the size
of the piece it refined.  The tape powers:

* the Figure-1 style timeline reproduction (`repro.bench.timeline`);
* the workload monitor's view of *who* refined *what* and *when*;
* debugging and the concurrency simulator's conflict analysis.

When parallel tuning workers are active each record also carries the
id of the worker that performed it (``None`` for foreground/serial
work, so serial runs produce byte-identical tapes), and the tape
counts per-worker *contention stalls* -- latch acquisitions that had
to wait for another worker or a foreground query.  Appends are guarded
by a lock so worker threads can share one tape.

Hot-path design (ISSUE 3).  Recording is a ring-buffer append of a raw
tuple; :class:`TapeRecord` objects are materialized lazily on read, so
the steady state pays one tuple and one deque append per crack instead
of a dataclass construction.  Two optional knobs bound the
instrumentation tax further:

* ``capacity`` -- keep only the newest N records (the deque ring
  buffer drops the oldest); per-origin counters stay exact.
* ``sample_every`` -- store every k-th record only.  Counters still
  see every action, so :meth:`count` is exact while ``len(tape)``
  reflects what was retained.

Both default to full recording, which is byte-identical to the
original tape.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.cracking.piece import CrackOrigin
from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TapeRecord:
    """One refinement action on a cracker index."""

    timestamp: float
    origin: CrackOrigin
    pivot: float
    position: int
    piece_size: int
    worker: int | None = None

    def __repr__(self) -> str:
        suffix = "" if self.worker is None else f", worker={self.worker}"
        return (
            f"TapeRecord(t={self.timestamp:.6f}, {self.origin.value}, "
            f"pivot={self.pivot}, pos={self.position}, "
            f"piece={self.piece_size}{suffix})"
        )


class CrackTape:
    """Append-only refinement log with per-origin counters.

    Args:
        capacity: retain at most this many records (ring buffer);
            ``None`` retains everything.
        sample_every: store every k-th action only (>= 1).  Counters
            remain exact regardless.
    """

    def __init__(
        self, capacity: int | None = None, sample_every: int = 1
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigError(
                f"tape capacity must be >= 1 or None, got {capacity}"
            )
        if sample_every < 1:
            raise ConfigError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.capacity = capacity
        self.sample_every = sample_every
        #: Raw (timestamp, origin, pivot, position, piece_size, worker)
        #: tuples; TapeRecord objects are built lazily on read.
        self._records: deque[tuple] = deque(maxlen=capacity)
        #: Keyed by ``CrackOrigin.value`` -- string hashing is cheaper
        #: than enum hashing on the per-crack path.
        self._counts: dict[str, int] = {o.value: 0 for o in CrackOrigin}
        self._seen = 0
        self._stalls: dict[int | None, int] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: Until some thread takes attribution (or a worker pool marks
        #: the tape), every append happens on one thread and the lock
        #: is skipped -- one less acquire/release per crack.
        self._concurrent = False

    def mark_concurrent(self) -> None:
        """Switch appends to the locked path (worker threads ahead).

        One-way: once concurrent, always concurrent.  Called by the
        tuning worker pool on construction and implicitly by
        :meth:`attribution`.
        """
        self._concurrent = True

    # -- worker attribution --------------------------------------------

    @contextmanager
    def attribution(self, worker: int | None) -> Iterator[None]:
        """Attribute records made by this thread to ``worker``."""
        self._concurrent = True
        previous = getattr(self._tls, "worker", None)
        self._tls.worker = worker
        try:
            yield
        finally:
            self._tls.worker = previous

    def current_worker(self) -> int | None:
        """The worker id attributed to the calling thread, if any."""
        return getattr(self._tls, "worker", None)

    def note_stall(self, worker: int | None = None) -> None:
        """Count one contention stall (a latch wait) for ``worker``.

        With no explicit worker the calling thread's attribution is
        used, so latched index access can report stalls without knowing
        which worker drives it.
        """
        if worker is None:
            worker = self.current_worker()
        with self._lock:
            self._stalls[worker] = self._stalls.get(worker, 0) + 1

    def stall_count(self, worker: int | None = ...) -> int:  # type: ignore[assignment]
        """Stalls recorded, total or for one worker id."""
        with self._lock:
            if worker is ...:
                return sum(self._stalls.values())
            return self._stalls.get(worker, 0)

    def records_by_worker(self) -> dict[int | None, int]:
        """Record counts keyed by worker id (None = foreground).

        Counts *retained* records (after any capacity/sampling drops).
        """
        with self._lock:
            counts: dict[int | None, int] = {}
            for raw in self._records:
                counts[raw[5]] = counts.get(raw[5], 0) + 1
            return counts

    # -- recording ------------------------------------------------------

    def log(
        self,
        timestamp: float,
        origin: CrackOrigin,
        pivot: float,
        position: int,
        piece_size: int,
        worker: int | None = None,
    ) -> tuple | None:
        """Append one action without materializing a :class:`TapeRecord`.

        The hot-path variant of :meth:`record`: the index logs every
        crack but never reads the record back, so the dataclass is not
        constructed.  Returns the raw stored tuple, or ``None`` when
        the sampling mode dropped it (counters are updated regardless).
        """
        if not self._concurrent:
            # Single-threaded fast path: no attribution is possible
            # (taking one flips the flag), so ``worker`` stands as
            # given and the lock is unnecessary.
            raw = (timestamp, origin, pivot, position, piece_size, worker)
            self._counts[origin.value] += 1
            self._seen += 1
            if (
                self.sample_every != 1
                and (self._seen - 1) % self.sample_every
            ):
                return None
            self._records.append(raw)
            return raw
        if worker is None:
            worker = getattr(self._tls, "worker", None)
        raw = (timestamp, origin, pivot, position, piece_size, worker)
        with self._lock:
            self._counts[origin.value] += 1
            self._seen += 1
            if (
                self.sample_every != 1
                and (self._seen - 1) % self.sample_every
            ):
                return None
            self._records.append(raw)
        return raw

    def record(
        self,
        timestamp: float,
        origin: CrackOrigin,
        pivot: float,
        position: int,
        piece_size: int,
        worker: int | None = None,
    ) -> TapeRecord | None:
        """Append one action; return its record (None when sampled out).

        ``worker`` defaults to the calling thread's attribution (see
        :meth:`attribution`); foreground/serial work records ``None``.
        """
        raw = self.log(
            timestamp, origin, pivot, position, piece_size, worker
        )
        return None if raw is None else TapeRecord(*raw)

    def __len__(self) -> int:
        """Number of *retained* records (== actions when unsampled)."""
        return len(self._records)

    def __iter__(self) -> Iterator[TapeRecord]:
        return iter(self.records())

    def records(self) -> list[TapeRecord]:
        """All retained records, oldest first (materialized copies)."""
        with self._lock:
            return [TapeRecord(*raw) for raw in self._records]

    def count(self, origin: CrackOrigin | None = None) -> int:
        """Number of actions seen, optionally filtered by origin.

        Exact even under ``capacity``/``sample_every`` limits.
        """
        if origin is None:
            return self._seen
        return self._counts[origin.value]

    def last(self) -> TapeRecord | None:
        """The most recent retained record, or None when empty."""
        with self._lock:
            if not self._records:
                return None
            return TapeRecord(*self._records[-1])

    def since(self, timestamp: float) -> list[TapeRecord]:
        """Retained records strictly newer than ``timestamp``."""
        return [r for r in self.records() if r.timestamp > timestamp]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._counts = {o.value: 0 for o in CrackOrigin}
            self._seen = 0
            self._stalls.clear()

    # -- persistence -----------------------------------------------------

    def export_state(self) -> dict:
        """Plain-structure dump of the retained ring buffer + counters.

        Records come out as parallel lists (the snapshot layer packs
        them into typed arrays); ``worker`` is encoded as ``-1`` for
        foreground/serial records so the columns stay numeric.
        """
        with self._lock:
            raw = list(self._records)
            return {
                "timestamps": [r[0] for r in raw],
                "origins": [r[1].value for r in raw],
                "pivots": [float(r[2]) for r in raw],
                "positions": [int(r[3]) for r in raw],
                "piece_sizes": [int(r[4]) for r in raw],
                "workers": [-1 if r[5] is None else int(r[5]) for r in raw],
                "counts": dict(self._counts),
                "seen": self._seen,
                "stalls": {
                    ("" if k is None else str(k)): v
                    for k, v in self._stalls.items()
                },
            }

    def restore_state(self, state: dict) -> None:
        """Adopt a previously-exported tape state (snapshot restore).

        Capacity and sampling knobs stay as configured on this tape;
        the restored records refill the ring buffer oldest-first (a
        smaller capacity keeps the newest, as a live tape would).
        """
        with self._lock:
            self._records = deque(maxlen=self.capacity)
            origins = {o.value: o for o in CrackOrigin}
            for ts, origin, pivot, pos, size, worker in zip(
                state["timestamps"],
                state["origins"],
                state["pivots"],
                state["positions"],
                state["piece_sizes"],
                state["workers"],
            ):
                self._records.append(
                    (
                        float(ts),
                        origins[origin],
                        float(pivot),
                        int(pos),
                        int(size),
                        None if int(worker) < 0 else int(worker),
                    )
                )
            self._counts = {
                o.value: int(state["counts"].get(o.value, 0))
                for o in CrackOrigin
            }
            self._seen = int(state["seen"])
            self._stalls = {
                (None if key == "" else int(key)): int(value)
                for key, value in state["stalls"].items()
            }
