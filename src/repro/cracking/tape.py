"""The cracker tape: an append-only log of refinement actions.

Every crack, sort or merge on a cracker index is recorded with its
origin (query-driven vs tuning-driven), virtual timestamp and the size
of the piece it refined.  The tape powers:

* the Figure-1 style timeline reproduction (`repro.bench.timeline`);
* the workload monitor's view of *who* refined *what* and *when*;
* debugging and the concurrency simulator's conflict analysis.

When parallel tuning workers are active each record also carries the
id of the worker that performed it (``None`` for foreground/serial
work, so serial runs produce byte-identical tapes), and the tape
counts per-worker *contention stalls* -- latch acquisitions that had
to wait for another worker or a foreground query.  Appends are guarded
by a lock so worker threads can share one tape.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.cracking.piece import CrackOrigin


@dataclass(frozen=True, slots=True)
class TapeRecord:
    """One refinement action on a cracker index."""

    timestamp: float
    origin: CrackOrigin
    pivot: float
    position: int
    piece_size: int
    worker: int | None = None

    def __repr__(self) -> str:
        suffix = "" if self.worker is None else f", worker={self.worker}"
        return (
            f"TapeRecord(t={self.timestamp:.6f}, {self.origin.value}, "
            f"pivot={self.pivot}, pos={self.position}, "
            f"piece={self.piece_size}{suffix})"
        )


class CrackTape:
    """Append-only refinement log with per-origin counters."""

    def __init__(self) -> None:
        self._records: list[TapeRecord] = []
        self._counts: dict[CrackOrigin, int] = {o: 0 for o in CrackOrigin}
        self._stalls: dict[int | None, int] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- worker attribution --------------------------------------------

    @contextmanager
    def attribution(self, worker: int | None) -> Iterator[None]:
        """Attribute records made by this thread to ``worker``."""
        previous = getattr(self._tls, "worker", None)
        self._tls.worker = worker
        try:
            yield
        finally:
            self._tls.worker = previous

    def current_worker(self) -> int | None:
        """The worker id attributed to the calling thread, if any."""
        return getattr(self._tls, "worker", None)

    def note_stall(self, worker: int | None = None) -> None:
        """Count one contention stall (a latch wait) for ``worker``.

        With no explicit worker the calling thread's attribution is
        used, so latched index access can report stalls without knowing
        which worker drives it.
        """
        if worker is None:
            worker = self.current_worker()
        with self._lock:
            self._stalls[worker] = self._stalls.get(worker, 0) + 1

    def stall_count(self, worker: int | None = ...) -> int:  # type: ignore[assignment]
        """Stalls recorded, total or for one worker id."""
        with self._lock:
            if worker is ...:
                return sum(self._stalls.values())
            return self._stalls.get(worker, 0)

    def records_by_worker(self) -> dict[int | None, int]:
        """Record counts keyed by worker id (None = foreground)."""
        with self._lock:
            counts: dict[int | None, int] = {}
            for record in self._records:
                counts[record.worker] = counts.get(record.worker, 0) + 1
            return counts

    # -- recording ------------------------------------------------------

    def record(
        self,
        timestamp: float,
        origin: CrackOrigin,
        pivot: float,
        position: int,
        piece_size: int,
        worker: int | None = None,
    ) -> TapeRecord:
        """Append one action and return its record.

        ``worker`` defaults to the calling thread's attribution (see
        :meth:`attribution`); foreground/serial work records ``None``.
        """
        if worker is None:
            worker = self.current_worker()
        entry = TapeRecord(
            timestamp, origin, pivot, position, piece_size, worker
        )
        with self._lock:
            self._records.append(entry)
            self._counts[origin] += 1
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TapeRecord]:
        return iter(self.records())

    def records(self) -> list[TapeRecord]:
        """All records, oldest first (copy)."""
        with self._lock:
            return list(self._records)

    def count(self, origin: CrackOrigin | None = None) -> int:
        """Number of actions, optionally filtered by origin."""
        if origin is None:
            return len(self._records)
        return self._counts[origin]

    def last(self) -> TapeRecord | None:
        """The most recent record, or None when empty."""
        with self._lock:
            return self._records[-1] if self._records else None

    def since(self, timestamp: float) -> list[TapeRecord]:
        """Records strictly newer than ``timestamp``."""
        return [r for r in self.records() if r.timestamp > timestamp]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._counts = {o: 0 for o in CrackOrigin}
            self._stalls.clear()
