"""Hybrid adaptive indexing: crack the chunks, sort the survivors.

Implements the hybrid crack-sort (HCS) design of "Merging what's
cracked, cracking what's merged" (Idreos et al., PVLDB 2011 -- the
paper's [14]).  The column is split into fixed-size initial chunks,
each with its own piece map.  A range select:

1. checks whether the requested value range is already *covered* by the
   final store; if so, two binary searches answer it;
2. otherwise cracks every chunk at the uncovered sub-ranges, copies the
   qualifying values out, merges them into the sorted final store, and
   records the new coverage.

Early queries therefore pay chunk-local cracks (cheap: pieces never
exceed the chunk size), while frequently-queried ranges migrate into a
fully sorted index -- adaptive merging.
"""

from __future__ import annotations

import numpy as np

from repro.cracking.piecemap import PieceMap
from repro.cracking.engine import crack_in_two
from repro.errors import ConfigError, QueryError
from repro.simtime.charge import CostCharge
from repro.simtime.clock import Clock, SimClock
from repro.storage.column import Column
from repro.storage.updates import exact_range_cuts
from repro.storage.views import RangeView
from repro.util.intervals import IntervalSet


class _Chunk:
    """One initial partition of the column with its own piece map."""

    __slots__ = ("values", "pieces")

    def __init__(self, values: np.ndarray) -> None:
        self.values = values
        self.pieces = PieceMap(len(values))

    def extract_range(
        self, low: float, high: float
    ) -> tuple[np.ndarray, CostCharge]:
        """Crack at ``low``/``high`` and return qualifying values."""
        charge = CostCharge()
        positions = []
        for bound in (low, high):
            if self.pieces.has_pivot(bound):
                positions.append(self.pieces.position_of_pivot(bound))
                charge += CostCharge.for_binary_search(
                    self.pieces.piece_count
                )
                continue
            piece = self.pieces.piece_for_value(bound)
            split, crack_charge = crack_in_two(
                self.values, piece.start, piece.end, bound
            )
            self.pieces.add_crack(bound, split)
            positions.append(split)
            charge += crack_charge
        start, end = positions
        return self.values[start:end], charge


class HybridCrackSortIndex:
    """Adaptive-merging index over one column (HCS of [14]).

    Args:
        column: the base column.
        clock: shared time source; private :class:`SimClock` by default.
        chunk_rows: size of the initial partitions (the published
            algorithm uses memory-sized runs; any positive value works).
    """

    def __init__(
        self,
        column: Column,
        clock: Clock | None = None,
        chunk_rows: int = 1 << 16,
    ) -> None:
        if chunk_rows <= 0:
            raise ConfigError(f"chunk_rows must be positive: {chunk_rows}")
        self.column = column
        self.clock: Clock = clock if clock is not None else SimClock()
        self.chunk_rows = chunk_rows
        base = column.copy_values()
        self._chunks = [
            _Chunk(base[i : i + chunk_rows])
            for i in range(0, len(base), chunk_rows)
        ]
        self._final = np.empty(0, dtype=base.dtype)
        self._coverage = IntervalSet()
        self.merges = 0

    # -- inspection ------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def final_row_count(self) -> int:
        """Rows migrated into the sorted final store."""
        return len(self._final)

    @property
    def coverage(self) -> IntervalSet:
        return self._coverage

    @property
    def final_values(self) -> np.ndarray:
        return self._final

    def is_covered(self, low: float, high: float) -> bool:
        """Whether ``[low, high)`` is fully served by the final store."""
        return self._coverage.covers(low, high)

    # -- select ----------------------------------------------------------

    def select_range(self, low: float, high: float) -> RangeView:
        """Answer ``low <= value < high``; migrate uncovered sub-ranges.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"range inverted: low={low} > high={high}")
        gaps = self._coverage.uncovered_parts(low, high)
        if gaps:
            self._merge_gaps(gaps)
        start = int(exact_range_cuts(self._final, low))
        end = int(exact_range_cuts(self._final, high))
        self.clock.charge(
            CostCharge.for_binary_search(max(1, len(self._final)))
            + CostCharge.for_binary_search(max(1, len(self._final)))
        )
        return RangeView(self._final, start, end)

    def _merge_gaps(self, gaps: list[tuple[float, float]]) -> None:
        """Pull every gap's values out of the chunks into the final store."""
        incoming: list[np.ndarray] = []
        total_charge = CostCharge()
        for gap_low, gap_high in gaps:
            for chunk in self._chunks:
                extracted, charge = chunk.extract_range(gap_low, gap_high)
                total_charge += charge
                if len(extracted):
                    incoming.append(extracted.copy())
            self._coverage.add(gap_low, gap_high)
        if incoming:
            fresh = np.concatenate(incoming)
            fresh.sort(kind="quicksort")
            merged = np.empty(
                len(self._final) + len(fresh), dtype=self._final.dtype
            )
            # Classic two-run merge priced as merge work, not a re-sort.
            merge_sorted_into(self._final, fresh, merged)
            self._final = merged
            total_charge += CostCharge(
                elements_sorted=len(fresh),
                elements_merged=len(merged),
            )
            self.merges += 1
        self.clock.charge(total_charge)


def merge_sorted_into(
    left: np.ndarray, right: np.ndarray, out: np.ndarray
) -> None:
    """Merge two sorted arrays into ``out`` (which must be presized).

    Raises:
        QueryError: if ``out`` has the wrong length.
    """
    if len(out) != len(left) + len(right):
        raise QueryError(
            f"merge output size {len(out)} != {len(left)} + {len(right)}"
        )
    # np.searchsorted gives each right-element's slot; vectorized merge.
    positions = np.searchsorted(left, right, side="right")
    positions = positions + np.arange(len(right))
    mask = np.ones(len(out), dtype=bool)
    mask[positions] = False
    out[mask] = left
    out[positions] = right
