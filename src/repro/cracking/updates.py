"""Update merging for cracked columns.

Following "Updating a Cracked Database" (the paper's [11]), pending
inserts and deletes stay in the column's delta store until a query
touches their value range; the touched sub-set is then merged into the
cracker column piece by piece, keeping every piece invariant intact.

:class:`MaintainedCrackerIndex` wraps the merge into the select path so
callers always see up-to-date results.
"""

from __future__ import annotations

import numpy as np

from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin
from repro.errors import CrackerError
from repro.simtime.charge import CostCharge
from repro.storage.updates import PendingUpdates
from repro.storage.views import RangeView


def merge_inserts(index: CrackerIndex, values: np.ndarray) -> int:
    """Physically insert ``values`` into the cracker column.

    Each value lands at the end of the piece owning its value range
    (pieces are unsorted internally, so any in-piece slot is valid;
    sorted pieces lose their flag).  Cuts shift by the per-piece
    insertion counts.  Returns the number of rows inserted.

    Raises:
        CrackerError: if the index tracks row ids (the base column
            cannot grow, so the cracker map would dangle).
    """
    if index.rowids is not None:
        raise CrackerError(
            "cannot merge inserts into a row-id-tracking index; "
            "rebuild the column instead"
        )
    index.ensure_values_fit(np.asarray(values))
    values = np.sort(np.asarray(values, dtype=index.values.dtype))
    if len(values) == 0:
        return 0
    pieces = index.piece_map
    pivots = np.asarray(pieces.pivots(), dtype=np.float64)
    destinations = np.searchsorted(pivots, values, side="right")
    counts = np.bincount(destinations, minlength=pieces.piece_count)

    segments: list[np.ndarray] = []
    cursor = 0
    old = index.values
    for piece_index in range(pieces.piece_count):
        piece = pieces.piece_at_index(piece_index)
        segments.append(old[piece.start : piece.end])
        take = int(counts[piece_index])
        if take:
            segments.append(values[cursor : cursor + take])
            cursor += take
            if piece.is_sorted:
                pieces.mark_unsorted(piece_index)
    merged = np.concatenate(segments)
    index._array = merged  # noqa: SLF001 - deliberate kernel-internal move
    pieces.apply_deltas([int(c) for c in counts])
    index.clock.charge(
        CostCharge(
            elements_merged=len(merged),
            pieces_touched=int(np.count_nonzero(counts)),
        )
    )
    index.tape.record(
        index.clock.now(),
        CrackOrigin.MERGE,
        float(values[0]),
        0,
        len(values),
    )
    return len(values)


def merge_deletes(index: CrackerIndex, values: np.ndarray) -> int:
    """Physically remove one occurrence per value from the index.

    Values are matched inside the piece owning their range; missing
    values are ignored (they may have been superseded).  Returns the
    number of rows actually removed.

    Raises:
        CrackerError: if the index tracks row ids.
    """
    if index.rowids is not None:
        raise CrackerError(
            "cannot merge deletes into a row-id-tracking index; "
            "rebuild the column instead"
        )
    # Out-of-range targets must not wrap into deletable in-range values
    # on a narrowed column; widening first keeps the match exact.
    index.ensure_values_fit(np.asarray(values))
    values = np.sort(np.asarray(values, dtype=index.values.dtype))
    if len(values) == 0:
        return 0
    pieces = index.piece_map
    pivots = np.asarray(pieces.pivots(), dtype=np.float64)
    destinations = np.searchsorted(pivots, values, side="right")

    segments: list[np.ndarray] = []
    deltas = [0] * pieces.piece_count
    removed_total = 0
    old = index.values
    for piece_index in range(pieces.piece_count):
        piece = pieces.piece_at_index(piece_index)
        chunk = old[piece.start : piece.end]
        targets = values[destinations == piece_index]
        if len(targets) == 0:
            segments.append(chunk)
            continue
        keep = np.ones(len(chunk), dtype=bool)
        for value, multiplicity in zip(
            *np.unique(targets, return_counts=True)
        ):
            hits = np.flatnonzero((chunk == value) & keep)
            for hit in hits[: int(multiplicity)]:
                keep[hit] = False
        removed = int(np.count_nonzero(~keep))
        removed_total += removed
        deltas[piece_index] = -removed
        segments.append(chunk[keep])
    merged = np.concatenate(segments) if segments else old[:0]
    index._array = merged  # noqa: SLF001 - deliberate kernel-internal move
    pieces.apply_deltas(deltas)
    index.clock.charge(
        CostCharge(
            elements_merged=len(old),
            pieces_touched=sum(1 for d in deltas if d),
        )
    )
    index.tape.record(
        index.clock.now(),
        CrackOrigin.MERGE,
        float(values[0]),
        0,
        removed_total,
    )
    return removed_total


class MaintainedCrackerIndex(CrackerIndex):
    """A cracker index that ripples pending updates in on demand.

    Args:
        column: base column.
        pending: the column's delta store; consulted on every select.
        **kwargs: forwarded to :class:`CrackerIndex` (row-id tracking
            is rejected, see :func:`merge_inserts`).
    """

    def __init__(self, column, pending: PendingUpdates, **kwargs) -> None:
        if kwargs.get("track_rowids"):
            raise CrackerError(
                "MaintainedCrackerIndex does not support row-id tracking"
            )
        super().__init__(column, **kwargs)
        self._pending = pending

    def select_range(
        self,
        low: float,
        high: float,
        origin: CrackOrigin = CrackOrigin.QUERY,
    ) -> RangeView:
        """Merge pending updates overlapping the range, then select."""
        inserts = self._pending.take_inserts_in_range(low, high)
        if len(inserts):
            merge_inserts(self, inserts)
        deletes = self._pending.take_deletes_in_range(low, high)
        if len(deletes):
            merge_deletes(self, deletes)
        return super().select_range(low, high, origin)
