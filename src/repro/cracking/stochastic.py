"""Stochastic cracking: robustness against unfavourable workloads.

Plain cracking refines only at query bounds, so sequential workloads
(e.g. a range sweep) degrade to repeated near-full-column cracks.
Stochastic cracking (Halim et al., PVLDB 2012, the paper's [10]) fixes
this by injecting data- or random-driven cracks during the select
itself.  Three published variants are implemented:

* ``DDC`` -- recursively crack the touched piece at the *center* of its
  value range until it is small, then crack at the query bound;
* ``DDR`` -- like DDC but each recursion pivots on a *random* value
  inside the piece's range;
* ``MDD1R`` -- do not crack at the query bounds at all: each touched
  piece receives exactly one random crack, and the result is built by
  filtering (materializing) the touched pieces.

All variants share :class:`CrackerIndex` machinery so their refinement
actions land on the same tape/clock as everything else.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin, Piece
from repro.errors import ConfigError, QueryError
from repro.simtime.charge import CostCharge
from repro.storage.views import MaterializedResult, SelectionResult

_VARIANTS = ("ddc", "ddr", "mdd1r")


class StochasticCrackerIndex(CrackerIndex):
    """A cracker index with stochastic select-time refinement.

    Args:
        variant: ``ddc``, ``ddr`` or ``mdd1r`` (case-insensitive).
        stop_piece_size: recursion stops once pieces are at most this
            many rows (the published variants use the L1/L2 cache size).
        seed: seed for the variant's private random generator.
        **kwargs: forwarded to :class:`CrackerIndex`.
    """

    def __init__(
        self,
        column,
        variant: str = "ddr",
        stop_piece_size: int = 16_384,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        variant = variant.lower()
        if variant not in _VARIANTS:
            raise ConfigError(
                f"unknown stochastic variant {variant!r}; "
                f"supported: {', '.join(_VARIANTS)}"
            )
        if stop_piece_size < 2:
            raise ConfigError(
                f"stop_piece_size must be >= 2, got {stop_piece_size}"
            )
        super().__init__(column, **kwargs)
        self.variant = variant
        self.stop_piece_size = stop_piece_size
        self._rng = np.random.default_rng(seed)

    # -- helpers ---------------------------------------------------------

    def _clamped_bounds(self, piece: Piece) -> tuple[float, float]:
        """Piece value bounds with infinities clamped to column stats."""
        stats = self.column.stats
        low = piece.low if piece.low != -math.inf else stats.min_value
        high = piece.high if piece.high != math.inf else stats.max_value
        return low, high

    def _shrink_piece_around(self, value: float) -> None:
        """Recursively crack the piece containing ``value`` until small."""
        guard = 0
        while guard < 64:
            guard += 1
            piece = self.piece_map.piece_for_value(value)
            if piece.size <= self.stop_piece_size or piece.is_sorted:
                return
            low, high = self._clamped_bounds(piece)
            if high <= low:
                return
            if self.variant == "ddc":
                pivot = (low + high) / 2.0
            else:
                pivot = float(self._rng.uniform(low, high))
            if self.piece_map.has_pivot(pivot) or not (low < pivot < high):
                return
            self.ensure_cut(pivot, CrackOrigin.TUNING)

    # -- select ----------------------------------------------------------

    def select_range(
        self,
        low: float,
        high: float,
        origin: CrackOrigin = CrackOrigin.QUERY,
    ) -> SelectionResult:
        """Stochastic select; semantics match the plain index.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"range inverted: low={low} > high={high}")
        if self.variant == "mdd1r":
            return self._select_mdd1r(low, high)
        self._shrink_piece_around(low)
        self._shrink_piece_around(high)
        return super().select_range(low, high, origin)

    def _select_mdd1r(self, low: float, high: float) -> SelectionResult:
        """MDD1R: one random crack per touched piece, filtered result."""
        first = self.piece_map.piece_index_for_value(low)
        last = self.piece_map.piece_index_for_value(high)
        chunks: list[np.ndarray] = []
        scanned = 0
        for index in range(first, last + 1):
            piece = self.piece_map.piece_at_index(index)
            if piece.size == 0:
                continue
            chunk = self._array[piece.start : piece.end]
            mask = (chunk >= low) & (chunk < high)
            chunks.append(chunk[mask])
            scanned += piece.size
        result = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=self._array.dtype)
        )
        self.clock.charge(
            CostCharge(
                elements_scanned=scanned,
                elements_materialized=len(result),
                pieces_touched=max(0, last - first + 1),
            )
        )
        # One random refinement per touched *large* piece keeps future
        # selects cheap without paying full query-bound cracks now.
        for index in (first, last):
            piece = self.piece_map.piece_at_index(
                min(index, self.piece_count - 1)
            )
            if piece.size > self.stop_piece_size and not piece.is_sorted:
                piece_low, piece_high = self._clamped_bounds(piece)
                if piece_high > piece_low:
                    pivot = float(
                        self._rng.uniform(piece_low, piece_high)
                    )
                    if not self.piece_map.has_pivot(pivot):
                        self.ensure_cut(pivot, CrackOrigin.TUNING)
        return MaterializedResult(result)
