"""Adaptive indexing substrate: database cracking and its extensions.

Reproduces the MonetDB cracking module the paper builds on [12], plus
the cited extensions that define the adaptive-indexing design space:
stochastic cracking [10], hybrid crack-sort (adaptive merging) [14],
update merging [11] and piece-level concurrency control [7].
"""

from repro.cracking.concurrency import (
    ClientQuery,
    ConcurrentCrackScheduler,
    LatchMode,
    LatchedCrackerAccess,
    PieceLatchManager,
    PieceLatchTable,
    ReadWriteLatch,
    ScheduleReport,
)
from repro.cracking.engine import (
    CrackScratch,
    crack_in_three,
    crack_in_two,
    crack_in_two_batch,
    crack_multi,
    sort_piece,
    split_sorted_piece,
)
from repro.cracking.hybrid import HybridCrackSortIndex, merge_sorted_into
from repro.cracking.index import CrackerIndex
from repro.cracking.piece import CrackOrigin, Piece
from repro.cracking.piecemap import PieceMap
from repro.cracking.sideways import SidewaysCrackerIndex
from repro.cracking.stochastic import StochasticCrackerIndex
from repro.cracking.tape import CrackTape, TapeRecord
from repro.cracking.updates import (
    MaintainedCrackerIndex,
    merge_deletes,
    merge_inserts,
)

__all__ = [
    "ClientQuery",
    "ConcurrentCrackScheduler",
    "CrackOrigin",
    "CrackScratch",
    "CrackTape",
    "CrackerIndex",
    "HybridCrackSortIndex",
    "LatchMode",
    "LatchedCrackerAccess",
    "MaintainedCrackerIndex",
    "Piece",
    "PieceLatchManager",
    "PieceLatchTable",
    "PieceMap",
    "ReadWriteLatch",
    "ScheduleReport",
    "SidewaysCrackerIndex",
    "StochasticCrackerIndex",
    "TapeRecord",
    "crack_in_three",
    "crack_in_two",
    "crack_in_two_batch",
    "crack_multi",
    "merge_deletes",
    "merge_inserts",
    "merge_sorted_into",
    "sort_piece",
    "split_sorted_piece",
]
