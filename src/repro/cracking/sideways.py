"""Sideways cracking: multi-attribute queries over cracked columns.

"Self-organizing tuple reconstruction in column-stores" (Idreos et
al., SIGMOD 2009 -- the paper's [13]) observes that cracking one
column destroys positional alignment with the others, making
``select A, project B`` expensive.  Sideways cracking maintains
*cracker maps*: per (selection, projection) attribute pair, a pair of
physically aligned arrays that crack together, so a range select on A
yields B's qualifying values as a contiguous view.

:class:`SidewaysCrackerIndex` implements the map-pair core: the head
(selection) column drags its tail (projection) column through every
crack.  Maps are created lazily per projection attribute and refined
independently -- partial sideways cracking.
"""

from __future__ import annotations

import numpy as np

from repro.cracking.engine import crack_in_three, crack_in_two
from repro.cracking.piecemap import PieceMap
from repro.errors import CrackerError, QueryError
from repro.simtime.charge import CostCharge
from repro.simtime.clock import Clock, SimClock
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.views import RangeView


class _MapPair:
    """One cracker map: head values aligned with one tail column."""

    __slots__ = ("head", "tail", "pieces")

    def __init__(self, head: np.ndarray, tail: np.ndarray) -> None:
        self.head = head
        self.tail = tail
        self.pieces = PieceMap(len(head))

    def ensure_cut(self, value: float) -> tuple[int, CostCharge]:
        if self.pieces.has_pivot(value):
            charge = CostCharge.for_binary_search(
                self.pieces.piece_count
            )
            return self.pieces.position_of_pivot(value), charge
        piece = self.pieces.piece_for_value(value)
        position, charge = crack_in_two(
            self.head, piece.start, piece.end, value, self.tail
        )
        self.pieces.add_crack(value, position)
        return position, charge

    def select(
        self, low: float, high: float
    ) -> tuple[int, int, CostCharge]:
        low_index = self.pieces.piece_index_for_value(low)
        high_index = self.pieces.piece_index_for_value(high)
        fresh_bounds = not (
            self.pieces.has_pivot(low) or self.pieces.has_pivot(high)
        )
        piece = self.pieces.piece_at_index(low_index)
        if (
            low_index == high_index
            and fresh_bounds
            and low < high
            and piece.size > 0
        ):
            pos_low, pos_high, charge = crack_in_three(
                self.head, piece.start, piece.end, low, high, self.tail
            )
            self.pieces.add_crack(low, pos_low)
            self.pieces.add_crack(high, pos_high)
            return pos_low, pos_high, charge
        pos_low, charge_low = self.ensure_cut(low)
        pos_high, charge_high = self.ensure_cut(high)
        return pos_low, pos_high, charge_low + charge_high


class SidewaysCrackerIndex:
    """Cracker maps for ``select head, project tail`` queries.

    Args:
        table: the table holding head and tail columns.
        head: the selection attribute (cracked on its values).
        clock: shared time source; map creation and cracks are charged.
    """

    def __init__(
        self, table: Table, head: str, clock: Clock | None = None
    ) -> None:
        self.table = table
        self.head_column: Column = table.column(head)
        self.head_name = head
        self.clock: Clock = clock if clock is not None else SimClock()
        self._maps: dict[str, _MapPair] = {}

    @property
    def map_count(self) -> int:
        """How many (head, tail) cracker maps exist so far."""
        return len(self._maps)

    def map_for(self, tail: str) -> _MapPair:
        """Get or lazily build the cracker map for ``tail``.

        Creation copies both columns (charged as materialization),
        exactly like MonetDB's first-touch map creation.

        Raises:
            CrackerError: if ``tail`` is the head attribute itself
                (use a plain :class:`CrackerIndex` for that).
        """
        if tail == self.head_name:
            raise CrackerError(
                "sideways maps pair the head with a *different* tail; "
                f"got {tail!r} for head {self.head_name!r}"
            )
        pair = self._maps.get(tail)
        if pair is None:
            tail_column = self.table.column(tail)
            pair = _MapPair(
                self.head_column.copy_values(),
                tail_column.copy_values(),
            )
            self._maps[tail] = pair
            self.clock.charge(
                CostCharge(
                    elements_materialized=2 * self.head_column.row_count
                )
            )
        return pair

    def select_project(
        self, low: float, high: float, tail: str
    ) -> RangeView:
        """``SELECT tail FROM t WHERE low <= head < high``.

        Returns a contiguous view over the tail values whose head
        values qualify -- no positional join needed.

        Raises:
            QueryError: if ``low > high``.
        """
        if low > high:
            raise QueryError(f"range inverted: low={low} > high={high}")
        pair = self.map_for(tail)
        pos_low, pos_high, charge = pair.select(low, high)
        self.clock.charge(charge)
        return RangeView(pair.tail, pos_low, pos_high)

    def select_head(self, low: float, high: float, tail: str) -> RangeView:
        """The qualifying *head* values from the ``tail`` map."""
        if low > high:
            raise QueryError(f"range inverted: low={low} > high={high}")
        pair = self.map_for(tail)
        pos_low, pos_high, charge = pair.select(low, high)
        self.clock.charge(charge)
        return RangeView(pair.head, pos_low, pos_high)

    def check_invariants(self) -> None:
        """Verify head/tail alignment on every map (O(n) per map).

        Raises:
            CrackerError: on any violation.
        """
        base_head = self.head_column.values
        order = np.argsort(base_head, kind="stable")
        sorted_head = base_head[order]
        for tail_name, pair in self._maps.items():
            pair.pieces.check_invariants()
            if not np.array_equal(
                np.sort(pair.head), sorted_head
            ):
                raise CrackerError(
                    f"map {tail_name!r}: head values diverged from the "
                    "base column"
                )
            # Every (head, tail) pair must exist in the base table.
            base_tail = self.table.column(tail_name).values
            expected = {}
            for h, t in zip(base_head.tolist(), base_tail.tolist()):
                expected[(h, t)] = expected.get((h, t), 0) + 1
            for h, t in zip(pair.head.tolist(), pair.tail.tolist()):
                count = expected.get((h, t), 0)
                if count == 0:
                    raise CrackerError(
                        f"map {tail_name!r}: pair ({h}, {t}) does not "
                        "exist in the base table"
                    )
                expected[(h, t)] = count - 1

    def __repr__(self) -> str:
        return (
            f"SidewaysCrackerIndex(head={self.head_name!r}, "
            f"maps={sorted(self._maps)})"
        )
