"""Piece-level latching for concurrent cracking.

"Concurrency control for adaptive indexing" (Graefe et al., PVLDB 2012
-- the paper's [7]) observes that cracking turns read-only selects into
structural writers, and resolves it with short-lived latches on the
pieces a select is about to crack.  This module reproduces the protocol
in a deterministic, cooperatively-scheduled simulator:

* :class:`PieceLatchManager` grants shared/exclusive latches keyed by
  piece start position and counts conflicts;
* :class:`ConcurrentCrackScheduler` interleaves a batch of logical
  clients round-by-round; a client whose latch request conflicts with
  one granted earlier in the same round is deferred to the next round.

There are no OS threads -- Python would serialize them anyway -- but
the latch protocol, conflict detection and fairness behaviour are
exercised for real and are unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cracking.index import CrackerIndex
from repro.errors import ConcurrencyError
from repro.storage.views import SelectionResult


class LatchMode(Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(slots=True)
class LatchStats:
    grants: int = 0
    conflicts: int = 0
    releases: int = 0


class PieceLatchManager:
    """Shared/exclusive latches keyed by piece start position."""

    def __init__(self) -> None:
        self._holders: dict[int, tuple[LatchMode, set[str]]] = {}
        self.stats = LatchStats()

    def try_acquire(self, owner: str, piece_start: int, mode: LatchMode) -> bool:
        """Attempt to latch a piece; returns False on conflict."""
        current = self._holders.get(piece_start)
        if current is None:
            self._holders[piece_start] = (mode, {owner})
            self.stats.grants += 1
            return True
        held_mode, holders = current
        if owner in holders:
            if held_mode is mode:
                return True
            if held_mode is LatchMode.EXCLUSIVE:
                return True  # exclusive already implies shared access
            if len(holders) == 1:
                self._holders[piece_start] = (LatchMode.EXCLUSIVE, holders)
                return True  # lone shared holder may upgrade
            self.stats.conflicts += 1
            return False
        if held_mode is LatchMode.SHARED and mode is LatchMode.SHARED:
            holders.add(owner)
            self.stats.grants += 1
            return True
        self.stats.conflicts += 1
        return False

    def release_all(self, owner: str) -> int:
        """Release every latch held by ``owner``; returns the count."""
        released = 0
        for start in list(self._holders):
            mode, holders = self._holders[start]
            if owner in holders:
                holders.discard(owner)
                released += 1
                if not holders:
                    del self._holders[start]
        self.stats.releases += released
        return released

    def holders_of(self, piece_start: int) -> set[str]:
        entry = self._holders.get(piece_start)
        return set(entry[1]) if entry else set()

    def held_count(self) -> int:
        return len(self._holders)


@dataclass(slots=True)
class ClientQuery:
    """One client's pending range query."""

    client: str
    low: float
    high: float
    result: SelectionResult | None = None
    rounds_waited: int = 0


@dataclass(slots=True)
class ScheduleReport:
    """Outcome of a scheduler run."""

    rounds: int = 0
    executed: int = 0
    deferrals: int = 0
    per_client_waits: dict[str, int] = field(default_factory=dict)


class ConcurrentCrackScheduler:
    """Deterministic round-based executor of concurrent cracking selects.

    Each round, every still-pending query tries to exclusively latch
    the pieces containing its two bounds (those are the pieces a
    cracking select may restructure).  Conflicting queries wait for the
    next round.  Latches are dropped at the end of each round, as in
    the published protocol where latches live only for the duration of
    the structural change.
    """

    def __init__(
        self, index: CrackerIndex, latches: PieceLatchManager | None = None
    ) -> None:
        self.index = index
        self.latches = latches if latches is not None else PieceLatchManager()

    def _pieces_for(self, query: ClientQuery) -> list[int]:
        pieces = self.index.piece_map
        starts = {
            pieces.piece_for_value(query.low).start,
            pieces.piece_for_value(query.high).start,
        }
        return sorted(starts)

    def run(self, queries: list[ClientQuery], max_rounds: int = 10_000) -> ScheduleReport:
        """Execute all queries; returns scheduling statistics.

        Raises:
            ConcurrencyError: if ``max_rounds`` elapse without draining
                the queue (indicates a livelock in the protocol).
        """
        report = ScheduleReport()
        pending = list(queries)
        while pending:
            report.rounds += 1
            if report.rounds > max_rounds:
                raise ConcurrencyError(
                    f"scheduler livelock: {len(pending)} queries still "
                    f"pending after {max_rounds} rounds"
                )
            # Phase 1: every pending query requests latches against the
            # *current* piece map, before anyone restructures it --
            # acquisition precedes cracking, as in the published
            # protocol.  Conflicting queries wait for the next round.
            deferred: list[ClientQuery] = []
            granted: list[ClientQuery] = []
            for query in pending:
                wanted = self._pieces_for(query)
                acquired = all(
                    self.latches.try_acquire(
                        query.client, start, LatchMode.EXCLUSIVE
                    )
                    for start in wanted
                )
                if acquired:
                    granted.append(query)
                else:
                    self.latches.release_all(query.client)
                    query.rounds_waited += 1
                    report.deferrals += 1
                    deferred.append(query)
            # Phase 2: granted queries execute (and restructure).
            for query in granted:
                query.result = self.index.select_range(query.low, query.high)
                report.executed += 1
            for query in granted:
                self.latches.release_all(query.client)
            pending = deferred
        for query in queries:
            report.per_client_waits[query.client] = (
                report.per_client_waits.get(query.client, 0)
                + query.rounds_waited
            )
        return report
